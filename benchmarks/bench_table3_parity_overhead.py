"""Table 3 — checkpoint size and time proportion: full vs parity.

Paper numbers: Llama-3.1-8B 1799.52 GB -> 899.76 GB (4.99% -> 3.03%);
Qwen-2.5-7B 1811.52 GB -> 905.76 GB (20.63% -> 12.76%).

Two row groups are produced:
* paper scale — analytic sizes/times from the published configs and the
  documented storage/compute cost models (should land within a few
  percent of the paper's GB column);
* measured (sim scale) — real bytes on disk and simulated-clock time
  fractions from the pipelines that actually ran.
"""

from __future__ import annotations

from _bench_common import emit

from repro.bench import paper_scale_overhead
from repro.util.tables import Table


def _paper_scale_table() -> tuple[str, dict]:
    table = Table(
        ["Model", "Type", "Total CKPT size (GB)", "Proportion of checkpoint time (%)"],
        title="Table 3 (paper scale, analytic): complete vs parity checkpointing",
    )
    rows = {}
    for setting, model in (("llama-cpt", "Llama3.1-8B"), ("qwen-sft", "Qwen2.5-7B")):
        full = paper_scale_overhead(setting, "full")
        parity = paper_scale_overhead(setting, "parity", initial_full=False)
        rows[setting] = (full, parity)
        table.add_row([model, "Total", round(full["total_gb"], 2),
                       round(full["ckpt_fraction"] * 100, 2)])
        table.add_row([model, "Parity", round(parity["total_gb"], 2),
                       round(parity["ckpt_fraction"] * 100, 2)])
    return table.render(), rows


def test_table3_paper_scale(benchmark):
    text, rows = benchmark.pedantic(_paper_scale_table, rounds=1, iterations=1)
    emit("table3_parity_overhead_paper_scale", text)
    for setting, (full, parity) in rows.items():
        # Headline shapes: parity halves size, cuts time fraction ~40%.
        assert 1.8 < full["total_bytes"] / parity["total_bytes"] < 2.2
        assert parity["ckpt_fraction"] < 0.75 * full["ckpt_fraction"]
    # Absolute paper-scale sizes in the right ballpark (GB, decimal).
    llama_full = rows["llama-cpt"][0]
    assert abs(llama_full["total_gb"] - 1799.52) < 60


def test_table3_measured_sim_scale(benchmark, qwen_sft_parity, llama_cpt_parity):
    def build():
        table = Table(
            ["Model", "Type", "Total CKPT bytes (measured)", "Ckpt time (%, sim clock)"],
            title="Table 3 (measured, sim scale): complete vs parity checkpointing",
        )
        for p in (llama_cpt_parity, qwen_sft_parity):
            table.add_row([p.model, "Total", p.baseline_ckpt_bytes,
                           round(p.baseline_ckpt_fraction * 100, 3)])
            table.add_row([p.model, "Parity", p.strategy_ckpt_bytes,
                           round(p.strategy_ckpt_fraction * 100, 3)])
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("table3_parity_overhead_measured", table.render())
    for p in (llama_cpt_parity, qwen_sft_parity):
        ratio = p.baseline_ckpt_bytes / p.strategy_ckpt_bytes
        # Short runs amortize the initial full snapshot less than the
        # paper's 16-event epoch, so expect ~1.5-2.1x here.
        assert 1.4 < ratio < 2.2, f"{p.model}: parity size ratio {ratio:.2f}"
