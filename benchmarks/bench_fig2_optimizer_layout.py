"""Figure 2 — the stock AdamW optimizer file layout.

Regenerates the paper's sketch of a checkpointed optimizer: two
parameter groups split by weight decay, fp32 master weights, and the
two momentum tensors, giving the >= 7x checkpoint-to-model size ratio.
"""

from __future__ import annotations

from _bench_common import emit

from repro.nn import build_model, get_config
from repro.optim import AdamW, default_param_groups
from repro.strategies import OPTIMIZER_BYTES_PER_PARAM
from repro.util.tables import Table


def test_fig2_default_two_group_layout(benchmark):
    def build():
        config = get_config("llama3.2-1b-sim")
        model = build_model(config, seed=0)
        groups = default_param_groups(model, weight_decay=0.01)
        opt = AdamW(groups, lr=1e-4)
        # One step so the moment tensors exist.
        for p in model.parameters():
            p.grad = p.data * 0
        opt.step()
        return config, model, opt, groups

    config, model, opt, groups = benchmark.pedantic(build, rounds=1, iterations=1)

    table = Table(
        ["Group", "Weight decay", "#Tensors", "#Params", "State per param"],
        title="Figure 2: AdamW optimizer layout (stock 2-group split)",
    )
    for g in groups:
        n_params = sum(p.size for p in g["params"])
        table.add_row([
            g["name"], g["weight_decay"], len(g["params"]), n_params,
            "fp32 master + exp_avg + exp_avg_sq (12 B)",
        ])
    n = model.num_parameters()
    footer = (
        f"\nmodel (bf16)      : {n * 2:,} bytes"
        f"\noptimizer (fp32x3): {n * OPTIMIZER_BYTES_PER_PARAM:,} bytes"
        f"\ncheckpoint/model  : {(2 + OPTIMIZER_BYTES_PER_PARAM) / 2:.1f}x  (paper: >= 7x)"
    )
    emit("fig2_optimizer_layout", table.render() + footer)

    sd = opt.state_dict()
    assert len(sd["param_groups"]) == 2
    assert sd["param_groups"][0]["weight_decay"] == 0.0
    assert sd["param_groups"][1]["weight_decay"] == 0.01
    assert (2 + OPTIMIZER_BYTES_PER_PARAM) / 2 == 7.0
