"""Table 4 — filtered merge: losses degrade slightly (unlike parity).

Paper claim (§5.3): recovering from the filtered strategy's merged
checkpoint gives final losses slightly *worse* than the uninterrupted
run (1.60/1.62 vs 1.58/1.60 for Qwen; 1.59/1.59 vs 1.58/1.58 for
Llama), because stale middle layers are spliced in.
"""

from __future__ import annotations

from _bench_common import emit

from repro.util.tables import Table


def _table(title: str, pipeline) -> str:
    table = Table(["Model", "Final train loss", "Final eval loss"], title=title)
    table.add_row(
        [f"{pipeline.model} ({pipeline.task.upper()})",
         round(pipeline.baseline.final_train_loss, 3),
         round(pipeline.baseline.final_eval_loss, 3)]
    )
    table.add_row(
        [f"Filtered layers (resume from {pipeline.failure_step})",
         round(pipeline.resumed.final_train_loss, 3),
         round(pipeline.resumed.final_eval_loss, 3)]
    )
    return table.render()


def test_table4a_qwen_sft_filtered_loss(benchmark, qwen_sft_filtered):
    result = benchmark.pedantic(lambda: qwen_sft_filtered, rounds=1, iterations=1)
    emit(
        "table4a_filter_loss_qwen",
        _table("Table 4(a): Qwen2.5-7B-sim, SFT task — filtered merge", result),
    )
    # Losses stay close but may drift slightly (the paper's point).
    assert abs(result.resumed.final_train_loss - result.baseline.final_train_loss) < 0.25
    assert abs(result.resumed.final_eval_loss - result.baseline.final_eval_loss) < 0.6


def test_table4b_llama_cpt_filtered_loss(benchmark, llama_cpt_filtered):
    result = benchmark.pedantic(lambda: llama_cpt_filtered, rounds=1, iterations=1)
    emit(
        "table4b_filter_loss_llama",
        _table("Table 4(b): Llama3.1-8B-sim, CPT task — filtered merge", result),
    )
    assert abs(result.resumed.final_train_loss - result.baseline.final_train_loss) < 0.25
    assert abs(result.resumed.final_eval_loss - result.baseline.final_eval_loss) < 0.6


def test_table4_filtered_at_least_as_stale_as_parity(
    benchmark, qwen_sft_parity, qwen_sft_filtered
):
    """Cross-check: parity resumes closer to baseline than filtered."""

    def gaps():
        parity_gap = abs(
            qwen_sft_parity.resumed.final_train_loss
            - qwen_sft_parity.baseline.final_train_loss
        )
        filtered_gap = abs(
            qwen_sft_filtered.resumed.final_train_loss
            - qwen_sft_filtered.baseline.final_train_loss
        )
        return parity_gap, filtered_gap

    parity_gap, filtered_gap = benchmark.pedantic(gaps, rounds=1, iterations=1)
    emit(
        "table4_staleness_comparison",
        f"train-loss gap vs baseline:\n  parity   : {parity_gap:.4f}\n"
        f"  filtered : {filtered_gap:.4f}\n"
        "(paper: parity matches exactly; filtered drifts slightly)",
    )
    # Filtered should not be dramatically better than parity; allow noise.
    assert filtered_gap + 0.05 >= parity_gap
