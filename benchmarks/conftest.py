"""Shared fixtures for the paper-reproduction benchmark suite.

Pipelines (train → crash → merge → resume → evaluate) are expensive, so
they are computed once per session and shared across table benchmarks.
Every table is printed to stdout *and* written to
``benchmarks/results/<name>.txt`` so results survive pytest's capture.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _bench_common import RESULTS_DIR, SIM_FAILURE, SIM_INTERVAL, SIM_STEPS  # noqa: E402

from repro.bench import run_use_case_pipeline  # noqa: E402
from repro.util.logging import set_level  # noqa: E402

_PIPELINES: dict[tuple, object] = {}


def pytest_configure(config):
    set_level("ERROR")
    RESULTS_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def pipeline_cache(tmp_path_factory):
    """Lazily-computed use-case pipelines keyed by (model, task, strategy)."""

    def get(model: str, task: str, strategy: str, **kwargs):
        key = (model, task, strategy, tuple(sorted(kwargs.items())))
        if key not in _PIPELINES:
            out = tmp_path_factory.mktemp(f"{model}-{task}-{strategy}")
            _PIPELINES[key] = run_use_case_pipeline(
                model=model,
                task=task,
                strategy=strategy,
                out_dir=out,
                total_steps=SIM_STEPS,
                interval=SIM_INTERVAL,
                failure_step=SIM_FAILURE,
                eval_items=24,
                **kwargs,
            )
        return _PIPELINES[key]

    return get


@pytest.fixture(scope="session")
def qwen_sft_parity(pipeline_cache):
    return pipeline_cache("qwen2.5-7b-sim", "sft", "parity")


@pytest.fixture(scope="session")
def llama_cpt_parity(pipeline_cache):
    return pipeline_cache("llama3.1-8b-sim", "cpt", "parity")


@pytest.fixture(scope="session")
def qwen_sft_filtered(pipeline_cache):
    return pipeline_cache("qwen2.5-7b-sim", "sft", "filtered")


@pytest.fixture(scope="session")
def llama_cpt_filtered(pipeline_cache):
    return pipeline_cache("llama3.1-8b-sim", "cpt", "filtered")
