"""Figure 3 — reconstructing parameter groups: 2 groups -> 2L+x.

Regenerates the paper's diagram of LLMTailor's pre-training regrouping
for a 16-layer model with lm_head: 35 groups in the canonical order
[norm] [layer no-decay x16] [embed] [lm_head] [layer decay x16].
"""

from __future__ import annotations

from _bench_common import emit

from repro.core import group_layout_table, tailored_group_specs
from repro.nn import get_config
from repro.util.tables import Table


def test_fig3_sixteen_layer_regrouping(benchmark):
    # The paper's Fig. 3 example: 16 transformer layers + separate lm_head.
    config = get_config("llama3.1-8b-sim").replace(name="fig3-example", num_hidden_layers=16)

    rows = benchmark.pedantic(lambda: group_layout_table(config), rounds=1, iterations=1)
    assert len(rows) == 35  # 2*16 + 3, as in the figure

    table = Table(
        ["Index", "Group", "Slot", "Weight decay", "#Tensors"],
        title="Figure 3: reconstructed parameter groups (16-layer model, 2 -> 35 groups)",
    )
    for row in rows:
        table.add_row([row["index"], row["group"], row["slot"],
                       row["weight_decay"], row["num_params"]])
    emit("fig3_param_groups", table.render())

    specs = tailored_group_specs(config)
    assert specs[0].name == "norm"
    assert specs[17].name == "embed_tokens"
    assert specs[18].name == "lm_head"
    assert specs[19].name == "layer_0_decay"


def test_fig3_group_count_formula_all_models(benchmark):
    def counts():
        return {
            name: (get_config(name).num_param_groups_tailored,
                   get_config(name).num_hidden_layers,
                   get_config(name).tie_word_embeddings)
            for name in ("llama3.2-1b", "llama3.1-8b", "qwen2.5-7b")
        }

    result = benchmark.pedantic(counts, rounds=1, iterations=1)
    lines = ["2L+x group counts at published scale:"]
    for name, (groups, layers, tied) in result.items():
        x = 2 if tied else 3
        lines.append(f"  {name:14s}: L={layers:2d}, tied={tied} -> {groups} groups (2L+{x})")
        assert groups == 2 * layers + x
    emit("fig3_group_count_formula", "\n".join(lines))
