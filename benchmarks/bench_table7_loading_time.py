"""Table 7 — checkpoint loading/merging time vs checkpoints included.

Paper setup (§5.4): for Llama3-1B (18 layer slots) and Llama3-8B (35
slots), measure the time to produce a resumable state from
1 (plain resume), 2, parity(2, interleaved reload), 8, and N=slots
checkpoints.  Key observations reproduced:

* interleaved parity costs far more than the straightforward 2-ckpt
  merge (it re-loads a full shard per layer — no lazy loading of
  optimizer state);
* many tiny checkpoints (one layer each) are comparatively cheap to
  merge because each file is small;
* overall overhead scales with bytes loaded x files loaded.

The ``parity-2-w4`` row extends the table past the paper: the same
interleaved parity merge through the streaming engine with
``--workers 4``, which must beat the serial parity row while parity
remains the slowest layout overall (the §5.4 headline is preserved).

Timings are real wall clock on real files at sim scale.
"""

from __future__ import annotations

import itertools
from pathlib import Path

import pytest

from _bench_common import QUICK, ROUNDS, WARMUP_ROUNDS, emit

from repro.core import LLMTailor, MergeOptions, MergeRecipe
from repro.core.groups import tailored_param_groups
from repro.dist import ZeroStage3Engine
from repro.io import CheckpointPaths, Storage, load_checkpoint, save_checkpoint
from repro.nn import build_model, get_config, model_slots
from repro.util.tables import Table

WORLD = 2
_counter = itertools.count()
_RESULTS: dict[tuple[str, str], dict] = {}


def _build_trail(config_name: str, tmp_root: Path):
    """One full checkpoint + slot-distributed partial trails."""
    config = get_config(config_name)
    model = build_model(config, seed=1)
    engine = ZeroStage3Engine(
        model, config, tailored_param_groups(model, config, 0.01), world_size=WORLD
    )
    storage = Storage(tmp_root)
    slots = model_slots(config)

    # Step 1000: full checkpoint (the plain-resume baseline).
    save_checkpoint(storage, step=1000, model=model, config=config, engine=engine,
                    trainer_state={"global_step": 1000}, strategy="full")

    def split(n_parts: int, base_step: int):
        """Distribute slots round-robin over n_parts checkpoints."""
        for part in range(n_parts):
            part_slots = [s for i, s in enumerate(slots) if i % n_parts == part]
            save_checkpoint(
                storage, step=base_step + part, model=model, config=config,
                engine=engine, trainer_state={"global_step": base_step + part},
                slots=part_slots, strategy=f"split{n_parts}",
            )

    split(2, 2000)
    split(8, 3000)
    split(len(slots), 4000)

    # Parity halves (odd layers + embed / even layers + norm + lm_head).
    L = config.num_hidden_layers
    odd = [f"layers.{i}" for i in range(L) if i % 2 == 1] + ["embed_tokens"]
    even = [s for s in slots if s not in odd]
    save_checkpoint(storage, step=5000, model=model, config=config, engine=engine,
                    trainer_state={"global_step": 5000}, slots=odd, strategy="parity")
    save_checkpoint(storage, step=5001, model=model, config=config, engine=engine,
                    trainer_state={"global_step": 5001}, slots=even, strategy="parity")

    return config, model, engine, storage, slots


def _recipe_for_split(storage: Storage, config, slots, n_parts: int, base_step: int,
                      cache_mode: str = "per-checkpoint") -> MergeRecipe:
    assignments = {}
    for i, slot in enumerate(slots):
        assignments[slot] = storage.root / f"checkpoint-{base_step + (i % n_parts)}"
    base = storage.root / f"checkpoint-{base_step + 0}"
    assignments = {s: p for s, p in assignments.items() if p != base}
    return MergeRecipe(
        base_checkpoint=base,
        assignments=assignments,
        options=MergeOptions(workers=1, cache_mode=cache_mode, verify=False),
    )


def _parity_recipe(
    storage: Storage, config, slots, cache_mode: str,
    *, workers: int = 1, stream: bool = False,
) -> MergeRecipe:
    L = config.num_hidden_layers
    odd = [f"layers.{i}" for i in range(L) if i % 2 == 1] + ["embed_tokens"]
    assignments = {s: storage.root / "checkpoint-5000" for s in odd}
    return MergeRecipe(
        base_checkpoint=storage.root / "checkpoint-5001",
        assignments=assignments,
        options=MergeOptions(
            workers=workers, cache_mode=cache_mode, verify=False, stream=stream
        ),
    )


@pytest.fixture(scope="module")
def trails(tmp_path_factory):
    out = {}
    for name in ("llama3.2-1b-sim", "llama3.1-8b-sim"):
        out[name] = _build_trail(name, tmp_path_factory.mktemp(name))
    return out


def _run_case(trail, case: str, tmp_root: Path):
    config, model, engine, storage, slots = trail
    if case == "baseline-1":
        m2 = build_model(config, seed=9)
        e2 = ZeroStage3Engine(m2, config, tailored_param_groups(m2, config, 0.01),
                              world_size=WORLD)
        load_checkpoint(CheckpointPaths(storage.root / "checkpoint-1000"),
                        model=m2, config=config, engine=e2)
        return None
    if case == "ckpts-2":
        recipe = _recipe_for_split(storage, config, slots, 2, 2000)
    elif case == "parity-2":
        recipe = _parity_recipe(storage, config, slots, cache_mode="none")
    elif case == "parity-2-w4":
        recipe = _parity_recipe(
            storage, config, slots, cache_mode="none", workers=4, stream=True
        )
    elif case == "ckpts-8":
        recipe = _recipe_for_split(storage, config, slots, 8, 3000)
    elif case == "ckpts-N":
        recipe = _recipe_for_split(storage, config, slots, len(slots), 4000)
    else:  # pragma: no cover
        raise ValueError(case)
    out = tmp_root / f"merge-{case}-{next(_counter)}"
    return LLMTailor(recipe).merge(output=out)


CASES = ["baseline-1", "ckpts-2", "parity-2", "parity-2-w4", "ckpts-8", "ckpts-N"]
CKPTS_INCLUDED = {"baseline-1": 1, "ckpts-2": 2, "parity-2": 2, "parity-2-w4": 2,
                  "ckpts-8": 8}


@pytest.mark.parametrize("model_name", ["llama3.2-1b-sim", "llama3.1-8b-sim"])
@pytest.mark.parametrize("case", CASES)
def test_table7_loading_time(benchmark, trails, tmp_path, model_name, case):
    trail = trails[model_name]
    result_holder = {}

    def run():
        result_holder["result"] = _run_case(trail, case, tmp_path)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    merge_result = result_holder["result"]
    slots = trail[4]
    stats = {
        "case": case,
        "seconds": benchmark.stats["mean"],
        "files_loaded": (
            merge_result.optimizer_files_loaded if merge_result else WORLD
        ),
        "bytes_loaded": (
            merge_result.optimizer_bytes_loaded if merge_result else 0
        ),
        "ckpts_included": CKPTS_INCLUDED.get(case, len(slots)),
    }
    _RESULTS[(model_name, case)] = stats

    if case in ("parity-2", "parity-2-w4") and merge_result is not None:
        # Interleaved parity loads one shard file per slot per rank,
        # with or without the streaming engine.
        assert merge_result.optimizer_files_loaded == len(slots) * WORLD
    if case == "ckpts-2" and merge_result is not None:
        assert merge_result.optimizer_files_loaded == 2 * WORLD


def test_table7_render(benchmark, trails):
    """Assemble the Table 7 rows measured above (run last in file order)."""

    def build():
        table = Table(
            ["Model", "Total slots", "CKPTs included", "Files loaded", "Time (s)"],
            title="Table 7: loading/merging time for different checkpoint layouts",
        )
        for model_name in ("llama3.2-1b-sim", "llama3.1-8b-sim"):
            slots = trails[model_name][4]
            for case in CASES:
                stats = _RESULTS.get((model_name, case))
                if stats is None:
                    continue
                label = {"baseline-1": "Baseline: 1", "ckpts-2": "2",
                         "parity-2": "parity (2)",
                         "parity-2-w4": "parity (2) stream w4",
                         "ckpts-8": "8", "ckpts-N": str(len(slots))}[case]
                table.add_row([model_name, len(slots), label,
                               stats["files_loaded"], round(stats["seconds"], 4)])
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("table7_loading_time", table.render())

    # Paper's §5.4 headline: interleaved parity is the most expensive
    # merge mode for the same two checkpoints.  Quick mode times a single
    # round, too noisy for ordering assertions — there the orderings are
    # enforced statistically by the committed full-mode baselines that
    # the CI gate compares against, not per-run.
    if QUICK:
        return
    for model_name in ("llama3.2-1b-sim", "llama3.1-8b-sim"):
        two = _RESULTS.get((model_name, "ckpts-2"))
        parity = _RESULTS.get((model_name, "parity-2"))
        parity_w4 = _RESULTS.get((model_name, "parity-2-w4"))
        if two and parity:
            assert parity["seconds"] > two["seconds"], (
                f"{model_name}: parity-interleave {parity['seconds']:.4f}s should "
                f"exceed straightforward {two['seconds']:.4f}s"
            )
            assert parity["bytes_loaded"] > two["bytes_loaded"]
        if parity and parity_w4:
            # The streaming engine with workers must speed parity up while
            # parity stays the slowest strategy (headline preserved).  The
            # 8B model's margin is large enough to assert strictly; the 1B
            # merge is short enough that a single scheduler hiccup can eat
            # its ~5-15% win, so it only asserts non-regression here — the
            # committed BENCH baselines pin the improvement itself.
            bound = 1.0 if model_name == "llama3.1-8b-sim" else 1.05
            assert parity_w4["seconds"] < parity["seconds"] * bound, (
                f"{model_name}: streaming parity w4 {parity_w4['seconds']:.4f}s "
                f"should beat serial parity {parity['seconds']:.4f}s (x{bound})"
            )
            if two:
                assert parity_w4["seconds"] > two["seconds"], (
                    f"{model_name}: even streamed, interleaved parity "
                    f"{parity_w4['seconds']:.4f}s should stay slower than the "
                    f"straightforward merge {two['seconds']:.4f}s"
                )
