"""Table 5 — zero-shot scores after filtered-merge recovery.

Paper observation (§5.3): in the SFT task the filtered Frankenstein
scores noticeably below the default checkpoint, while in the CPT task
it is comparable or better — LLM robustness partially absorbs the stale
layers.  We reproduce the comparison; at sim scale differences sit
within a few points of baseline either way.
"""

from __future__ import annotations

from _bench_common import emit

from repro.evalbench import suite_table


def test_table5_qwen_sft_filtered_eval(benchmark, qwen_sft_filtered):
    result = benchmark.pedantic(lambda: qwen_sft_filtered, rounds=1, iterations=1)
    rows = {
        f"{result.model} (SFT)": result.eval_baseline,
        f"filter-{result.failure_step}": result.eval_resumed,
    }
    table = suite_table(
        rows, "Table 5 (SFT rows): zero-shot accuracy after filtered recovery"
    )
    emit("table5_filter_eval_qwen", table.render())
    mean_base = sum(result.eval_baseline.values()) / 5
    mean_resumed = sum(result.eval_resumed.values()) / 5
    assert abs(mean_base - mean_resumed) < 12.0


def test_table5_llama_cpt_filtered_eval(benchmark, llama_cpt_filtered):
    result = benchmark.pedantic(lambda: llama_cpt_filtered, rounds=1, iterations=1)
    rows = {
        f"{result.model} (CPT)": result.eval_baseline,
        f"filter-{result.failure_step}": result.eval_resumed,
    }
    table = suite_table(
        rows, "Table 5 (CPT rows): zero-shot accuracy after filtered recovery"
    )
    emit("table5_filter_eval_llama", table.render())
    mean_base = sum(result.eval_baseline.values()) / 5
    mean_resumed = sum(result.eval_resumed.values()) / 5
    assert abs(mean_base - mean_resumed) < 12.0
