"""Table 1 — parity merge preserves the training trajectory.

Paper claim (§5.2): resuming from a parity-merged Frankenstein
checkpoint yields final train/eval losses matching the uninterrupted
run (1.58/1.60 for Qwen SFT, 1.58/1.58 for Llama CPT at paper scale).
Here the absolute losses are those of the sim-scale models; the claim
under test is the *match* between original and parity-resumed runs.
"""

from __future__ import annotations

from _bench_common import emit

from repro.util.tables import Table


def _table(name: str, title: str, pipeline) -> str:
    table = Table(["Model", "Final train loss", "Final eval loss"], title=title)
    table.add_row(
        [f"{pipeline.model} ({pipeline.task.upper()})",
         round(pipeline.baseline.final_train_loss, 3),
         round(pipeline.baseline.final_eval_loss, 3)]
    )
    table.add_row(
        [f"Parity merge (resume from {pipeline.failure_step})",
         round(pipeline.resumed.final_train_loss, 3),
         round(pipeline.resumed.final_eval_loss, 3)]
    )
    return table.render()


def test_table1a_qwen_sft_parity_loss(benchmark, qwen_sft_parity):
    result = benchmark.pedantic(lambda: qwen_sft_parity, rounds=1, iterations=1)
    text = _table("table1a", "Table 1(a): Qwen2.5-7B-sim, SFT task — parity merge", result)
    emit("table1a_parity_loss_qwen", text)
    # The headline claim: resumed losses match the original trajectory.
    assert abs(result.resumed.final_train_loss - result.baseline.final_train_loss) < 0.1
    assert abs(result.resumed.final_eval_loss - result.baseline.final_eval_loss) < 0.1


def test_table1b_llama_cpt_parity_loss(benchmark, llama_cpt_parity):
    result = benchmark.pedantic(lambda: llama_cpt_parity, rounds=1, iterations=1)
    text = _table("table1b", "Table 1(b): Llama3.1-8B-sim, CPT task — parity merge", result)
    emit("table1b_parity_loss_llama", text)
    assert abs(result.resumed.final_train_loss - result.baseline.final_train_loss) < 0.1
    assert abs(result.resumed.final_eval_loss - result.baseline.final_eval_loss) < 0.1
