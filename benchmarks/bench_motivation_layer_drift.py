"""Motivation (§1-2): layer updates are non-uniform during post-training.

The paper's premise — citing Jawahar et al., Phang et al., and Zhou et
al. — is that different layers change at very different rates, so
checkpointing them uniformly wastes I/O.  This bench measures it
directly on our substrate: train a sim-scale model, snapshot two
checkpoints, and report per-slot relative weight drift plus the
max/median non-uniformity index.
"""

from __future__ import annotations

from _bench_common import emit

from repro.core.diffstat import diff_checkpoints, drift_ranking, nonuniformity_index
from repro.train import TrainConfig, Trainer
from repro.util.tables import Table


def test_motivation_nonuniform_layer_updates(benchmark, tmp_path):
    def run():
        cfg = TrainConfig(
            model="llama3.2-1b-sim", task="cpt", total_steps=40,
            checkpoint_strategy="full", checkpoint_interval=20,
            output_dir=str(tmp_path / "run"), world_size=2,
            micro_batch_size=2, grad_accum_steps=1, seq_len=48,
            log_every=20, compile=True,
        )
        trainer = Trainer(cfg)
        trainer.train()
        root = trainer.storage.root
        return diff_checkpoints(root / "checkpoint-20", root / "checkpoint-40",
                                include_momentum=True)

    drifts = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["Slot", "Weight drift (rel L2)", "Momentum drift", "#Params"],
        title="Motivation: per-layer drift between checkpoint-20 and checkpoint-40",
    )
    for d in drifts:
        table.add_row([d.slot, round(d.weight_l2, 5), round(d.momentum_l2, 4), d.params])
    idx = nonuniformity_index(drifts)
    ranked = drift_ranking(drifts)
    footer = (
        f"\nnon-uniformity index (max/median): {idx:.2f}"
        f"\nmost-changed slot : {ranked[0].slot} ({ranked[0].weight_l2:.5f})"
        f"\nleast-changed slot: {ranked[-1].slot} ({ranked[-1].weight_l2:.5f})"
    )
    emit("motivation_layer_drift", table.render() + footer)

    # The premise itself: updates are meaningfully non-uniform.
    assert idx > 1.2, f"layer updates unexpectedly uniform (index {idx:.2f})"
    assert ranked[0].weight_l2 > 2 * ranked[-1].weight_l2


def test_motivation_composability_async(benchmark):
    """§5.1: selective checkpointing composes with async-writer savings."""
    from repro.nn import get_config
    from repro.strategies import (
        FullStrategy,
        ParityStrategy,
        FilteredStrategy,
        plan_strategy,
        plan_strategy_async,
    )

    def sweep():
        cfg = get_config("qwen2.5-7b")
        rows = []
        for label, strat_fn in (
            ("full", lambda: FullStrategy(cfg, 50)),
            ("parity", lambda: ParityStrategy(cfg, 50, initial_full=False)),
            ("filtered", lambda: FilteredStrategy(cfg, 50, initial_full=False)),
        ):
            sync = plan_strategy(cfg, strat_fn(), total_steps=850,
                                 tokens_per_step_per_gpu=8192)
            asyn = plan_strategy_async(cfg, strat_fn(), total_steps=850,
                                       tokens_per_step_per_gpu=8192)
            rows.append((label, sync.checkpoint_time_fraction * 100,
                         asyn.checkpoint_time_fraction * 100))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["Strategy", "Blocking writer ckpt %", "Async writer ckpt %"],
        title="Composability: strategy x writer (Qwen2.5-7B SFT shape, analytic)",
    )
    for label, sync_pct, async_pct in rows:
        table.add_row([label, round(sync_pct, 2), round(async_pct, 2)])
    emit("motivation_composability_async", table.render())

    by_label = {r[0]: r for r in rows}
    # Async always helps; parity+async beats parity+sync and full+async.
    for label, sync_pct, async_pct in rows:
        assert async_pct < sync_pct
    assert by_label["parity"][2] < by_label["parity"][1]
    assert by_label["parity"][2] < by_label["full"][2]
