"""Chaos overhead: clean vs rank-failure vs straggler training runs.

The fault-injection engine's cost has two components this scenario
separates:

* **real wall time** — the chaos machinery itself (plan checks, the
  wrapping communicator, supervisor legs, elastic resume) measured by
  pytest-benchmark against an identical clean run;
* **simulated time** — what the faults cost the *fleet*: replayed
  steps, straggler tax, and recovery reads, read off the deterministic
  SimClock and reported in the emitted table (identical on every
  machine).

A failure at step 14 of 18 (interval 6) loses 2 steps and reshards
2 → 1; the straggler run slows rank 0 by 3× for 6 steps.
"""

from __future__ import annotations

import itertools

from _bench_common import ROUNDS, WARMUP_ROUNDS, emit

from repro.dist.faults import FaultPlan, rank_failure, straggler
from repro.train import ChaosSupervisor, TrainConfig, Trainer
from repro.util.tables import Table

_counter = itertools.count()
_rows: dict[str, dict] = {}

TOTAL_STEPS = 18
INTERVAL = 6


def _config(tmp_path, tag: str) -> TrainConfig:
    return TrainConfig(
        model="tiny-untied", task="cpt", total_steps=TOTAL_STEPS,
        checkpoint_strategy="full", checkpoint_interval=INTERVAL,
        output_dir=str(tmp_path / f"{tag}-{next(_counter)}"), world_size=2,
        micro_batch_size=2, grad_accum_steps=1, seq_len=32, log_every=6,
    )


def _record(name: str, mean: float, result) -> None:
    clock = result.clock
    _rows[name] = {
        "wall": mean,
        "sim_total": clock.get("__total__", 0.0),
        "straggler": clock.get("fault_straggler", 0.0),
        "lost": (
            result.fault_timeline.lost_steps
            if result.fault_timeline is not None
            else 0
        ),
    }
    if len(_rows) == 3:
        table = Table(
            ["Scenario", "Wall (s)", "Sim clock (s)", "Straggler tax (s)",
             "Lost steps"],
            title=f"Fault-injection overhead ({TOTAL_STEPS} steps, ws 2, "
            f"interval {INTERVAL})",
        )
        for scenario, row in _rows.items():
            table.add_row([
                scenario, round(row["wall"], 4), round(row["sim_total"], 3),
                round(row["straggler"], 3), row["lost"],
            ])
        emit("fault_overhead", table.render())


def test_faults_clean(benchmark, tmp_path):
    """Baseline: the same run with no fault plan attached at all."""
    holder = {}

    def run():
        holder["result"] = Trainer(_config(tmp_path, "clean")).train()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    assert holder["result"].interrupted_at is None
    _record("clean", benchmark.stats["mean"], holder["result"])


def test_faults_rank_failure(benchmark, tmp_path):
    """One rank death at step 14: shrink 2 → 1 and elastically resume."""
    plan = FaultPlan(events=(rank_failure(14, 1),))
    holder = {}

    def run():
        holder["result"] = ChaosSupervisor(_config(tmp_path, "fail"), plan).run()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    result = holder["result"]
    assert result.interrupted_at is None
    assert result.fault_timeline.recoveries == 1
    assert result.fault_timeline.lost_steps == 2  # 14 -> checkpoint-12
    _record("1 rank failure", benchmark.stats["mean"], result)


def test_faults_straggler(benchmark, tmp_path):
    """Rank 0 runs 3x slow for 6 steps: pure sim-clock tax, no recovery."""
    plan = FaultPlan(events=(straggler(7, 0, 3.0, duration=6),))
    holder = {}

    def run():
        holder["result"] = ChaosSupervisor(_config(tmp_path, "slow"), plan).run()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    result = holder["result"]
    assert result.interrupted_at is None
    # 6 active steps x (3 - 1) x 1 sim-sec.
    assert result.clock["fault_straggler"] == 12.0
    _record("straggler 3x/6 steps", benchmark.stats["mean"], result)
