"""Helpers shared by the benchmark files (kept out of conftest so the
module name cannot collide with tests/conftest.py)."""

from __future__ import annotations

import os
from pathlib import Path

# The runner redirects artifacts with --out by exporting this variable,
# so a --quick run cannot overwrite the committed full-mode tables.
RESULTS_DIR = Path(
    os.environ.get("REPRO_BENCH_RESULTS_DIR") or Path(__file__).parent / "results"
)

# Quick mode (set by `repro.bench.runner run --quick`): fewer timing
# rounds so the CI gate finishes fast.  Quick rounds run after one
# warmup so they measure warm-cache behaviour; the gate compares
# best-of-rounds (min), which is robust to one-sided scheduler noise.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
ROUNDS = 2 if QUICK else 3
WARMUP_ROUNDS = 1 if QUICK else 0

# Sim-scale experiment shape shared by every use-case pipeline.
SIM_STEPS = 100
SIM_INTERVAL = 20
SIM_FAILURE = 90


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    print()
    print(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
