"""Helpers shared by the benchmark files (kept out of conftest so the
module name cannot collide with tests/conftest.py)."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

# Sim-scale experiment shape shared by every use-case pipeline.
SIM_STEPS = 100
SIM_INTERVAL = 20
SIM_FAILURE = 90


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    print()
    print(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
