"""Elastic N→M resharding cost (extends the paper's §5.4 loading study).

The merge experiments measure consolidating shards *to one rank*; real
fleets also resume on a different world size than they checkpointed
with.  This scenario times the resharding engine over the shapes that
matter: shrink (4→2), consolidate (4→1, the merge-degenerate case), and
scatter (1→4), with the streaming engine against the materializing
reference path.  The streaming engine trades a few extra selective
reads (``N + M - gcd(N, M)`` loads instead of N) for never holding the
full master state in memory.
"""

from __future__ import annotations

import itertools

import pytest

from _bench_common import ROUNDS, WARMUP_ROUNDS, emit

from repro.core.groups import tailored_param_groups
from repro.dist import ZeroStage3Engine, reshard_checkpoint
from repro.io import Storage, save_checkpoint
from repro.nn import build_model, get_config
from repro.util.tables import Table

_counter = itertools.count()
_times: dict[str, float] = {}


@pytest.fixture(scope="module")
def full_checkpoints(tmp_path_factory):
    """A complete ws-4 checkpoint for a 16-layer model, plus its ws-1 form."""
    config = get_config("llama3.2-1b-sim")
    model = build_model(config, seed=1)
    engine = ZeroStage3Engine(
        model, config, tailored_param_groups(model, config, 0.01), world_size=4
    )
    storage = Storage(tmp_path_factory.mktemp("reshard"))
    save_checkpoint(storage, step=100, model=model, config=config, engine=engine,
                    trainer_state={"global_step": 100}, strategy="full")
    ws4 = storage.root / "checkpoint-100"
    ws1 = storage.root / "consolidated-100"
    reshard_checkpoint(ws4, ws1, 1)
    return ws4, ws1


def _record(key: str, mean: float) -> None:
    _times[key] = mean
    if len(_times) == 4:  # final parametrization: emit the comparison table
        table = Table(["Reshard", "Engine", "Time (s)"],
                      title="Elastic resharding (llama3.2-1b-sim, 34 groups)")
        for name, seconds in _times.items():
            shape, engine = name.rsplit(":", 1)
            table.add_row([shape, engine, round(seconds, 4)])
        emit("reshard_times", table.render())


@pytest.mark.parametrize("mode", ["materialize", "stream"])
def test_reshard_shrink_4_to_2(benchmark, full_checkpoints, tmp_path, mode):
    """The elastic-fleet case neither merge nor scatter covers."""
    ws4, _ = full_checkpoints

    def run():
        out = tmp_path / f"shrink-{mode}-{next(_counter)}"
        return reshard_checkpoint(ws4, out, 2, stream=mode == "stream", workers=2)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    _record(f"4->2:{mode}", benchmark.stats["mean"])


def test_reshard_consolidate_4_to_1(benchmark, full_checkpoints, tmp_path):
    """N→1: the resharder degenerating to a full consolidation."""
    ws4, _ = full_checkpoints

    def run():
        out = tmp_path / f"consolidate-{next(_counter)}"
        return reshard_checkpoint(ws4, out, 1, stream=True)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    _record("4->1:stream", benchmark.stats["mean"])


def test_reshard_scatter_1_to_4(benchmark, full_checkpoints, tmp_path):
    """1→M: growing a fleet from a consolidated checkpoint."""
    _, ws1 = full_checkpoints
    holder = {}

    def run():
        out = tmp_path / f"scatter-{next(_counter)}"
        holder["report"] = reshard_checkpoint(ws1, out, 4, stream=True, workers=2)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    # Every target rank reads the single source shard (N + M - gcd = 4),
    # plus the metadata pass over it.
    assert holder["report"].files_loaded == 4 + 1
    _record("1->4:stream", benchmark.stats["mean"])
