"""Table 2 — zero-shot benchmark scores after parity-merge recovery.

Paper claim (§5.2): the Frankenstein model recovered by parity merging
scores on par with the never-interrupted model across the five
benchmarks (MMLU, MMLU-med, MedMCQA, MedQA, PubMedQA).  Chance is 25%
(33% for PubMedQA); at sim scale the models sit modestly above chance,
and the comparison between rows is the reproduced result.
"""

from __future__ import annotations

from _bench_common import emit

from repro.evalbench import suite_table


def _rows(pipeline, label):
    return {
        f"{pipeline.model} ({pipeline.task.upper()})": pipeline.eval_baseline,
        f"{label}-{pipeline.failure_step}": pipeline.eval_resumed,
    }


def test_table2_qwen_sft_parity_eval(benchmark, qwen_sft_parity):
    result = benchmark.pedantic(lambda: qwen_sft_parity, rounds=1, iterations=1)
    table = suite_table(
        _rows(result, "parity"),
        "Table 2 (SFT rows): zero-shot accuracy after parity recovery (higher is better)",
    )
    emit("table2_parity_eval_qwen", table.render())
    # Quality preservation: mean accuracy within 10 points of baseline.
    mean_base = sum(result.eval_baseline.values()) / len(result.eval_baseline)
    mean_resumed = sum(result.eval_resumed.values()) / len(result.eval_resumed)
    assert abs(mean_base - mean_resumed) < 10.0


def test_table2_llama_cpt_parity_eval(benchmark, llama_cpt_parity):
    result = benchmark.pedantic(lambda: llama_cpt_parity, rounds=1, iterations=1)
    table = suite_table(
        _rows(result, "parity"),
        "Table 2 (CPT rows): zero-shot accuracy after parity recovery (higher is better)",
    )
    emit("table2_parity_eval_llama", table.render())
    mean_base = sum(result.eval_baseline.values()) / len(result.eval_baseline)
    mean_resumed = sum(result.eval_resumed.values()) / len(result.eval_resumed)
    assert abs(mean_base - mean_resumed) < 10.0
