"""Merge-service load test: multi-tenant mixed workload over one daemon.

The ablation study (``bench_ablation_merge``) shows a warm source cache
is worth ~3.6x on repeated merges; the serve subsystem is what turns
that observation into an architecture — a shared daemon whose
cross-request group cache and content-addressed blob store let many
tenants pay the decode cost once.  This scenario drives a realistic
mix (plan/diff/merge/reshard) from four tenant threads through one
service and reports what the one-shot CLI cannot: request latency
percentiles (p50/p99) and the service-wide cache hit rate, both
embedded in ``BENCH_serve.json`` via ``extra_info``.

Every merge and reshard output is verified bitwise-identical to a
serial one-shot run of the same job (modulo the manifest's
self-referential output path), and the run *fails* if the cache hit
rate falls below threshold — the CI bench-gate therefore gates service
behaviour, not just wall time.

Full mode: 1000 requests across 4 tenants.  Quick mode: 80.
"""

from __future__ import annotations

import hashlib
import itertools
import shutil
import statistics
import threading
import time
from pathlib import Path

import pytest

from _bench_common import QUICK, emit

from repro.core.tailor import LLMTailor
from repro.dist.reshard import reshard_checkpoint
from repro.serve import JobSpec, ServeClient, ServeConfig, TenantQuota, serve_in_thread
from repro.train import TrainConfig, Trainer
from repro.util.tables import Table

TENANTS = ("alpha", "beta", "gamma", "delta")
REQUESTS_PER_TENANT = 20 if QUICK else 250  # 80 quick / 1000 full, total
# Per 10 requests: 5 plan, 3 diff, 1 merge, 1 reshard.
MIX = ("plan", "diff", "plan", "merge", "plan", "diff", "reshard",
       "plan", "diff", "plan")
HIT_RATE_FLOOR = 0.5

_counter = itertools.count()


def _digest(root: Path) -> str:
    """Checkpoint content hash, output-path self-reference masked."""
    h = hashlib.sha256()
    for p in sorted(root.rglob("*")):
        if not p.is_file():
            continue
        h.update(p.relative_to(root).as_posix().encode())
        data = p.read_bytes()
        if p.name.endswith(".json"):
            data = data.replace(str(root).encode(), b"<OUT>")
        h.update(data)
    return h.hexdigest()


def _recipe_doc(run: Path) -> dict:
    return {
        "base_checkpoint": str(run / "checkpoint-24"),
        "slices": [{"slot": "layers.0-1", "source": str(run / "checkpoint-16")}],
        "options": {"stream": True},
    }


@pytest.fixture(scope="module")
def tenant_runs(tmp_path_factory):
    """One short training run, copied per tenant (identical content).

    Byte-identical copies are the dedup-friendly case the blob store is
    built for: four tenants, one stored copy of every shard group.
    """
    base = tmp_path_factory.mktemp("serve-bench")
    run = base / "run"
    cfg = TrainConfig(
        model="tiny-untied", task="cpt", total_steps=24,
        checkpoint_strategy="full", checkpoint_interval=8,
        output_dir=str(run), world_size=2, micro_batch_size=2,
        grad_accum_steps=1, seq_len=32, log_every=100,
    )
    Trainer(cfg).train()
    runs = {}
    for tenant in TENANTS:
        dst = base / f"tenant-{tenant}"
        shutil.copytree(run, dst)
        runs[tenant] = dst

    # Serial one-shot references for the bitwise check, one per tenant
    # per kind (sources differ by path, so manifests differ per tenant).
    refs = {}
    for tenant, tdir in runs.items():
        out = base / f"ref-merge-{tenant}"
        LLMTailor.from_dict(_recipe_doc(tdir)).merge(out)
        refs[(tenant, "merge")] = _digest(out)
        out = base / f"ref-reshard-{tenant}"
        reshard_checkpoint(tdir / "checkpoint-24", out, 3)
        refs[(tenant, "reshard")] = _digest(out)
    return base, runs, refs


def _job_for(kind: str, tenant: str, run: Path, scratch: Path) -> tuple[JobSpec, Path | None]:
    if kind == "plan":
        return JobSpec(tenant=tenant, kind="plan", params={
            "model": "tiny-untied", "strategy": "full"}), None
    if kind == "diff":
        return JobSpec(tenant=tenant, kind="diff", params={
            "checkpoint_a": str(run / "checkpoint-16"),
            "checkpoint_b": str(run / "checkpoint-24")}), None
    out = scratch / f"{kind}-{tenant}-{next(_counter)}"
    if kind == "merge":
        return JobSpec(tenant=tenant, kind="merge", params={
            "recipe_doc": _recipe_doc(run), "output": str(out)}), out
    return JobSpec(tenant=tenant, kind="reshard", params={
        "checkpoint": str(run / "checkpoint-24"), "output": str(out),
        "target_world_size": 3}), out


def test_serve_mixed_workload(benchmark, tenant_runs, tmp_path):
    base, runs, refs = tenant_runs
    sock = str(tmp_path / "s.sock")
    assert len(sock) < 100, "AF_UNIX path limit"
    config = ServeConfig(
        socket_path=sock, workers=2,
        blob_root=str(tmp_path / "blobs"),
        quota=TenantQuota(max_inflight=16, max_queued_bytes=1 << 33),
    )
    latencies: dict[str, list[float]] = {k: [] for k in ("plan", "diff",
                                                         "merge", "reshard")}
    verified: list[tuple[str, str, Path]] = []
    errors: list[str] = []
    final_stats: dict = {}

    def tenant_thread(tenant: str) -> None:
        run = runs[tenant]
        try:
            with ServeClient(sock) as client:
                for i in range(REQUESTS_PER_TENANT):
                    kind = MIX[i % len(MIX)]
                    spec, out = _job_for(kind, tenant, run, tmp_path)
                    t0 = time.perf_counter()
                    job = client.submit_and_wait(spec, timeout=600)
                    latency = time.perf_counter() - t0
                    if job["status"] != "done":
                        errors.append(f"{tenant}/{kind}: {job.get('error')}")
                        return
                    latencies[kind].append(latency)
                    if out is not None:
                        verified.append((tenant, kind, out))
        except Exception as exc:
            errors.append(f"{tenant}: {exc!r}")

    def run_workload():
        with serve_in_thread(config) as handle:
            threads = [threading.Thread(target=tenant_thread, args=(t,))
                       for t in TENANTS]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            final_stats.update(handle.service.stats())

    benchmark.pedantic(run_workload, rounds=1, iterations=1)
    assert not errors, errors[:5]

    total = sum(len(v) for v in latencies.values())
    assert total == REQUESTS_PER_TENANT * len(TENANTS)

    # Bitwise: every served merge/reshard equals its one-shot twin.
    for tenant, kind, out in verified:
        assert _digest(out) == refs[(tenant, kind)], (
            f"served {kind} for {tenant} diverged from one-shot output")

    hit_rate = final_stats["cache"]["hit_rate"]
    dedup = final_stats["blob_store"]["dedup_factor"]
    assert hit_rate >= HIT_RATE_FLOOR, (
        f"cache hit rate {hit_rate:.2%} below floor {HIT_RATE_FLOOR:.0%}")
    assert dedup >= 2.0, f"dedup factor {dedup} (identical tenants should share)"

    flat = sorted(x for v in latencies.values() for x in v)
    p50 = statistics.median(flat)
    p99 = flat[min(len(flat) - 1, int(len(flat) * 0.99))]
    benchmark.extra_info["requests"] = total
    benchmark.extra_info["tenants"] = len(TENANTS)
    benchmark.extra_info["latency_p50_s"] = round(p50, 6)
    benchmark.extra_info["latency_p99_s"] = round(p99, 6)
    benchmark.extra_info["cache_hit_rate"] = round(hit_rate, 4)
    benchmark.extra_info["dedup_factor"] = round(dedup, 4)
    benchmark.extra_info["outputs_verified_bitwise"] = len(verified)

    table = Table(["Kind", "Requests", "p50 (s)", "p99 (s)"],
                  title=f"Merge service: {total} requests, {len(TENANTS)} "
                        f"tenants, hit rate {hit_rate:.1%}, dedup {dedup:.1f}x")
    for kind, vals in latencies.items():
        if not vals:
            continue
        svals = sorted(vals)
        table.add_row([kind, len(vals), round(statistics.median(svals), 4),
                       round(svals[min(len(svals) - 1,
                                       int(len(svals) * 0.99))], 4)])
    emit("serve_mixed_workload", table.render())
