"""Process-pool comm backend: multi-core scaling of the training step.

The mp backend exists for exactly one reason — the sequential backend
burns ``world_size`` cores' worth of rank work on a single core.  This
scenario times identical 12-step runs under both backends at ws 2 and 4
and emits the speedup, while *always* asserting the two backends stayed
bitwise-identical (the speedup is worthless if the bits drift).

The ws-4 speedup floor (>= 1.5x) is only asserted on machines with at
least 4 cores: on a 1-core CI runner the forked workers time-slice one
core and mp legitimately runs at ~1x or below (fork + pipe overhead),
which is an environment fact, not a regression.
"""

from __future__ import annotations

import hashlib
import os

from _bench_common import ROUNDS, WARMUP_ROUNDS, emit

import numpy as np
import pytest

from repro.dist import mp_available, mp_unavailable_reason
from repro.train import TrainConfig, Trainer
from repro.util.tables import Table

pytestmark = pytest.mark.skipif(
    not mp_available(), reason=f"mp backend unavailable: {mp_unavailable_reason()}"
)

STEPS = 12
MIN_CORES_FOR_SPEEDUP = 4
SPEEDUP_FLOOR = 1.5
# {(world_size, backend): {"per_step": s, "digest": sha}}
_CELLS: dict[tuple[int, str], dict] = {}


def _train_config(tmp_path, *, world_size: int, backend: str) -> TrainConfig:
    return TrainConfig(
        model="llama3.2-1b-sim", task="cpt", total_steps=STEPS,
        checkpoint_strategy="full", checkpoint_interval=10_000,
        output_dir=str(tmp_path / f"run-{backend}-ws{world_size}"),
        world_size=world_size, micro_batch_size=2, grad_accum_steps=1,
        seq_len=48, log_every=10_000, compile=True, comm_backend=backend,
    )


def _digest(trainer: Trainer) -> str:
    h = hashlib.sha256()
    for name, arr in sorted(trainer.engine.master_state_dict().items()):
        h.update(name.encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    for name, arr in sorted(trainer.model.state_dict().items()):
        h.update(name.encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _emit_if_complete() -> None:
    if len(_CELLS) < 4:
        return
    cores = os.cpu_count() or 1
    table = Table(
        ["World size", "sim/step (ms)", "mp/step (ms)", "Speedup", "Bitwise"],
        title=f"mp scaling, llama3.2-1b-sim, {STEPS} steps, {cores} cores",
    )
    for ws in (2, 4):
        sim, mp = _CELLS[(ws, "sim")], _CELLS[(ws, "mp")]
        speedup = sim["per_step"] / mp["per_step"]
        table.add_row([
            ws, round(sim["per_step"] * 1e3, 2), round(mp["per_step"] * 1e3, 2),
            f"{speedup:.2f}x", "equal" if sim["digest"] == mp["digest"] else "DRIFT",
        ])
    emit("mp_scaling", table.render())
    if cores >= MIN_CORES_FOR_SPEEDUP:
        ws4 = _CELLS[(4, "sim")]["per_step"] / _CELLS[(4, "mp")]["per_step"]
        assert ws4 >= SPEEDUP_FLOOR, (
            f"ws=4 mp speedup {ws4:.2f}x below {SPEEDUP_FLOOR}x floor "
            f"on a {cores}-core machine"
        )


def _bench_cell(benchmark, tmp_path, world_size: int, backend: str) -> None:
    box: dict = {}

    def run():
        trainer = Trainer(_train_config(tmp_path, world_size=world_size, backend=backend))
        try:
            result = trainer.train()
            assert result.final_step == STEPS
            box["digest"] = _digest(trainer)
        finally:
            trainer.close()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    _CELLS[(world_size, backend)] = {
        "per_step": benchmark.stats["min"] / STEPS,
        "digest": box["digest"],
    }
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["digest"] = box["digest"]

    sibling = _CELLS.get((world_size, "sim" if backend == "mp" else "mp"))
    if sibling is not None:
        # The non-negotiable half of the scenario: identical bits.
        assert sibling["digest"] == box["digest"], (
            f"ws={world_size}: mp and sim backends diverged bitwise"
        )
    _emit_if_complete()


@pytest.mark.parametrize("backend", ["sim", "mp"])
@pytest.mark.parametrize("world_size", [2, 4])
def test_mp_scaling(benchmark, tmp_path, world_size, backend):
    _bench_cell(benchmark, tmp_path, world_size, backend)
