"""Figure 1 — the layer-wise structure of a Llama-style model.

Regenerates the paper's architecture sketch as a text tree: embeddings,
N decoder layers (two norms, attention, SwiGLU), final norm, lm_head
(weight-tied for the 1B model).
"""

from __future__ import annotations

from _bench_common import emit

from repro.nn import build_model, get_config


def test_fig1_llama8b_structure(benchmark):
    def build():
        model = build_model("llama3.1-8b-sim", seed=0)
        return model.structure_tree()

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig1_model_structure", "Figure 1: layer-wise structure (Llama3.1-8B topology)\n" + tree)
    assert "x32 DecoderLayer" in tree
    assert "embed_tokens" in tree and "lm_head" in tree
    assert "SwiGLU" in tree


def test_fig1_tied_1b_notes_weight_tying(benchmark):
    def build():
        return build_model("llama3.2-1b-sim", seed=0).structure_tree()

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig1_model_structure_1b", "Figure 1 (1B variant):\n" + tree)
    assert "weight-tied" in tree
    assert "x16 DecoderLayer" in tree


def test_fig1_slot_count_matches_table7(benchmark):
    def counts():
        return (
            get_config("llama3.2-1b").num_model_slots,
            get_config("llama3.1-8b").num_model_slots,
        )

    one_b, eight_b = benchmark.pedantic(counts, rounds=1, iterations=1)
    assert (one_b, eight_b) == (18, 35)
