"""Ablations over the merge-overhead drivers identified in §5.4.

The paper attributes LLMTailor's time overhead to: (i) loaded
checkpoint size, (ii) number of loaded checkpoints, (iii) the layer
load mode, and (iv) the number of total layers.  §4.2 additionally
credits ProcessPoolExecutor parallelism with reducing I/O latency.
This file sweeps each knob in isolation, plus the streaming engine
(selective group decode + worker fan-out) against the serial baseline.
"""

from __future__ import annotations

import itertools

import pytest

from _bench_common import QUICK, ROUNDS, WARMUP_ROUNDS, emit

from repro.core import LLMTailor, MergeOptions, MergeRecipe
from repro.core.groups import tailored_param_groups
from repro.dist import ZeroStage3Engine
from repro.io import Storage, save_checkpoint
from repro.nn import build_model, get_config, model_slots
from repro.util.tables import Table

_counter = itertools.count()
_worker_times: dict[int, float] = {}


@pytest.fixture(scope="module")
def parity_trail_ws4(tmp_path_factory):
    """A parity pair for a 16-layer model with a 4-rank world."""
    config = get_config("llama3.2-1b-sim")
    model = build_model(config, seed=1)
    engine = ZeroStage3Engine(
        model, config, tailored_param_groups(model, config, 0.01), world_size=4
    )
    storage = Storage(tmp_path_factory.mktemp("ablate"))
    slots = model_slots(config)
    L = config.num_hidden_layers
    odd = [f"layers.{i}" for i in range(L) if i % 2 == 1] + ["embed_tokens"]
    even = [s for s in slots if s not in odd]
    save_checkpoint(storage, step=100, model=model, config=config, engine=engine,
                    trainer_state={"global_step": 100}, slots=odd, strategy="parity")
    save_checkpoint(storage, step=200, model=model, config=config, engine=engine,
                    trainer_state={"global_step": 200}, slots=even, strategy="parity")
    return storage, config, odd


def _recipe(storage, odd, *, workers: int, cache_mode: str, stream: bool = False) -> MergeRecipe:
    return MergeRecipe(
        base_checkpoint=storage.root / "checkpoint-200",
        assignments={s: storage.root / "checkpoint-100" for s in odd},
        options=MergeOptions(
            workers=workers, cache_mode=cache_mode, verify=False, stream=stream
        ),
    )


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_ablation_worker_pool(benchmark, parity_trail_ws4, tmp_path, workers):
    """§4.2: ProcessPoolExecutor parallelism across rank shards."""
    storage, config, odd = parity_trail_ws4

    def run():
        out = tmp_path / f"w{workers}-{next(_counter)}"
        return LLMTailor(_recipe(storage, odd, workers=workers, cache_mode="per-checkpoint")).merge(
            output=out
        )

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    _worker_times[workers] = benchmark.stats["mean"]
    if workers == 4 and 1 in _worker_times:
        table = Table(["Workers", "Merge time (s)"],
                      title="Ablation: ProcessPoolExecutor workers (4 rank shards)")
        for w, t in sorted(_worker_times.items()):
            table.add_row([w, round(t, 4)])
        emit("ablation_worker_pool", table.render())


_stream_times: dict[str, float] = {}


@pytest.mark.parametrize("mode", ["serial", "stream", "stream-w4"])
def test_ablation_streaming_engine(benchmark, parity_trail_ws4, tmp_path, mode):
    """Streaming engine vs serial on the interleaved parity workload.

    Selective group decode must not lose to the full-blob decode; the
    merged output is bitwise-identical either way (pinned by tier-1
    tests), so this measures pure engine overhead/savings.
    """
    storage, config, odd = parity_trail_ws4
    stream = mode != "serial"
    workers = 4 if mode == "stream-w4" else 1
    holder = {}

    def run():
        out = tmp_path / f"s{mode}-{next(_counter)}"
        holder["result"] = LLMTailor(
            _recipe(storage, odd, workers=workers, cache_mode="none", stream=stream)
        ).merge(output=out)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    _stream_times[mode] = benchmark.stats["mean"]
    # Same interleaved load schedule regardless of engine.
    assert holder["result"].optimizer_files_loaded == config.num_model_slots * 4
    if mode == "stream-w4" and "serial" in _stream_times:
        table = Table(["Engine", "Merge time (s)"],
                      title="Ablation: streaming engine (interleaved parity, ws=4)")
        for key in ("serial", "stream", "stream-w4"):
            if key in _stream_times:
                table.add_row([key, round(_stream_times[key], 4)])
        emit("ablation_streaming_engine", table.render())
        # Single quick rounds are too noisy for timing assertions; the CI
        # gate's baseline comparison covers quick mode instead.
        if not QUICK:
            assert _stream_times["stream-w4"] < _stream_times["serial"] * 1.5, (
                "streaming engine should not be drastically slower than serial"
            )


@pytest.mark.parametrize("cache_mode", ["per-checkpoint", "none"])
def test_ablation_cache_mode(benchmark, parity_trail_ws4, tmp_path, cache_mode):
    """§5.4 driver (iii): layer load mode."""
    storage, config, odd = parity_trail_ws4
    holder = {}

    def run():
        out = tmp_path / f"c{cache_mode}-{next(_counter)}"
        holder["result"] = LLMTailor(
            _recipe(storage, odd, workers=1, cache_mode=cache_mode)
        ).merge(output=out)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    result = holder["result"]
    lines = [
        f"cache_mode={cache_mode}: files={result.optimizer_files_loaded}, "
        f"bytes={result.optimizer_bytes_loaded}, mean={benchmark.stats['mean']:.4f}s"
    ]
    emit(f"ablation_cache_mode_{cache_mode}", "\n".join(lines))
    expected = 2 * 4 if cache_mode == "per-checkpoint" else config.num_model_slots * 4
    assert result.optimizer_files_loaded == expected


def test_ablation_strategy_size_sweep(benchmark):
    """§5.4 driver (i): checkpoint size under each strategy, per model."""
    from repro.strategies import build_strategy, plan_strategy

    def sweep():
        rows = []
        for model in ("llama3.2-1b", "llama3.1-8b", "qwen2.5-7b"):
            config = get_config(model)
            for strategy in ("full", "parity", "filtered"):
                strat = build_strategy(strategy, config, 100,
                                       **({"initial_full": False} if strategy != "full" else {}))
                plan = plan_strategy(config, strat, total_steps=1000)
                rows.append((model, strategy, plan.total_bytes / 1e9,
                             plan.checkpoint_time_fraction * 100))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(["Model", "Strategy", "Total GB (10 events)", "Ckpt time (%)"],
                  title="Ablation: strategy x model checkpoint volume (analytic)")
    for row in rows:
        table.add_row([row[0], row[1], round(row[2], 1), round(row[3], 2)])
    emit("ablation_strategy_sweep", table.render())
    by_key = {(r[0], r[1]): r[2] for r in rows}
    for model in ("llama3.2-1b", "llama3.1-8b", "qwen2.5-7b"):
        assert by_key[(model, "filtered")] < by_key[(model, "parity")] < by_key[(model, "full")]
