"""Table 6 — checkpoint size and time proportion: full vs filtered.

Paper numbers: Llama-3.1-8B 1799.52 GB -> 420 GB (4.99% -> 1.66%,
~4.3x smaller); Qwen-2.5-7B 1811.52 GB -> 434.56 GB (20.63% -> 7.26%,
~2.8x lower time ratio).
"""

from __future__ import annotations

from _bench_common import emit

from repro.bench import paper_scale_overhead
from repro.util.tables import Table


def _paper_scale() -> tuple[str, dict]:
    table = Table(
        ["Model", "Type", "Total CKPT size (GB)", "Proportion of checkpoint time (%)"],
        title="Table 6 (paper scale, analytic): complete vs filtered checkpointing",
    )
    rows = {}
    for setting, model in (("llama-cpt", "Llama3.1-8B"), ("qwen-sft", "Qwen2.5-7B")):
        full = paper_scale_overhead(setting, "full")
        filtered = paper_scale_overhead(setting, "filtered", initial_full=False)
        rows[setting] = (full, filtered)
        table.add_row([model, "Total", round(full["total_gb"], 2),
                       round(full["ckpt_fraction"] * 100, 2)])
        table.add_row([model, "Filtered", round(filtered["total_gb"], 2),
                       round(filtered["ckpt_fraction"] * 100, 2)])
    return table.render(), rows


def test_table6_paper_scale(benchmark):
    text, rows = benchmark.pedantic(_paper_scale, rounds=1, iterations=1)
    emit("table6_filter_overhead_paper_scale", text)

    llama_full, llama_filt = rows["llama-cpt"]
    size_ratio = llama_full["total_bytes"] / llama_filt["total_bytes"]
    # Paper: 1799.52 / 420 = 4.28x for Llama-3.1-8B.
    assert 3.3 < size_ratio < 5.2, f"size ratio {size_ratio:.2f}"

    qwen_full, qwen_filt = rows["qwen-sft"]
    time_ratio = qwen_full["ckpt_fraction"] / qwen_filt["ckpt_fraction"]
    # Paper: 20.63 / 7.26 = 2.84x for Qwen-2.5-7B.
    assert 2.2 < time_ratio < 3.6, f"time ratio {time_ratio:.2f}"


def test_table6_measured_sim_scale(benchmark, qwen_sft_filtered, llama_cpt_filtered):
    def build():
        table = Table(
            ["Model", "Type", "Total CKPT bytes (measured)", "Ckpt time (%, sim clock)"],
            title="Table 6 (measured, sim scale): complete vs filtered checkpointing",
        )
        for p in (llama_cpt_filtered, qwen_sft_filtered):
            table.add_row([p.model, "Total", p.baseline_ckpt_bytes,
                           round(p.baseline_ckpt_fraction * 100, 3)])
            table.add_row([p.model, "Filtered", p.strategy_ckpt_bytes,
                           round(p.strategy_ckpt_fraction * 100, 3)])
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("table6_filter_overhead_measured", table.render())
    for p in (llama_cpt_filtered, qwen_sft_filtered):
        ratio = p.baseline_ckpt_bytes / p.strategy_ckpt_bytes
        # Short runs include one full snapshot, diluting the reduction;
        # still well below full checkpointing.
        assert ratio > 1.5, f"{p.model}: filtered size ratio {ratio:.2f}"
