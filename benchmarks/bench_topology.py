"""Hierarchical topology: flat ring vs 2x4 vs 4x2 at world size 8.

The hierarchical communicator is a *cost model*, not a different
algorithm: it inherits the flat ring's arithmetic verbatim and only the
byte accounting changes (intra-node vs inter-node link classes).  This
scenario gates the two contracts the topology subsystem ships on:

* **bitwise identity** — the final checkpoint of a 2x4 and a 4x2 run
  must be byte-for-byte identical to the flat-ring run (same model,
  seed, and world size; only the cluster shape differs);
* **planner fidelity** — ``plan_step_traffic(topology=...)`` must match
  the live per-link-class byte counters to 1e-6 relative, and
  ``plan_fault_cost(topology=...)`` must reproduce a chaotic 2x2 run's
  stall seconds and goodput to the same bar.

Wall time measures the accounting overhead of the hierarchical charge
path; the byte and goodput numbers come off the deterministic cost
model and are identical on every machine.
"""

from __future__ import annotations

import hashlib
import itertools
from pathlib import Path

from _bench_common import ROUNDS, WARMUP_ROUNDS, emit

from repro.dist.faults import FaultPlan, degraded_link, preemption, straggler
from repro.dist.topology import Topology
from repro.strategies import plan_fault_cost, plan_step_traffic
from repro.train import ChaosSupervisor, TrainConfig, Trainer
from repro.util.tables import Table

_counter = itertools.count()
_rows: dict[str, dict] = {}
_digests: dict[str, str] = {}

TOTAL_STEPS = 8
INTERVAL = 4
WORLD_SIZE = 8
REL_TOL = 1e-6

# Chaos leg: a 2x2 cluster with one intra-node and one inter-node
# degraded link, a straggler window, and a preemption mid-run.
CHAOS_STEPS = 24
CHAOS_INTERVAL = 6
CHAOS_WORLD = 4


def _config(tmp_path, tag: str, topology: Topology | None) -> TrainConfig:
    return TrainConfig(
        model="tiny-untied", task="cpt", total_steps=TOTAL_STEPS,
        checkpoint_strategy="full", checkpoint_interval=INTERVAL,
        output_dir=str(tmp_path / f"{tag}-{next(_counter)}"),
        world_size=WORLD_SIZE, micro_batch_size=1, grad_accum_steps=1,
        seq_len=32, log_every=20,
        topology=None if topology is None else topology.to_dict(),
    )


def _final_checkpoint_digest(run_dir: str) -> str:
    """One hash over every byte of the newest checkpoint directory."""
    root = Path(run_dir)
    steps = sorted(int(p.name.split("-")[1]) for p in root.glob("checkpoint-*"))
    ckpt = root / f"checkpoint-{steps[-1]}"
    h = hashlib.sha256()
    for path in sorted(p for p in ckpt.rglob("*") if p.is_file()):
        # training_args.json records the config verbatim — including the
        # topology field itself — so it legitimately differs between
        # shapes.  Every payload byte (weights, optimizer shards, RNG,
        # scheduler) must be identical.
        if path.name == "training_args.json":
            continue
        h.update(path.relative_to(ckpt).as_posix().encode())
        h.update(path.read_bytes())
    return h.hexdigest()


def _record(name: str, mean: float, *, total: float, intra: float,
            inter: float, note: str) -> None:
    _rows[name] = {
        "wall": mean, "total": total, "intra": intra, "inter": inter,
        "note": note,
    }
    if len(_rows) == 4:
        table = Table(
            ["Scenario", "Wall (s)", "Total bytes/step", "Intra bytes/step",
             "Inter bytes/step", "Gate"],
            title=f"Hierarchical topology ({TOTAL_STEPS} steps, ws "
            f"{WORLD_SIZE}; chaos leg {CHAOS_STEPS} steps, ws {CHAOS_WORLD})",
        )
        for scenario, row in _rows.items():
            table.add_row([
                scenario, round(row["wall"], 4), round(row["total"]),
                round(row["intra"]), round(row["inter"]), row["note"],
            ])
        emit("topology", table.render())


def _run_and_measure(benchmark, tmp_path, tag: str,
                     topology: Topology | None) -> dict:
    holder = {}

    def run():
        trainer = Trainer(_config(tmp_path, tag, topology))
        try:
            holder["result"] = trainer.train()
            holder["bytes_by_op"] = dict(trainer.engine.comm.stats.bytes_by_op)
            holder["run_dir"] = trainer.config.output_dir
        finally:
            trainer.close()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    assert holder["result"].interrupted_at is None
    holder["digest"] = _final_checkpoint_digest(holder["run_dir"])
    return holder


def _assert_traffic_parity(bytes_by_op: dict, topology: Topology) -> None:
    """Live per-link counters == plan_step_traffic to 1e-6 relative."""
    traffic = plan_step_traffic(
        _model_config(), world_size=WORLD_SIZE, topology=topology
    )
    for op in ("reduce_scatter", "all_gather"):
        for link_class in ("intra", "inter"):
            planned = TOTAL_STEPS * traffic.link_bytes[op][link_class]
            live = bytes_by_op.get(f"{op}/{link_class}", 0.0)
            assert abs(live - planned) <= REL_TOL * max(planned, 1.0), (
                f"{op}/{link_class}: planned {planned}, live {live}"
            )


def _model_config():
    from repro.nn import get_config

    return get_config("tiny-untied")


def test_topology_flat(benchmark, tmp_path):
    """Baseline: the flat ring at world size 8."""
    holder = _run_and_measure(benchmark, tmp_path, "flat", None)
    _digests["flat"] = holder["digest"]
    total = sum(holder["bytes_by_op"].values()) / TOTAL_STEPS
    _record("flat ring", benchmark.stats["mean"], total=total,
            intra=0.0, inter=0.0, note="baseline")


def test_topology_2x4(benchmark, tmp_path):
    """2 nodes x 4 ranks: most traffic stays on intra-node links."""
    topology = Topology(nodes=2, ranks_per_node=4)
    holder = _run_and_measure(benchmark, tmp_path, "2x4", topology)
    assert holder["digest"] == _digests["flat"], "2x4 diverged from flat ring"
    _assert_traffic_parity(holder["bytes_by_op"], topology)
    per = {k: v / TOTAL_STEPS for k, v in holder["bytes_by_op"].items()}
    intra = sum(v for k, v in per.items() if k.endswith("/intra"))
    inter = sum(v for k, v in per.items() if k.endswith("/inter"))
    _record("topology 2x4", benchmark.stats["mean"], total=intra + inter,
            intra=intra, inter=inter, note="bitwise == flat")


def test_topology_4x2(benchmark, tmp_path):
    """4 nodes x 2 ranks: the inter-node share grows with node count."""
    topology = Topology(nodes=4, ranks_per_node=2)
    holder = _run_and_measure(benchmark, tmp_path, "4x2", topology)
    assert holder["digest"] == _digests["flat"], "4x2 diverged from flat ring"
    _assert_traffic_parity(holder["bytes_by_op"], topology)
    per = {k: v / TOTAL_STEPS for k, v in holder["bytes_by_op"].items()}
    intra = sum(v for k, v in per.items() if k.endswith("/intra"))
    inter = sum(v for k, v in per.items() if k.endswith("/inter"))
    # More nodes, same world: strictly more inter-node traffic than 2x4.
    assert inter > _rows["topology 2x4"]["inter"]
    _record("topology 4x2", benchmark.stats["mean"], total=intra + inter,
            intra=intra, inter=inter, note="bitwise == flat")


def test_topology_fault_parity(benchmark, tmp_path):
    """Chaos on a 2x2 cluster: planner stall seconds == live to 1e-6."""
    topology = Topology(nodes=2, ranks_per_node=2)
    plan = FaultPlan(events=[
        preemption(8, 2, 6),
        straggler(5, 1, 3.0, duration=4),
        degraded_link(0, 1, 0.25, step=3, duration=10),   # intra-node edge
        degraded_link(0, 2, 0.5, step=1),                 # leader-to-leader
    ])
    holder = {}

    def run():
        config = TrainConfig(
            model="tiny-untied", task="cpt", total_steps=CHAOS_STEPS,
            checkpoint_strategy="full", checkpoint_interval=CHAOS_INTERVAL,
            output_dir=str(tmp_path / f"chaos-{next(_counter)}"),
            world_size=CHAOS_WORLD, micro_batch_size=1, grad_accum_steps=1,
            seq_len=32, log_every=20, topology=topology.to_dict(),
        )
        holder["result"] = ChaosSupervisor(config, plan).run()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    result = holder["result"]
    assert result.interrupted_at is None
    live = result.goodput
    cost = plan_fault_cost(
        _model_config(), plan, world_size=CHAOS_WORLD,
        total_steps=CHAOS_STEPS, checkpoint_interval=CHAOS_INTERVAL,
        topology=topology,
    )
    predicted = cost.goodput_report()
    assert cost.lost_steps == result.fault_timeline.lost_steps
    assert abs(predicted.stall_seconds - live.stall_seconds) <= (
        REL_TOL * max(live.stall_seconds, 1e-12)
    ), f"stall: planned {predicted.stall_seconds!r}, live {live.stall_seconds!r}"
    assert abs(cost.goodput - live.goodput) <= REL_TOL * live.goodput
    _record("chaos 2x2 parity", benchmark.stats["mean"],
            total=0.0, intra=0.0, inter=0.0,
            note=f"goodput {live.goodput:.4f} == planned")
