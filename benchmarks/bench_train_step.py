"""Training hot path: the fused zero-allocation ZeRO-3 step.

Two views of the same engine:

* ``test_train_step_ws{1,2,4}`` — end-to-end optimizer-step cost on the
  sim-scale 1b config at increasing world sizes (forward/backward, grad
  averaging, reduce-scatter, per-rank AdamW, all-gather + re-quantize).
  The emitted table derives per-step seconds and pairs them with the
  ring-model bytes each step moved (``TrainResult.comm_traffic``), so
  the sharding tax is visible next to its wall-clock cost.
* ``test_train_step_drift_trail`` — the exact workload of
  ``bench_motivation_layer_drift`` (40 steps + 2 full checkpoints + a
  momentum-inclusive diff), kept here as the hot-path regression trail:
  this is the number the fused engine, the single-read diff, and the
  RLE shard compression together took from 7.54s (PR 3 baseline) to
  under half that.
"""

from __future__ import annotations

from _bench_common import ROUNDS, WARMUP_ROUNDS, emit

import pytest

from repro.core.diffstat import diff_checkpoints, drift_ranking
from repro.train import TrainConfig, Trainer
from repro.util.tables import Table

STEPS = 12
_PER_WS: dict[int, dict] = {}


def _train_config(tmp_path, *, world_size: int, total_steps: int,
                  checkpoint_interval: int = 10_000,
                  compile: bool = True) -> TrainConfig:
    return TrainConfig(
        model="llama3.2-1b-sim", task="cpt", total_steps=total_steps,
        checkpoint_strategy="full", checkpoint_interval=checkpoint_interval,
        output_dir=str(tmp_path / f"run-ws{world_size}"), world_size=world_size,
        micro_batch_size=2, grad_accum_steps=1, seq_len=48, log_every=10_000,
        compile=compile,
    )


def _bench_steps(benchmark, tmp_path, world_size: int) -> None:
    result_box: dict = {}

    def run():
        cfg = _train_config(tmp_path, world_size=world_size, total_steps=STEPS)
        trainer = Trainer(cfg)
        result = trainer.train()
        result_box["result"] = result
        return result

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    result = result_box["result"]
    assert result.final_step == STEPS
    assert result.final_train_loss == result.final_train_loss  # not NaN
    per_step = benchmark.stats["min"] / STEPS
    traffic = result.comm_traffic["bytes_by_op"]
    _PER_WS[world_size] = {
        "per_step": per_step,
        "bytes_per_step": sum(traffic.values()) / STEPS,
    }
    if len(_PER_WS) == 3:
        table = Table(
            ["World size", "Per-step (ms, best)", "Collective bytes/step"],
            title=f"Fused training step, llama3.2-1b-sim, {STEPS} steps",
        )
        for ws in sorted(_PER_WS):
            row = _PER_WS[ws]
            table.add_row([ws, round(row["per_step"] * 1e3, 2),
                           int(row["bytes_per_step"])])
        emit("train_step_per_ws", table.render())


@pytest.mark.parametrize("world_size", [1, 2, 4])
def test_train_step_ws(benchmark, tmp_path, world_size):
    _bench_steps(benchmark, tmp_path, world_size)


def test_train_step_ws2_interpreted(benchmark, tmp_path):
    """The ws=2 workload with the tape compiler off (compiled-vs-interpreted
    reference pair; the parametrized benches above run compiled)."""

    def run():
        cfg = _train_config(tmp_path, world_size=2, total_steps=STEPS,
                            compile=False)
        trainer = Trainer(cfg)
        result = trainer.train()
        assert result.final_step == STEPS
        return result

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    interpreted = benchmark.stats["min"] / STEPS
    compiled = _PER_WS.get(2, {}).get("per_step")
    table = Table(
        ["Backward", "Per-step (ms, best)", "Speedup"],
        title=f"Tape compiler, llama3.2-1b-sim ws=2, {STEPS} steps",
    )
    if compiled:
        table.add_row(["compiled (tape replay)", round(compiled * 1e3, 2),
                       f"{interpreted / compiled:.2f}x"])
    table.add_row(["interpreted", round(interpreted * 1e3, 2), "1.00x"])
    emit("train_step_compile", table.render())


def test_train_step_drift_trail(benchmark, tmp_path):
    """The motivation_layer_drift workload as a hot-path regression trail."""

    def run():
        cfg = _train_config(tmp_path, world_size=2, total_steps=40,
                            checkpoint_interval=20)
        trainer = Trainer(cfg)
        trainer.train()
        root = trainer.storage.root
        return diff_checkpoints(root / "checkpoint-20", root / "checkpoint-40",
                                include_momentum=True)

    drifts = benchmark.pedantic(run, rounds=ROUNDS, iterations=1,
                                warmup_rounds=WARMUP_ROUNDS)
    ranked = drift_ranking(drifts)
    assert ranked and ranked[0].weight_l2 > 0
    table = Table(
        ["Trail", "Best (s)", "Mean (s)"],
        title="Layer-drift trail (40 steps + 2 ckpts + momentum diff)",
    )
    table.add_row(["train+ckpt+diff", round(benchmark.stats["min"], 3),
                   round(benchmark.stats["mean"], 3)])
    emit("train_step_drift_trail", table.render())
