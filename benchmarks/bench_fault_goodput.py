"""Goodput under a preemption soak: live supervisor vs analytic planner.

A seeded spot-preemption trace (exponential interarrival + restore)
drives a 60-step ZeRO-3 soak through six elastic transitions — three
shrinks and three rejoins.  The scenario gates two properties:

* **goodput floor** — the fleet must keep at least ``GOODPUT_FLOOR``
  useful steps per simulated busy second despite the churn (the trace
  is deterministic, so the live value is a constant of the repo);
* **planner fidelity** — ``plan_fault_cost`` replaying the same trace
  from config alone must predict the live goodput to 1e-6 and the lost
  steps / reshard loads exactly.

Wall time measures the chaos machinery (supervisor legs, sync writes,
resharding resumes); the goodput numbers come off the deterministic
SimClock and are identical on every machine.
"""

from __future__ import annotations

import itertools

from _bench_common import ROUNDS, WARMUP_ROUNDS, emit

from repro.dist.faults import FaultPlan
from repro.strategies import plan_fault_cost
from repro.train import ChaosSupervisor, TrainConfig, Trainer
from repro.util.tables import Table

_counter = itertools.count()
_rows: dict[str, dict] = {}

TOTAL_STEPS = 60
INTERVAL = 10
WORLD_SIZE = 3
TRACE_SEED = 1234

# The seeded trace yields goodput 0.9091; the gate leaves headroom for
# honest regressions (extra lost steps, new stall charges) only.
GOODPUT_FLOOR = 0.88


def _trace() -> FaultPlan:
    return FaultPlan.sample_preemption_trace(
        seed=TRACE_SEED, world_size=WORLD_SIZE, total_steps=TOTAL_STEPS,
        mean_interarrival=15.0, mean_restore=6.0, min_world_size=2,
    )


def _config(tmp_path, tag: str) -> TrainConfig:
    return TrainConfig(
        model="tiny-untied", task="cpt", total_steps=TOTAL_STEPS,
        checkpoint_strategy="full", checkpoint_interval=INTERVAL,
        output_dir=str(tmp_path / f"{tag}-{next(_counter)}"),
        world_size=WORLD_SIZE, micro_batch_size=2, grad_accum_steps=1,
        seq_len=32, log_every=20,
    )


def _record(name: str, mean: float, goodput, *, grows: int = 0) -> None:
    _rows[name] = {
        "wall": mean,
        "goodput": goodput.goodput,
        "useful": goodput.useful_steps,
        "lost": goodput.lost_steps,
        "grows": grows,
        "recovery": goodput.recovery_seconds,
    }
    if len(_rows) == 3:
        table = Table(
            ["Scenario", "Wall (s)", "Goodput (steps/sim-s)", "Useful",
             "Lost", "Grows", "Recovery I/O (s)"],
            title=f"Preemption-soak goodput ({TOTAL_STEPS} steps, ws "
            f"{WORLD_SIZE}, interval {INTERVAL}, trace seed {TRACE_SEED})",
        )
        for scenario, row in _rows.items():
            table.add_row([
                scenario, round(row["wall"], 4), round(row["goodput"], 4),
                row["useful"], row["lost"], row["grows"],
                round(row["recovery"], 3),
            ])
        emit("fault_goodput", table.render())


def test_fault_goodput_clean(benchmark, tmp_path):
    """Baseline: the identical run with no preemption trace attached."""
    holder = {}

    def run():
        holder["result"] = Trainer(_config(tmp_path, "clean")).train()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    result = holder["result"]
    assert result.interrupted_at is None
    # No faults: every step is useful, the only stall is ring comm.
    supervisor = ChaosSupervisor(_config(tmp_path, "clean-gp"), FaultPlan())
    clean = supervisor.run()
    assert clean.goodput.lost_steps == 0
    _record("clean", benchmark.stats["mean"], clean.goodput)


def test_fault_goodput_soak(benchmark, tmp_path):
    """The seeded preemption soak: 3 shrinks + 3 rejoins in 60 steps."""
    plan = _trace()
    holder = {}

    def run():
        holder["result"] = ChaosSupervisor(_config(tmp_path, "soak"), plan).run()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    result = holder["result"]
    assert result.interrupted_at is None
    timeline = result.fault_timeline
    assert timeline.grows == 3 and timeline.recoveries == 6
    goodput = result.goodput
    assert goodput.useful_steps == TOTAL_STEPS
    # The gated SLO: churn may not push goodput below the floor.
    assert goodput.goodput >= GOODPUT_FLOOR, goodput.summary()
    holder["goodput"] = goodput
    _record("preemption soak", benchmark.stats["mean"], goodput,
            grows=timeline.grows)

    # Planner fidelity, checked against the live run just measured.
    cost = plan_fault_cost(
        _model_config(), plan, world_size=WORLD_SIZE,
        total_steps=TOTAL_STEPS, checkpoint_interval=INTERVAL,
    )
    assert cost.lost_steps == timeline.lost_steps
    assert cost.reshard_loads == timeline.reshard_loads
    assert abs(cost.goodput - goodput.goodput) <= 1e-6 * goodput.goodput


def _model_config():
    from repro.nn import get_config

    return get_config("tiny-untied")


def test_fault_goodput_planner(benchmark):
    """plan_fault_cost replay of the same trace: microseconds, not runs."""
    plan = _trace()
    holder = {}

    def run():
        holder["cost"] = plan_fault_cost(
            _model_config(), plan, world_size=WORLD_SIZE,
            total_steps=TOTAL_STEPS, checkpoint_interval=INTERVAL,
        )

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=WARMUP_ROUNDS)
    cost = holder["cost"]
    assert cost.num_joins == 3 and cost.num_failures == 3
    assert cost.goodput >= GOODPUT_FLOOR
    _record("planner replay", benchmark.stats["mean"], cost.goodput_report(),
            grows=cost.num_joins)
