"""Five synthetic zero-shot benchmarks (the paper's evaluation suite).

Mirrors the paper's benchmark mix — general knowledge (MMLU), medical
expertise (MMLU-med, MedMCQA, MedQA), and reading-style yes/no judgment
(PubMedQA) — over the same knowledge base the training corpora teach.
Every item is a multiple-choice question; distractors are drawn from
other entities of the same type so chance accuracy is ``1/num_choices``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..util.errors import ConfigError
from ..util.rng import RngTree
from ..data.facts import MedicalKB

__all__ = ["MCQItem", "Benchmark", "build_benchmarks", "BENCHMARK_NAMES"]

BENCHMARK_NAMES = ("mmlu", "mmlu_med", "medmcqa", "medqa", "pubmedqa")


@dataclass(frozen=True)
class MCQItem:
    question: str
    choices: tuple[str, ...]
    answer_index: int

    def __post_init__(self) -> None:
        if not 0 <= self.answer_index < len(self.choices):
            raise ConfigError("answer_index out of range")


@dataclass
class Benchmark:
    name: str
    items: list[MCQItem] = field(default_factory=list)

    @property
    def chance_accuracy(self) -> float:
        """Expected accuracy of uniform random guessing over this item set."""
        if not self.items:
            return 0.0
        return float(np.mean([1.0 / len(it.choices) for it in self.items]))

    def __len__(self) -> int:
        return len(self.items)


def _mcq(
    rng: np.random.Generator,
    question: str,
    correct: str,
    pool: list[str],
    n_choices: int = 4,
) -> MCQItem:
    distractors = [p for p in pool if p != correct]
    k = min(n_choices - 1, len(distractors))
    picks = list(rng.choice(distractors, size=k, replace=False))
    choices = picks + [correct]
    order = rng.permutation(len(choices))
    choices = [choices[i] for i in order]
    return MCQItem(question=question, choices=tuple(choices), answer_index=choices.index(correct))


def build_benchmarks(
    kb: MedicalKB, *, seed: int = 99, items_per_benchmark: int = 40
) -> dict[str, Benchmark]:
    """Deterministic benchmark suite over a knowledge base."""
    tree = RngTree(seed, "benchmarks")
    suites: dict[str, Benchmark] = {}

    # MMLU-like: general (non-medical) facts.
    rng = tree.generator("mmlu")
    items = []
    values = sorted({f.value for f in kb.general})
    for i in range(items_per_benchmark):
        fact = kb.general[i % len(kb.general)]
        question = {
            "capital": f"the capital of {fact.subject} is",
            "element": f"the compound {fact.subject} is composed mainly of",
            "inventor": f"the device {fact.subject} was invented by",
        }[fact.relation]
        items.append(_mcq(rng, question, fact.value, values))
    suites["mmlu"] = Benchmark("mmlu", items)

    # MMLU-med-like: medical knowledge in completion style.
    rng = tree.generator("mmlu_med")
    items = []
    organs = kb.organs()
    for i in range(items_per_benchmark):
        d = kb.diseases[i % len(kb.diseases)]
        items.append(_mcq(rng, f"{d.name} primarily affects the", d.organ, organs))
    suites["mmlu_med"] = Benchmark("mmlu_med", items)

    # MedMCQA-like: symptom association questions.
    rng = tree.generator("medmcqa")
    items = []
    symptoms = kb.symptoms()
    for i in range(items_per_benchmark):
        d = kb.diseases[i % len(kb.diseases)]
        items.append(
            _mcq(rng, f"patients with {d.name} typically present with", d.symptom, symptoms)
        )
    suites["medmcqa"] = Benchmark("medmcqa", items)

    # MedQA-like: treatment selection (the SFT task's own phrasing).
    rng = tree.generator("medqa")
    items = []
    treatments = kb.treatments()
    for i in range(items_per_benchmark):
        d = kb.diseases[i % len(kb.diseases)]
        items.append(
            _mcq(
                rng,
                f"the recommended treatment for {d.name} is",
                d.treatment,
                treatments,
            )
        )
    suites["medqa"] = Benchmark("medqa", items)

    # PubMedQA-like: yes/no/maybe verification of stated facts.
    rng = tree.generator("pubmedqa")
    items = []
    for i in range(items_per_benchmark):
        d = kb.diseases[i % len(kb.diseases)]
        truthy = bool(rng.random() < 0.5)
        if truthy:
            claim = f"is {d.treatment} the recommended treatment for {d.name} ? the answer is"
            correct = "yes"
        else:
            wrong = kb.diseases[(i + 1) % len(kb.diseases)].treatment
            if wrong == d.treatment:
                wrong = kb.diseases[(i + 2) % len(kb.diseases)].treatment
            claim = f"is {wrong} the recommended treatment for {d.name} ? the answer is"
            correct = "no"
        choices = ["yes", "no", "maybe"]
        items.append(
            MCQItem(question=claim, choices=tuple(choices), answer_index=choices.index(correct))
        )
    suites["pubmedqa"] = Benchmark("pubmedqa", items)
    return suites
