"""Zero-shot evaluation benchmarks (lm-evaluation-harness substitute)."""

from .generate import generate, generate_text, greedy_continuations
from .benchmarks import BENCHMARK_NAMES, Benchmark, MCQItem, build_benchmarks
from .harness import evaluate_suite, suite_table
from .scorer import choice_logprobs, evaluate_benchmark, perplexity, score_item

__all__ = [
    "BENCHMARK_NAMES",
    "Benchmark",
    "MCQItem",
    "build_benchmarks",
    "choice_logprobs",
    "evaluate_benchmark",
    "evaluate_suite",
    "generate",
    "generate_text",
    "greedy_continuations",
    "perplexity",
    "score_item",
    "suite_table",
]
