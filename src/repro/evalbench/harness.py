"""Evaluation harness: run the full benchmark suite on a model.

The in-repo analogue of lm-evaluation-harness: builds the benchmark
suite from the knowledge base and reports per-benchmark zero-shot
accuracy, formatted like the paper's Tables 2 and 5.
"""

from __future__ import annotations

from ..data.facts import MedicalKB
from ..data.tokenizer import WordTokenizer
from ..nn.model import CausalLM
from ..util.tables import Table
from .benchmarks import BENCHMARK_NAMES, build_benchmarks
from .scorer import evaluate_benchmark

__all__ = ["evaluate_suite", "suite_table"]


def evaluate_suite(
    model: CausalLM,
    tokenizer: WordTokenizer,
    kb: MedicalKB,
    *,
    seed: int = 99,
    items_per_benchmark: int = 40,
    max_items: int | None = None,
) -> dict[str, float]:
    """Accuracy (percent) per benchmark, keys in paper column order."""
    suites = build_benchmarks(kb, seed=seed, items_per_benchmark=items_per_benchmark)
    return {
        name: evaluate_benchmark(model, tokenizer, suites[name], max_items=max_items)
        for name in BENCHMARK_NAMES
    }


def suite_table(rows: dict[str, dict[str, float]], title: str) -> Table:
    """Render {model label -> {benchmark -> accuracy}} as a paper table."""
    headers = ["Model"] + [n.upper() for n in BENCHMARK_NAMES]
    table = Table(headers, title=title)
    for label, scores in rows.items():
        table.add_row([label] + [round(scores.get(n, 0.0), 2) for n in BENCHMARK_NAMES])
    for col in range(1, len(headers)):
        table.highlight_best(col, best=max)
    return table
