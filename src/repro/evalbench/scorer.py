"""Likelihood-based scoring of multiple-choice items.

The standard lm-evaluation-harness protocol: for each candidate answer,
compute the model's total log-probability of the answer tokens given the
question tokens; predict the argmax.  Also provides perplexity for loss
tables.
"""

from __future__ import annotations

import numpy as np

from ..autograd import functional as F
from ..autograd.tensor import no_grad
from ..data.tokenizer import WordTokenizer
from ..nn.model import CausalLM
from .benchmarks import Benchmark, MCQItem

__all__ = ["choice_logprobs", "score_item", "evaluate_benchmark", "perplexity"]


def _logprobs(model: CausalLM, ids: np.ndarray) -> np.ndarray:
    """Token-level log P(ids[t+1] | ids[:t+1]) for one sequence."""
    with no_grad():
        logits = model(ids[None, :]).data[0]
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1))
    targets = ids[1:]
    return shifted[np.arange(len(targets)), targets] - log_z[: len(targets)]


def choice_logprobs(model: CausalLM, tokenizer: WordTokenizer, item: MCQItem) -> list[float]:
    """Total answer-token log-likelihood per choice."""
    prompt = tokenizer.encode(item.question, add_bos=True)
    scores: list[float] = []
    max_len = model.config.max_position_embeddings
    for choice in item.choices:
        answer = tokenizer.encode(choice)
        ids = np.asarray((prompt + answer)[:max_len], dtype=np.int64)
        n_answer = min(len(answer), len(ids) - 1)
        if n_answer <= 0:
            scores.append(-np.inf)
            continue
        lp = _logprobs(model, ids)
        scores.append(float(lp[-n_answer:].sum()))
    return scores


def score_item(model: CausalLM, tokenizer: WordTokenizer, item: MCQItem) -> bool:
    """Whether the model ranks the correct choice highest (greedy MCQ scoring)."""
    scores = choice_logprobs(model, tokenizer, item)
    return int(np.argmax(scores)) == item.answer_index


def evaluate_benchmark(
    model: CausalLM,
    tokenizer: WordTokenizer,
    benchmark: Benchmark,
    *,
    max_items: int | None = None,
) -> float:
    """Zero-shot accuracy (percent, as the paper reports)."""
    items = benchmark.items[:max_items] if max_items else benchmark.items
    if not items:
        return 0.0
    correct = sum(score_item(model, tokenizer, item) for item in items)
    return 100.0 * correct / len(items)


def perplexity(model: CausalLM, ids_batches: list[np.ndarray]) -> float:
    """Corpus perplexity over pre-tokenized (B, T) batches."""
    total_nll = 0.0
    total_tokens = 0
    with no_grad():
        for ids in ids_batches:
            logits = model(ids[:, :-1])
            nll = F.cross_entropy(logits, ids[:, 1:])
            n = ids[:, 1:].size
            total_nll += float(nll.data) * n
            total_tokens += n
    return float(np.exp(total_nll / max(1, total_tokens)))
