"""Autoregressive text generation (greedy / temperature sampling).

Used to sanity-check recovered models qualitatively ("the model runs
and trains as expected" — artifact expectation 1) and by the examples.
No KV cache: the sim-scale models are small enough to recompute the
prefix, which keeps the attention code single-pathed.
"""

from __future__ import annotations

import numpy as np

from ..autograd.tensor import no_grad
from ..data.tokenizer import WordTokenizer
from ..nn.model import CausalLM
from ..util.errors import ConfigError
from ..util.rng import RngTree

__all__ = ["generate", "generate_text", "greedy_continuations"]


def generate(
    model: CausalLM,
    prompt_ids: np.ndarray,
    *,
    max_new_tokens: int = 20,
    temperature: float = 0.0,
    top_k: int | None = None,
    eos_id: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Extend a 1-D token-id array; returns prompt + generated ids.

    ``temperature == 0`` is greedy decoding; otherwise softmax sampling,
    optionally truncated to the ``top_k`` most likely tokens.
    """
    ids = np.asarray(prompt_ids, dtype=np.int64).ravel()
    if ids.size == 0:
        raise ConfigError("generation requires a non-empty prompt")
    if temperature < 0:
        raise ConfigError(f"temperature must be >= 0, got {temperature}")
    rng = RngTree(seed, "generate").generator("stream")
    max_pos = model.config.max_position_embeddings

    with no_grad():
        for _ in range(max_new_tokens):
            window = ids[-max_pos:]
            logits = model(window[None, :]).data[0, -1].astype(np.float64)
            if temperature == 0.0:
                next_id = int(np.argmax(logits))
            else:
                scaled = logits / temperature
                if top_k is not None and 0 < top_k < scaled.size:
                    cutoff = np.partition(scaled, -top_k)[-top_k]
                    scaled = np.where(scaled >= cutoff, scaled, -np.inf)
                scaled -= scaled.max()
                probs = np.exp(scaled)
                probs /= probs.sum()
                next_id = int(rng.choice(probs.size, p=probs))
            ids = np.append(ids, next_id)
            if eos_id is not None and next_id == eos_id:
                break
    return ids


def generate_text(
    model: CausalLM,
    tokenizer: WordTokenizer,
    prompt: str,
    *,
    max_new_tokens: int = 20,
    temperature: float = 0.0,
    top_k: int | None = None,
    seed: int = 0,
) -> str:
    """Prompt string in, full decoded continuation out."""
    prompt_ids = tokenizer.encode_array(prompt, add_bos=True)
    out = generate(
        model,
        prompt_ids,
        max_new_tokens=max_new_tokens,
        temperature=temperature,
        top_k=top_k,
        eos_id=tokenizer.eos_id,
        seed=seed,
    )
    return tokenizer.decode(out)


def greedy_continuations(
    model: CausalLM,
    tokenizer: WordTokenizer,
    prompts: list[str],
    *,
    max_new_tokens: int = 10,
) -> dict[str, str]:
    """Greedy continuation per prompt — a cheap behavioural fingerprint.

    Two models that are bitwise equal produce identical fingerprints;
    used in tests to compare recovered models against originals.
    """
    return {
        p: generate_text(model, tokenizer, p, max_new_tokens=max_new_tokens)
        for p in prompts
    }
