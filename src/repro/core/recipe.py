"""Merge recipes: the YAML-driven interface (paper §3-4).

LLMTailor keeps MergeKit's workflow — write a short YAML recipe, run the
tool — but the recipe addresses *checkpoints* (weights + optimizer
shards + config files), not just weight files, and it must also name the
auxiliary layers (``embed_tokens``, ``norm``, ``lm_head``) explicitly
(§4.3).

Example::

    base_checkpoint: runs/exp1/checkpoint-200
    output: runs/exp1/merged-200
    slices:
      - slot: layers.0-7
        source: runs/exp1/checkpoint-100
      - slot: layers.8-15
        source: runs/exp1/checkpoint-200
    aux:
      embed_tokens: runs/exp1/checkpoint-100
      norm: runs/exp1/checkpoint-200
      lm_head: runs/exp1/checkpoint-200
    options:
      workers: 8
      cache_mode: per-checkpoint   # or "none" (reload per layer, §5.4)
      copy_configs_from: base

Slots not mentioned anywhere default to ``base_checkpoint``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..util import miniyaml
from ..util.errors import RecipeError

__all__ = ["MergeOptions", "MergeRecipe", "parse_recipe", "load_recipe"]

_CACHE_MODES = ("per-checkpoint", "none")
_SLOT_RE = re.compile(r"^(layers\.(\d+)(-(\d+))?|embed_tokens|norm|lm_head)$")


@dataclass(frozen=True)
class MergeOptions:
    """Execution knobs for the merge engine.

    ``stream`` selects the streaming engine: shards are consumed
    group-by-group through selective blob reads and weight files are
    piped tensor-by-tensor, bounding peak memory to roughly one output
    shard instead of every loaded source checkpoint.  The output is
    bitwise-identical to the default (fully materializing) path.
    """

    workers: int = 1
    cache_mode: str = "per-checkpoint"
    copy_configs_from: str = "base"  # "base" or an explicit checkpoint path
    verify: bool = True
    stream: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise RecipeError(f"options.workers must be >= 1, got {self.workers}")
        if self.cache_mode not in _CACHE_MODES:
            raise RecipeError(
                f"options.cache_mode must be one of {_CACHE_MODES}, got {self.cache_mode!r}"
            )


@dataclass
class MergeRecipe:
    """A validated, unresolved recipe (paths not yet checked on disk)."""

    base_checkpoint: Path
    assignments: dict[str, Path] = field(default_factory=dict)  # slot -> checkpoint dir
    output: Path | None = None
    options: MergeOptions = field(default_factory=MergeOptions)

    def source_for(self, slot: str) -> Path:
        """The checkpoint directory a layer slot is taken from (base if unassigned)."""
        return self.assignments.get(slot, self.base_checkpoint)

    def distinct_sources(self) -> list[Path]:
        """All checkpoints referenced, base first, in stable order."""
        seen: dict[Path, None] = {self.base_checkpoint: None}
        for path in self.assignments.values():
            seen.setdefault(path, None)
        return list(seen)

    def to_yaml(self) -> str:
        """Serialize the recipe to a YAML document string."""
        doc: dict[str, Any] = {"base_checkpoint": str(self.base_checkpoint)}
        if self.output is not None:
            doc["output"] = str(self.output)
        slices = []
        aux: dict[str, str] = {}
        for slot, path in self.assignments.items():
            if slot.startswith("layers."):
                slices.append({"slot": slot, "source": str(path)})
            else:
                aux[slot] = str(path)
        if slices:
            doc["slices"] = slices
        if aux:
            doc["aux"] = aux
        doc["options"] = {
            "workers": self.options.workers,
            "cache_mode": self.options.cache_mode,
            "copy_configs_from": self.options.copy_configs_from,
            "verify": self.options.verify,
            "stream": self.options.stream,
        }
        return miniyaml.dumps(doc)

    def save(self, path: str | Path) -> None:
        """Write the recipe as YAML to ``path`` (round-trips :func:`load_recipe`)."""
        Path(path).write_text(self.to_yaml(), encoding="utf-8")


def _expand_slot_spec(spec: str) -> list[str]:
    """``layers.0-7`` → [``layers.0`` .. ``layers.7``]; aux names pass through."""
    spec = str(spec).strip()
    m = _SLOT_RE.match(spec)
    if not m:
        raise RecipeError(
            f"invalid slot {spec!r}; expected layers.N, layers.N-M, "
            "embed_tokens, norm, or lm_head"
        )
    if not spec.startswith("layers."):
        return [spec]
    lo = int(m.group(2))
    hi = int(m.group(4)) if m.group(4) is not None else lo
    if hi < lo:
        raise RecipeError(f"descending layer range in slot {spec!r}")
    return [f"layers.{i}" for i in range(lo, hi + 1)]


def parse_recipe(doc: Any) -> MergeRecipe:
    """Validate a parsed YAML document into a :class:`MergeRecipe`."""
    if not isinstance(doc, dict):
        raise RecipeError(f"recipe must be a mapping, got {type(doc).__name__}")
    known = {"base_checkpoint", "output", "slices", "aux", "options"}
    unknown = set(doc) - known
    if unknown:
        raise RecipeError(f"unknown recipe keys: {sorted(unknown)}")

    base = doc.get("base_checkpoint")
    if not base:
        raise RecipeError("recipe missing required key 'base_checkpoint'")

    assignments: dict[str, Path] = {}

    def assign(slot: str, source: Any, origin: str) -> None:
        if not source:
            raise RecipeError(f"{origin}: missing 'source' for slot {slot!r}")
        if slot in assignments:
            raise RecipeError(f"slot {slot!r} assigned more than once")
        assignments[slot] = Path(str(source))

    slices = doc.get("slices") or []
    if not isinstance(slices, list):
        raise RecipeError("'slices' must be a list of {slot, source} entries")
    for i, entry in enumerate(slices):
        if not isinstance(entry, dict) or "slot" not in entry:
            raise RecipeError(f"slices[{i}] must be a mapping with 'slot' and 'source'")
        extra = set(entry) - {"slot", "source"}
        if extra:
            raise RecipeError(f"slices[{i}] has unknown keys {sorted(extra)}")
        for slot in _expand_slot_spec(entry["slot"]):
            assign(slot, entry.get("source"), f"slices[{i}]")

    aux = doc.get("aux") or {}
    if not isinstance(aux, dict):
        raise RecipeError("'aux' must be a mapping of {embed_tokens|norm|lm_head: source}")
    for slot, source in aux.items():
        if slot not in ("embed_tokens", "norm", "lm_head"):
            raise RecipeError(f"aux key must be embed_tokens/norm/lm_head, got {slot!r}")
        assign(slot, source, "aux")

    opts_doc = doc.get("options") or {}
    if not isinstance(opts_doc, dict):
        raise RecipeError("'options' must be a mapping")
    extra = set(opts_doc) - {"workers", "cache_mode", "copy_configs_from", "verify", "stream"}
    if extra:
        raise RecipeError(f"unknown option keys: {sorted(extra)}")
    options = MergeOptions(
        workers=int(opts_doc.get("workers", 1)),
        cache_mode=str(opts_doc.get("cache_mode", "per-checkpoint")),
        copy_configs_from=str(opts_doc.get("copy_configs_from", "base")),
        verify=bool(opts_doc.get("verify", True)),
        stream=bool(opts_doc.get("stream", False)),
    )

    output = doc.get("output")
    return MergeRecipe(
        base_checkpoint=Path(str(base)),
        assignments=assignments,
        output=Path(str(output)) if output else None,
        options=options,
    )


def load_recipe(path: str | Path) -> MergeRecipe:
    """Parse a recipe YAML file."""
    try:
        doc = miniyaml.load_file(path)
    except FileNotFoundError:
        raise RecipeError(f"recipe file not found: {path}") from None
    return parse_recipe(doc)
