"""Mini-MergeKit: the weights-only merging baseline (paper §3).

Reproduces what MergeKit can and — crucially — cannot do, so the paper's
comparison is testable:

* merges **model weight files only**: ``passthrough`` (layer slicing),
  ``linear`` (weighted average) and ``slerp`` (spherical interpolation);
* manipulates **transformer layers only** — embeddings, the final norm
  and the lm_head are always taken from the base model;
* **ignores optimizer shards and config files entirely**, so its output
  is *not* resumable: it is a weights directory, not a checkpoint.

LLMTailor adopts the same recipe style and extends it to full
checkpoints.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from ..io.layout import CheckpointPaths, WEIGHTS_NAME
from ..io.tensorfile import TensorFile, TensorFileWriter
from ..nn.config import ModelConfig
from ..nn.slots import EMBED, LM_HEAD, NORM, slot_parameter_shapes, transformer_slots
from ..util import miniyaml
from ..util.errors import MergeError, RecipeError
from ..util.jsonio import read_json

__all__ = ["mergekit_merge", "mergekit_merge_from_yaml", "MERGE_METHODS"]

MERGE_METHODS = ("passthrough", "linear", "slerp")


def _slerp(a: np.ndarray, b: np.ndarray, t: float) -> np.ndarray:
    """Spherical linear interpolation between two flattened tensors."""
    a_flat = a.ravel().astype(np.float64)
    b_flat = b.ravel().astype(np.float64)
    na, nb = np.linalg.norm(a_flat), np.linalg.norm(b_flat)
    if na == 0 or nb == 0:
        return ((1 - t) * a + t * b).astype(np.float32)
    cos = float(np.clip(a_flat @ b_flat / (na * nb), -1.0, 1.0))
    omega = np.arccos(cos)
    if omega < 1e-7:  # nearly parallel: fall back to lerp
        return ((1 - t) * a + t * b).astype(np.float32)
    sin = np.sin(omega)
    out = (np.sin((1 - t) * omega) / sin) * a_flat + (np.sin(t * omega) / sin) * b_flat
    return out.reshape(a.shape).astype(np.float32)


def mergekit_merge(
    *,
    base: str | Path,
    output: str | Path,
    method: str = "passthrough",
    layer_sources: dict[int, str | Path] | None = None,
    blend: float = 0.5,
    other: str | Path | None = None,
) -> Path:
    """Weights-only merge, MergeKit style.

    ``passthrough``: take transformer layer ``i`` from
    ``layer_sources[i]`` (default: base).  ``linear``/``slerp``: combine
    every transformer layer of ``base`` with ``other`` at ratio
    ``blend``.  Auxiliary layers always come from ``base`` (§3 limitation
    2); nothing but ``model.tsr`` is written (limitations 1 and 3).

    Tensors stream through a :class:`TensorFileWriter` one at a time
    (two at a time for ``linear``/``slerp``), so the merge never holds a
    full model's weights in memory.
    """
    if method not in MERGE_METHODS:
        raise RecipeError(f"unknown merge method {method!r}; expected one of {MERGE_METHODS}")
    base_cp = CheckpointPaths(base)
    if not base_cp.weights.exists():
        raise MergeError(f"base model weights not found: {base_cp.weights}")
    config = ModelConfig.from_dict(read_json(base_cp.config))
    base_reader = TensorFile(base_cp.weights)
    by_slot = slot_parameter_shapes(config)
    dtype = config.storage_dtype

    output = Path(output)
    output.mkdir(parents=True, exist_ok=True)
    with TensorFileWriter(
        output / WEIGHTS_NAME,
        metadata={"model": config.name, "merged_by": "mini-mergekit", "method": method},
    ) as writer:
        # Auxiliary layers: always the base model (MergeKit limitation).
        for slot in (EMBED, NORM, LM_HEAD):
            for name in by_slot.get(slot, {}):
                writer.add(name, base_reader.read(name), dtype)

        if method == "passthrough":
            sources = {int(k): Path(v) for k, v in (layer_sources or {}).items()}
            readers: dict[Path, TensorFile] = {}
            for i, slot in enumerate(transformer_slots(config)):
                src = sources.get(i)
                if src is None:
                    reader = base_reader
                else:
                    reader = readers.get(src)
                    if reader is None:
                        reader = TensorFile(CheckpointPaths(src).weights)
                        readers[src] = reader
                for name in by_slot[slot]:
                    if name not in reader:
                        raise MergeError(f"source for layer {i} lacks tensor {name!r}")
                    writer.add(name, reader.read(name), dtype)
        else:
            if other is None:
                raise RecipeError(f"method {method!r} requires 'other' model")
            other_reader = TensorFile(CheckpointPaths(other).weights)
            for slot in transformer_slots(config):
                for name in by_slot[slot]:
                    a = base_reader.read(name)
                    b = other_reader.read(name)
                    if a.shape != b.shape:
                        raise MergeError(
                            f"shape mismatch for {name}: {a.shape} vs {b.shape}"
                        )
                    if method == "linear":
                        blended: np.ndarray = (1.0 - blend) * a + blend * b
                    else:
                        blended = _slerp(a, b, blend)
                    writer.add(name, blended, dtype)
    # NOTE: deliberately NO optimizer shards, NO trainer_state.json, NO
    # manifest — this output cannot resume training (the gap LLMTailor
    # fills).  Only config.json is emitted so the weights are loadable.
    import shutil

    shutil.copy2(base_cp.config, output / "config.json")
    return output


def mergekit_merge_from_yaml(path: str | Path) -> Path:
    """Run a weights-only merge from a MergeKit-style YAML document.

    Schema::

        method: passthrough | linear | slerp
        base: <model dir>
        output: <dir>
        layers: {0: <dir>, 1: <dir>, ...}   # passthrough
        other: <dir>                        # linear / slerp
        blend: 0.5
    """
    doc: Any = miniyaml.load_file(path)
    if not isinstance(doc, dict):
        raise RecipeError("mergekit recipe must be a mapping")
    return mergekit_merge(
        base=doc["base"],
        output=doc["output"],
        method=doc.get("method", "passthrough"),
        layer_sources=doc.get("layers"),
        blend=float(doc.get("blend", 0.5)),
        other=doc.get("other"),
    )
