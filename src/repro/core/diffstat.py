"""Layer-wise checkpoint diff statistics — the paper's motivation.

The premise of selective checkpointing (§1) is that "updates across LLM
layers are highly non-uniform ... some layers undergo more significant
changes, while others remain relatively stable".  This module measures
exactly that between two checkpoints: per-slot relative L2 drift of
weights and of optimizer momentum, computable from checkpoint files
alone (no model instantiation).

Used by ``benchmarks/bench_motivation_layer_drift.py`` to regenerate
the motivating evidence, and exposed as ``llmtailor diff`` on the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..io.blobfile import read_blob
from ..io.layout import CheckpointPaths
from ..io.tensorfile import TensorFile
from ..nn.config import ModelConfig
from ..nn.slots import model_slots, slot_parameter_shapes
from ..util.errors import MergeError
from ..util.jsonio import read_json
from .groups import groups_for_slot

__all__ = ["SlotDrift", "diff_checkpoints", "drift_ranking", "nonuniformity_index"]


@dataclass(frozen=True)
class SlotDrift:
    """Relative change of one slot between two checkpoints."""

    slot: str
    weight_l2: float  # ||w_b - w_a|| / ||w_a||
    weight_max: float  # max |w_b - w_a|
    momentum_l2: float  # same for exp_avg (0 if shards unavailable)
    params: int


def _slot_weight_drift(
    a: TensorFile, b: TensorFile, names: list[str]
) -> tuple[float, float, int]:
    num = 0.0
    den = 0.0
    max_abs = 0.0
    count = 0
    for name in names:
        wa = a.read(name).astype(np.float64).ravel()
        wb = b.read(name).astype(np.float64).ravel()
        diff = wb - wa
        num += float(diff @ diff)
        den += float(wa @ wa)
        max_abs = max(max_abs, float(np.abs(diff).max(initial=0.0)))
        count += wa.size
    rel = float(np.sqrt(num) / (np.sqrt(den) + 1e-12))
    return rel, max_abs, count


def _load_shards(ckpt: CheckpointPaths, world_size: int) -> list[dict] | None:
    """Every rank's shard payload, decoded once, or ``None`` if unavailable.

    Decompressing a monolithic shard blob dominates the cost of a diff,
    so each of the ``2 * world_size`` files is read exactly once and the
    decoded payloads are shared across every slot's momentum pass (the
    old per-slot reads decompressed the same files ``num_slots`` times —
    ~90% of ``llmtailor diff`` wall time on a sim-scale run).
    """
    try:
        return [read_blob(ckpt.shard(rank)) for rank in range(world_size)]
    except (MergeError, FileNotFoundError):
        return None


def _slot_momentum_drift(
    config: ModelConfig,
    shards_a: list[dict],
    shards_b: list[dict],
    slot: str,
) -> float:
    num = 0.0
    den = 0.0
    try:
        for shard_a, shard_b in zip(shards_a, shards_b):
            for g in groups_for_slot(config, slot):
                ma = np.asarray(shard_a["state"][g]["exp_avg"], dtype=np.float64)
                mb = np.asarray(shard_b["state"][g]["exp_avg"], dtype=np.float64)
                diff = mb - ma
                num += float(diff @ diff)
                den += float(ma @ ma)
    except (KeyError, MergeError):
        return 0.0
    return float(np.sqrt(num) / (np.sqrt(den) + 1e-12))


def diff_checkpoints(
    checkpoint_a: str | Path,
    checkpoint_b: str | Path,
    *,
    include_momentum: bool = False,
) -> list[SlotDrift]:
    """Per-slot drift between two (complete) checkpoints, slot order."""
    ckpt_a = CheckpointPaths(checkpoint_a)
    ckpt_b = CheckpointPaths(checkpoint_b)
    if not ckpt_a.exists() or not ckpt_b.exists():
        raise MergeError("both checkpoints must exist to diff them")
    config = ModelConfig.from_dict(read_json(ckpt_a.config))
    manifest_a = ckpt_a.read_manifest()
    world_size = int(manifest_a.get("world_size", 0))

    file_a = TensorFile(ckpt_a.weights)
    file_b = TensorFile(ckpt_b.weights)
    by_slot = slot_parameter_shapes(config)

    shards_a = shards_b = None
    if include_momentum and world_size:
        shards_a = _load_shards(ckpt_a, world_size)
        shards_b = _load_shards(ckpt_b, world_size)

    out: list[SlotDrift] = []
    for slot in model_slots(config):
        names = [n for n in by_slot[slot] if n in file_a and n in file_b]
        if not names:
            continue  # slot not present in both (partial checkpoints)
        w_l2, w_max, count = _slot_weight_drift(file_a, file_b, names)
        m_l2 = (
            _slot_momentum_drift(config, shards_a, shards_b, slot)
            if shards_a is not None and shards_b is not None
            else 0.0
        )
        out.append(SlotDrift(slot=slot, weight_l2=w_l2, weight_max=w_max,
                             momentum_l2=m_l2, params=count))
    if not out:
        raise MergeError("checkpoints share no slots; nothing to diff")
    return out


def drift_ranking(drifts: list[SlotDrift]) -> list[SlotDrift]:
    """Slots ordered most-changed first."""
    return sorted(drifts, key=lambda d: d.weight_l2, reverse=True)


def nonuniformity_index(drifts: list[SlotDrift]) -> float:
    """Max/median drift ratio — > 1 means updates are layer-non-uniform.

    The paper's premise predicts values well above 1 during post-training.
    """
    values = np.asarray([d.weight_l2 for d in drifts], dtype=np.float64)
    med = float(np.median(values))
    if med == 0:
        return float("inf") if values.max() > 0 else 1.0
    return float(values.max() / med)
