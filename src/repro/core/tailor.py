"""The LLMTailor facade: recipe in, resumable Frankenstein checkpoint out.

Typical use::

    from repro.core import LLMTailor

    tailor = LLMTailor.from_yaml("recipe.yaml")
    result = tailor.merge(output="runs/exp/merged-400")
    print(result.summary())
    # runs/exp/merged-400 is now a complete checkpoint the Trainer can
    # resume from.

The merge pipeline (paper §4): resolve and validate the plan → merge
weight files (lazy per-tensor copies) → merge per-rank optimizer shards
(full-file loads, optionally in parallel) → copy config files → write
manifest → verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..io.layout import CheckpointPaths
from ..util.logging import get_logger
from ..util.timer import WallTimer
from .configs import copy_config_files, write_merged_manifest
from .optimizer_merge import RankMergeStats, merge_optimizer_shards
from .plan import MergePlan, resolve_plan
from .recipe import MergeRecipe, load_recipe, parse_recipe
from .verify import VerifyReport, verify_checkpoint
from .weights import WeightMergeStats, merge_weight_files

__all__ = ["MergeResult", "LLMTailor"]

log = get_logger("core.tailor")


@dataclass
class MergeResult:
    """Outcome of one merge: output location plus full accounting."""

    output: CheckpointPaths
    plan: dict[str, Any]
    weight_stats: WeightMergeStats
    rank_stats: list[RankMergeStats]
    verify_report: VerifyReport | None
    total_seconds: float
    config_files_copied: list[str] = field(default_factory=list)

    @property
    def optimizer_files_loaded(self) -> int:
        """Total shard files read across all ranks."""
        return sum(s.files_loaded for s in self.rank_stats)

    @property
    def optimizer_bytes_loaded(self) -> int:
        """Total shard-file bytes read across all ranks."""
        return sum(s.bytes_loaded for s in self.rank_stats)

    @property
    def optimizer_load_seconds(self) -> float:
        """Wall seconds spent loading shard files (summed over ranks)."""
        return sum(s.load_seconds for s in self.rank_stats)

    @property
    def checkpoints_included(self) -> int:
        """Number of distinct source checkpoints the merge read."""
        return len({v for v in self.plan["slot_sources"].values()})

    def summary(self) -> str:
        """Multi-line human-readable recap of the merge (sizes, times, sources)."""
        lines = [
            f"merged checkpoint: {self.output.dir}",
            f"  checkpoints included : {self.checkpoints_included}",
            f"  weight tensors copied: {self.weight_stats.tensors_copied} "
            f"({self.weight_stats.bytes_read} bytes)",
            f"  optimizer files load : {self.optimizer_files_loaded} "
            f"({self.optimizer_bytes_loaded} bytes)",
            f"  total time           : {self.total_seconds:.3f}s",
        ]
        if self.verify_report is not None:
            lines.append(f"  verification         : {self.verify_report}")
        return "\n".join(lines)


class LLMTailor:
    """Merge layers (weights *and* optimizer state) across checkpoints."""

    def __init__(self, recipe: MergeRecipe) -> None:
        self.recipe = recipe

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_yaml(cls, path: str | Path) -> "LLMTailor":
        """Build a tailor from a recipe YAML file."""
        return cls(load_recipe(path))

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "LLMTailor":
        """Build a tailor from a parsed recipe document (YAML/JSON dict)."""
        return cls(parse_recipe(doc))

    @classmethod
    def from_checkpoints(
        cls,
        run_root: str | Path,
        failure_step: int | None = None,
        **recipe_kwargs,
    ) -> "LLMTailor":
        """Auto-build a recipe from the partial checkpoints under a run.

        Scans every ``checkpoint-*/tailor_manifest.json`` and, for each
        layer slot, picks the most recent checkpoint at or before
        ``failure_step`` that saved it (the T2 workflow in the paper's
        artifact description).
        """
        from .autorecipe import recipe_from_run  # local import: avoid cycle

        return cls(recipe_from_run(run_root, failure_step=failure_step, **recipe_kwargs))

    # -- the main entry point ----------------------------------------------------

    def plan(self, output: str | Path | None = None) -> MergePlan:
        """Resolve and validate without writing anything (dry run)."""
        return resolve_plan(self.recipe, output=output)

    def merge(self, output: str | Path | None = None) -> MergeResult:
        """Execute the merge; returns the result with full accounting."""
        total = WallTimer()
        total.start()
        plan = self.plan(output)
        log.info("merging %d slots into %s", len(plan.slot_sources), plan.output)

        weight_stats = merge_weight_files(plan)

        spec = plan.to_worker_spec()
        spec["global_step"] = plan.config_source.step
        rank_stats = merge_optimizer_shards(
            spec, world_size=plan.world_size, workers=plan.options.workers
        )

        copied = copy_config_files(plan)
        write_merged_manifest(plan)

        report: VerifyReport | None = None
        if plan.options.verify:
            report = verify_checkpoint(plan.output)
            report.raise_if_failed()

        result = MergeResult(
            output=CheckpointPaths(plan.output),
            plan=plan.describe(),
            weight_stats=weight_stats,
            rank_stats=rank_stats,
            verify_report=report,
            total_seconds=total.stop(),
            config_files_copied=copied,
        )
        log.info("merge finished in %.3fs", result.total_seconds)
        return result
