"""Optimizer shard merging — the heart of LLMTailor (paper §4.2).

Per data-parallel rank ``r`` there is one monolithic shard blob per
checkpoint; because optimizer state cannot be lazily loaded, building
the merged rank-``r`` shard requires *fully loading* every source
checkpoint's rank-``r`` blob.  The tailored 2L+x group layout makes the
copy itself trivial: a transformer layer owns exactly two group indices
(computable from the config alone), so merging is "index, copy, insert".

Two load policies reproduce the paper's Table 7 regimes:

* ``per-checkpoint`` — each distinct source blob is loaded once per rank
  (the "straightforward" mode: layers 1-16 from ckpt A, 17-32 from B);
* ``none`` — the source blob is re-loaded for every slot (the
  "interleaved parity" mode, which loads and discards checkpoints N
  times and dominates merge time).

Ranks are processed in parallel with ``ProcessPoolExecutor`` (§4.2),
falling back to in-process execution when multiprocessing is
unavailable or ``workers == 1``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..dist.zero import SHARD_FORMAT_VERSION
from ..io.blobfile import read_blob, write_blob
from ..io.layout import CheckpointPaths
from ..nn.config import ModelConfig
from ..nn.slots import model_slots
from ..util.errors import MergeError
from ..util.timer import WallTimer
from .groups import groups_for_slot

__all__ = ["RankMergeStats", "merge_optimizer_shards", "merge_rank_shard"]


@dataclass
class RankMergeStats:
    """Per-rank accounting for the merge-overhead experiments (Table 7)."""

    rank: int
    files_loaded: int = 0
    bytes_loaded: int = 0
    load_seconds: float = 0.0
    write_seconds: float = 0.0
    bytes_written: int = 0
    checkpoints_touched: int = 0
    slots_copied: int = 0

    def as_dict(self) -> dict[str, Any]:
        return dict(self.__dict__)


@dataclass
class _ShardCache:
    """Load policy implementation + accounting."""

    rank: int
    cache_mode: str
    stats: RankMergeStats
    _cache: dict[str, dict] = field(default_factory=dict)
    _seen: set = field(default_factory=set)

    def load(self, ckpt_dir: str) -> dict:
        if self.cache_mode == "per-checkpoint" and ckpt_dir in self._cache:
            return self._cache[ckpt_dir]
        shard_path = _shard_path(ckpt_dir, self.rank)
        if not shard_path.exists():
            raise MergeError(f"missing optimizer shard for rank {self.rank}: {shard_path}")
        timer = WallTimer()
        with timer:
            shard = read_blob(shard_path)
        self.stats.load_seconds += timer.elapsed
        self.stats.files_loaded += 1
        self.stats.bytes_loaded += shard_path.stat().st_size
        if ckpt_dir not in self._seen:
            self._seen.add(ckpt_dir)
            self.stats.checkpoints_touched += 1
        if self.cache_mode == "per-checkpoint":
            self._cache[ckpt_dir] = shard
        return shard


def _shard_path(ckpt_dir: str, rank: int) -> Path:
    cp = CheckpointPaths(ckpt_dir)
    step = cp.step
    return Path(ckpt_dir) / f"global_step{step}" / f"zero_pp_rank_{rank}_mp_rank_00_optim_states.blob"


def merge_rank_shard(spec: dict[str, Any], rank: int) -> dict[str, Any]:
    """Build and write the merged shard for one rank; returns stats.

    ``spec`` is the picklable plan description from
    :meth:`MergePlan.to_worker_spec` plus ``global_step``.  Top-level so
    ProcessPoolExecutor can pickle it.
    """
    config = ModelConfig.from_dict(spec["config"])
    stats = RankMergeStats(rank=rank)
    cache = _ShardCache(rank=rank, cache_mode=spec["cache_mode"], stats=stats)

    num_groups = config.num_param_groups_tailored
    groups_header: dict[int, dict] = {}
    hyperparams: dict[int, dict] = {}
    fp32: dict[int, Any] = {}
    state: dict[int, Any] = {}

    # Iterate slot-by-slot in model order: with cache_mode="none" this is
    # exactly the paper's interleaved load-and-discard sequence.
    for slot in model_slots(config):
        source_dir = spec["slot_sources"][slot]
        shard = cache.load(source_dir)
        if shard.get("format_version") != SHARD_FORMAT_VERSION:
            raise MergeError(
                f"{source_dir}: unsupported shard format "
                f"{shard.get('format_version')} for rank {rank}"
            )
        if int(shard.get("world_size", -1)) != int(spec["world_size"]):
            raise MergeError(
                f"{source_dir}: shard world_size {shard.get('world_size')} != "
                f"plan world_size {spec['world_size']}"
            )
        available = {h["index"]: h for h in shard["groups"]}
        available_hyper = {h["index"]: h for h in shard.get("hyperparams", [])}
        for g in groups_for_slot(config, slot):
            if g not in available:
                raise MergeError(
                    f"{source_dir}: rank {rank} shard lacks group {g} "
                    f"(slot {slot!r}); the checkpoint is more partial than its manifest claims"
                )
            groups_header[g] = available[g]
            hyperparams[g] = available_hyper.get(g, {})
            fp32[g] = shard["fp32_flat_groups"][g]
            state[g] = shard["state"][g]
        stats.slots_copied += 1

    if set(groups_header) != set(range(num_groups)):
        missing = sorted(set(range(num_groups)) - set(groups_header))
        raise MergeError(f"merge produced incomplete group set; missing {missing[:8]}")

    merged = {
        "format_version": SHARD_FORMAT_VERSION,
        "zero_stage": 3,
        "world_size": int(spec["world_size"]),
        "rank": rank,
        "num_total_groups": num_groups,
        "groups": [groups_header[g] for g in range(num_groups)],
        "hyperparams": [
            dict(hyperparams[g], index=g) if hyperparams[g] else {"index": g}
            for g in range(num_groups)
        ],
        "fp32_flat_groups": {g: fp32[g] for g in range(num_groups)},
        "state": {g: state[g] for g in range(num_groups)},
        "global_step": int(spec["global_step"]),
        "merged_by": "llmtailor",
    }

    out_dir = Path(spec["output"]) / f"global_step{spec['global_step']}"
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"zero_pp_rank_{rank}_mp_rank_00_optim_states.blob"
    timer = WallTimer()
    with timer:
        stats.bytes_written = write_blob(out_path, merged)
    stats.write_seconds = timer.elapsed
    return stats.as_dict()


def _worker_entry(args: tuple[dict, int]) -> dict[str, Any]:
    spec, rank = args
    return merge_rank_shard(spec, rank)


def merge_optimizer_shards(
    spec: dict[str, Any], world_size: int, workers: int
) -> list[RankMergeStats]:
    """Merge every rank's shard, in parallel across ranks when possible.

    Returns per-rank stats in rank order (stable regardless of worker
    scheduling).
    """
    jobs = [(spec, r) for r in range(world_size)]
    results: list[dict[str, Any]]
    max_workers = min(workers, world_size, os.cpu_count() or 1)
    if max_workers > 1:
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                results = list(pool.map(_worker_entry, jobs))
        except (OSError, PermissionError):
            # Sandboxes without fork/semaphores: degrade gracefully.
            results = [merge_rank_shard(spec, r) for r in range(world_size)]
    else:
        results = [merge_rank_shard(spec, r) for r in range(world_size)]
    stats = [RankMergeStats(**r) for r in results]
    stats.sort(key=lambda s: s.rank)
    return stats
