"""Optimizer shard merging — the heart of LLMTailor (paper §4.2).

Per data-parallel rank ``r`` there is one monolithic shard blob per
checkpoint; because optimizer state cannot be lazily loaded, building
the merged rank-``r`` shard requires *fully loading* every source
checkpoint's rank-``r`` blob.  The tailored 2L+x group layout makes the
copy itself trivial: a transformer layer owns exactly two group indices
(computable from the config alone), so merging is "index, copy, insert".

Two load policies reproduce the paper's Table 7 regimes:

* ``per-checkpoint`` — each distinct source blob is loaded once per rank
  (the "straightforward" mode: layers 1-16 from ckpt A, 17-32 from B);
* ``none`` — the source blob is re-loaded for every slot (the
  "interleaved parity" mode, which loads and discards checkpoints N
  times and dominates merge time).

Ranks are processed in parallel with ``ProcessPoolExecutor`` (§4.2),
falling back to in-process execution when multiprocessing is
unavailable or ``workers == 1``.

The *streaming* engine (``spec["stream"]``) replaces the full-blob
decode with selective reads: each load walks the monolithic shard
sequentially but materializes only the parameter groups the plan
actually takes from that source, and the independent loads are fanned
across a ``ThreadPoolExecutor``.  The merged shard it writes is
bitwise-identical to the serial path at any world size; only peak
memory (one output shard instead of every cached source) and decode
work (wanted groups instead of all groups per load) change.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..dist.zero import SHARD_FORMAT_VERSION, group_payload_crc
from ..io.blobfile import read_blob, read_blob_selected, write_blob
from ..io.layout import CheckpointPaths, shard_filename
from ..io.storage import GroupCache, group_key
from ..nn.config import ModelConfig
from ..nn.slots import model_slots
from ..util.errors import MergeError
from ..util.timer import WallTimer
from .groups import groups_for_slot

__all__ = [
    "RankMergeStats",
    "get_group_cache",
    "merge_optimizer_shards",
    "merge_rank_shard",
    "read_shard_metadata",
    "set_group_cache",
    "worker_budget",
]

# Cross-request group cache installed by the serve daemon (None outside
# a service process).  The streaming engine consults it per shard load;
# the one-shot CLI paths never install one, so their behaviour — and
# their bitwise output, which the cache preserves by construction — is
# unchanged.
_GROUP_CACHE: GroupCache | None = None


def set_group_cache(cache: GroupCache | None) -> GroupCache | None:
    """Install (or clear) the process-wide merge group cache.

    Returns the previously installed cache so callers can restore it.
    Only the in-process streaming path consults the cache; rank fan-out
    through a process pool cannot see it, so services that want cache
    hits run rank merges in threads (``workers=1`` per job).
    """
    global _GROUP_CACHE
    previous = _GROUP_CACHE
    _GROUP_CACHE = cache
    return previous


def get_group_cache() -> GroupCache | None:
    """The currently installed merge group cache, if any."""
    return _GROUP_CACHE


def worker_budget(workers: int, tasks: int) -> int:
    """Clamp a requested fan-out to the task count and machine size.

    The single worker-pool policy shared by the merge engine and the
    resharder: never more workers than independent tasks, never
    oversubscribe a small machine, never less than one.
    """
    return max(1, min(workers, tasks, os.cpu_count() or 1))


@dataclass
class RankMergeStats:
    """Per-rank accounting for the merge-overhead experiments (Table 7)."""

    rank: int
    files_loaded: int = 0
    bytes_loaded: int = 0
    load_seconds: float = 0.0
    write_seconds: float = 0.0
    bytes_written: int = 0
    checkpoints_touched: int = 0
    slots_copied: int = 0

    def as_dict(self) -> dict[str, Any]:
        """Flat dict form for JSON artifacts and result summaries."""
        return dict(self.__dict__)


@dataclass
class _ShardCache:
    """Load policy implementation + accounting."""

    rank: int
    cache_mode: str
    stats: RankMergeStats
    _cache: dict[str, dict] = field(default_factory=dict)
    _seen: set = field(default_factory=set)

    def load(self, ckpt_dir: str) -> dict:
        if self.cache_mode == "per-checkpoint" and ckpt_dir in self._cache:
            return self._cache[ckpt_dir]
        shard_path = _shard_path(ckpt_dir, self.rank)
        if not shard_path.exists():
            raise MergeError(f"missing optimizer shard for rank {self.rank}: {shard_path}")
        timer = WallTimer()
        with timer:
            shard = read_blob(shard_path)
        self.stats.load_seconds += timer.elapsed
        self.stats.files_loaded += 1
        self.stats.bytes_loaded += shard_path.stat().st_size
        if ckpt_dir not in self._seen:
            self._seen.add(ckpt_dir)
            self.stats.checkpoints_touched += 1
        if self.cache_mode == "per-checkpoint":
            self._cache[ckpt_dir] = shard
        return shard


def _shard_path(ckpt_dir: str, rank: int) -> Path:
    cp = CheckpointPaths(ckpt_dir)
    step = cp.step
    return Path(ckpt_dir) / f"global_step{step}" / shard_filename(rank)


def _validate_shard(shard: dict, spec: dict[str, Any], source_dir: str, rank: int) -> None:
    if shard.get("format_version") != SHARD_FORMAT_VERSION:
        raise MergeError(
            f"{source_dir}: unsupported shard format "
            f"{shard.get('format_version')} for rank {rank}"
        )
    if int(shard.get("world_size", -1)) != int(spec["world_size"]):
        raise MergeError(
            f"{source_dir}: shard world_size {shard.get('world_size')} != "
            f"plan world_size {spec['world_size']}"
        )


def _take_groups(
    shard: dict,
    source_dir: str,
    rank: int,
    slot: str,
    wanted: list[int],
    groups_header: dict[int, dict],
    hyperparams: dict[int, dict],
    fp32: dict[int, Any],
    state: dict[int, Any],
) -> None:
    """Copy one slot's groups out of a loaded (or selected) shard."""
    available = {h["index"]: h for h in shard["groups"]}
    available_hyper = {h["index"]: h for h in shard.get("hyperparams", [])}
    for g in wanted:
        if (
            g not in available
            or g not in shard["fp32_flat_groups"]
            or g not in shard["state"]
        ):
            raise MergeError(
                f"{source_dir}: rank {rank} shard lacks group {g} "
                f"(slot {slot!r}); the checkpoint is more partial than its manifest claims"
            )
        groups_header[g] = available[g]
        hyperparams[g] = available_hyper.get(g, {})
        fp32[g] = shard["fp32_flat_groups"][g]
        state[g] = shard["state"][g]


def _stream_load_tasks(
    config: ModelConfig, spec: dict[str, Any]
) -> list[tuple[str, list[str]]]:
    """The streaming load schedule: ``(source_dir, slots)`` per load.

    ``cache_mode="none"`` keeps the paper's interleaved one-load-per-slot
    sequence; ``per-checkpoint`` coalesces every slot taken from the same
    source into a single selective pass over that shard.
    """
    slots = model_slots(config)
    if spec["cache_mode"] == "none":
        return [(spec["slot_sources"][slot], [slot]) for slot in slots]
    by_source: dict[str, list[str]] = {}
    for slot in slots:
        by_source.setdefault(spec["slot_sources"][slot], []).append(slot)
    return list(by_source.items())


def _stream_extract(
    spec: dict[str, Any], rank: int, source_dir: str, wanted: set[int]
) -> tuple[dict, float, int]:
    """Selectively read one shard, materializing only ``wanted`` groups.

    Returns ``(shard_subset, load_seconds, file_bytes)``.  The whole
    compressed payload still streams through the decoder (the blob is
    monolithic), but skipped groups never become numpy arrays.
    """
    shard_path = _shard_path(source_dir, rank)
    if not shard_path.exists():
        raise MergeError(f"missing optimizer shard for rank {rank}: {shard_path}")

    def want(path: tuple) -> bool:
        if len(path) == 2 and path[0] in ("fp32_flat_groups", "state"):
            return path[1] in wanted
        return True

    def indexed_filter(path: tuple):
        if path in (("groups",), ("hyperparams",)):
            return wanted
        return None

    # ``state`` is the shard's final section and its keys ascend, so the
    # read stops — and stops decompressing — right after the last wanted
    # group.  The whole-payload CRC is unreachable from a prefix, so
    # every materialized group is instead checked against its own header
    # ``crc32`` below (the per-item integrity model weight tensors
    # already use); shards predating per-group CRCs fall back to a full
    # drain so the payload CRC still applies.
    timer = WallTimer()
    with timer:
        shard = read_blob_selected(
            shard_path, want,
            indexed_filter=indexed_filter,
            stop_after=("state", max(wanted)),
        )
        headers = {h["index"]: h for h in shard.get("groups", [])}
        # Fall back to a full pass (whole-payload CRC applies again) when
        # the early-stopped prefix cannot stand on its own: shards whose
        # headers predate per-group CRCs, or whose sections are not in
        # ascending group order so the stop cut off wanted entries.
        incomplete = any(
            g not in shard.get("fp32_flat_groups", {}) or g not in shard.get("state", {})
            for g in wanted
        )
        if incomplete or any("crc32" not in h for h in headers.values()):
            shard = read_blob_selected(shard_path, want, indexed_filter=indexed_filter)
            headers = {h["index"]: h for h in shard.get("groups", [])}
    for g in wanted:
        header = headers.get(g)
        fp32 = shard.get("fp32_flat_groups", {}).get(g)
        state = shard.get("state", {}).get(g)
        if header is None or "crc32" not in header or fp32 is None or state is None:
            continue  # absence is reported as a merge error downstream
        actual = group_payload_crc(fp32, state["exp_avg"], state["exp_avg_sq"])
        if actual != int(header["crc32"]):
            raise MergeError(
                f"{shard_path}: CRC mismatch for group {g} in rank {rank} shard "
                "(corrupt optimizer state)"
            )
    _validate_shard(shard, spec, source_dir, rank)
    return shard, timer.elapsed, shard_path.stat().st_size


def read_shard_metadata(shard_path: str | Path) -> dict:
    """One cheap selective pass: the whole shard *except* array payloads.

    Returns the shard dict with ``fp32_flat_groups`` absent and each
    ``state`` entry reduced to its scalars (``step``), while headers,
    hyperparams and top-level fields decode normally.  The pass still
    streams the compressed payload but materializes no numpy arrays, so
    it costs decompress bandwidth only — the serve group cache memoizes
    it per file identity, making repeat requests metadata-free too.
    """

    def want(path: tuple) -> bool:
        if len(path) == 2 and path[0] == "fp32_flat_groups":
            return False
        if len(path) == 3 and path[0] == "state" and path[2] in (
            "exp_avg", "exp_avg_sq",
        ):
            return False
        return True

    return read_blob_selected(Path(shard_path), want)


def _stream_extract_cached(
    cache: GroupCache, spec: dict[str, Any], rank: int, source_dir: str,
    wanted: set[int],
) -> tuple[dict, float, int]:
    """Serve one selective load through the cross-request group cache.

    Array payloads come from the cache by content key (per-group CRC +
    rank-local length); headers, hyperparams and step counters always
    come from *this* file's metadata pass, so content-identical groups
    with different schedules cannot cross-contaminate.  Groups the cache
    does not hold fall back to the normal selective read (which CRC-
    verifies them) and are inserted for the next request.  Output is
    bitwise-identical to the uncached path: every byte written is either
    metadata read from the source file or array content whose CRC
    matches what the source file declares.
    """
    shard_path = _shard_path(source_dir, rank)
    if not shard_path.exists():
        raise MergeError(f"missing optimizer shard for rank {rank}: {shard_path}")
    timer = WallTimer()
    with timer:
        meta, fresh = cache.metadata(shard_path, read_shard_metadata)
        headers = {h["index"]: h for h in meta.get("groups", [])}
        world_size = int(meta.get("world_size", 0))
        # Shards predating per-group CRCs have no content address: take
        # the plain selective-read path (whole-payload CRC applies).
        if world_size < 1 or any(
            g not in headers or "crc32" not in headers[g] for g in wanted
        ):
            return _stream_extract(spec, rank, source_dir, wanted)
        nbytes = shard_path.stat().st_size if fresh else 0

        fp32: dict[int, Any] = {}
        state: dict[int, Any] = {}
        missing: set[int] = set()
        for g in sorted(wanted):
            shard_numel = int(headers[g]["padded_numel"]) // world_size
            arrays = cache.get(group_key(headers[g]["crc32"], shard_numel))
            if arrays is None:
                missing.add(g)
                continue
            fp32[g] = arrays["fp32"]
            state[g] = {
                "step": int(meta["state"][g]["step"]),
                "exp_avg": arrays["exp_avg"],
                "exp_avg_sq": arrays["exp_avg_sq"],
            }
        if missing:
            # The plain path CRC-verifies exactly the groups it decodes,
            # which is what licenses inserting them under a content key.
            subset, _, sub_nbytes = _stream_extract(spec, rank, source_dir, missing)
            nbytes += sub_nbytes
            for g in missing:
                fp32[g] = subset["fp32_flat_groups"][g]
                state[g] = subset["state"][g]
                shard_numel = int(headers[g]["padded_numel"]) // world_size
                cache.put(
                    group_key(headers[g]["crc32"], shard_numel),
                    {
                        "fp32": fp32[g],
                        "exp_avg": state[g]["exp_avg"],
                        "exp_avg_sq": state[g]["exp_avg_sq"],
                    },
                )
        shard = {
            k: v for k, v in meta.items() if k not in ("fp32_flat_groups", "state")
        }
        shard["fp32_flat_groups"] = fp32
        shard["state"] = state
    _validate_shard(shard, spec, source_dir, rank)
    return shard, timer.elapsed, nbytes


def _merge_rank_shard_streaming(spec: dict[str, Any], rank: int) -> dict[str, Any]:
    """Streaming engine: selective group loads fanned across a thread pool."""
    config = ModelConfig.from_dict(spec["config"])
    stats = RankMergeStats(rank=rank)

    tasks = _stream_load_tasks(config, spec)
    wanted_sets = [
        {g for slot in slots for g in groups_for_slot(config, slot)}
        for _, slots in tasks
    ]
    cache = _GROUP_CACHE

    def extract(source_dir: str, wanted: set[int]) -> tuple[dict, float, int]:
        if cache is not None:
            return _stream_extract_cached(cache, spec, rank, source_dir, wanted)
        return _stream_extract(spec, rank, source_dir, wanted)

    # Threads only pay off when cores can decompress concurrently (zlib
    # releases the GIL); never oversubscribe a small machine.  When the
    # rank-level process pool is active, ``stream_threads`` carries this
    # rank's share of the worker budget so the levels do not multiply.
    budget = int(spec.get("stream_threads", spec.get("workers", 1)))
    workers = worker_budget(budget, len(tasks))
    if workers > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            loads = list(
                pool.map(
                    lambda args: extract(args[0], args[1]),
                    zip((src for src, _ in tasks), wanted_sets),
                )
            )
    else:
        loads = [
            extract(src, wanted)
            for (src, _), wanted in zip(tasks, wanted_sets)
        ]

    groups_header: dict[int, dict] = {}
    hyperparams: dict[int, dict] = {}
    fp32: dict[int, Any] = {}
    state: dict[int, Any] = {}
    seen_sources: set[str] = set()
    for (source_dir, slots), (shard, load_seconds, nbytes) in zip(tasks, loads):
        stats.load_seconds += load_seconds
        stats.files_loaded += 1
        stats.bytes_loaded += nbytes
        if source_dir not in seen_sources:
            seen_sources.add(source_dir)
            stats.checkpoints_touched += 1
        for slot in slots:
            _take_groups(
                shard, source_dir, rank, slot, groups_for_slot(config, slot),
                groups_header, hyperparams, fp32, state,
            )
            stats.slots_copied += 1
    return _write_merged_shard(spec, rank, config, stats, groups_header,
                               hyperparams, fp32, state)


def merge_rank_shard(spec: dict[str, Any], rank: int) -> dict[str, Any]:
    """Build and write the merged shard for one rank; returns stats.

    ``spec`` is the picklable plan description from
    :meth:`MergePlan.to_worker_spec` plus ``global_step``.  Top-level so
    ProcessPoolExecutor can pickle it.
    """
    if spec.get("stream"):
        return _merge_rank_shard_streaming(spec, rank)
    config = ModelConfig.from_dict(spec["config"])
    stats = RankMergeStats(rank=rank)
    cache = _ShardCache(rank=rank, cache_mode=spec["cache_mode"], stats=stats)

    groups_header: dict[int, dict] = {}
    hyperparams: dict[int, dict] = {}
    fp32: dict[int, Any] = {}
    state: dict[int, Any] = {}

    # Iterate slot-by-slot in model order: with cache_mode="none" this is
    # exactly the paper's interleaved load-and-discard sequence.
    for slot in model_slots(config):
        source_dir = spec["slot_sources"][slot]
        shard = cache.load(source_dir)
        _validate_shard(shard, spec, source_dir, rank)
        _take_groups(
            shard, source_dir, rank, slot, groups_for_slot(config, slot),
            groups_header, hyperparams, fp32, state,
        )
        stats.slots_copied += 1
    return _write_merged_shard(spec, rank, config, stats, groups_header,
                               hyperparams, fp32, state)


def _write_merged_shard(
    spec: dict[str, Any],
    rank: int,
    config: ModelConfig,
    stats: RankMergeStats,
    groups_header: dict[int, dict],
    hyperparams: dict[int, dict],
    fp32: dict[int, Any],
    state: dict[int, Any],
) -> dict[str, Any]:
    """Assemble the canonical merged payload and write it (both engines)."""
    num_groups = config.num_param_groups_tailored
    if set(groups_header) != set(range(num_groups)):
        missing = sorted(set(range(num_groups)) - set(groups_header))
        raise MergeError(f"merge produced incomplete group set; missing {missing[:8]}")

    merged = {
        "format_version": SHARD_FORMAT_VERSION,
        "zero_stage": 3,
        "world_size": int(spec["world_size"]),
        "rank": rank,
        "num_total_groups": num_groups,
        "groups": [groups_header[g] for g in range(num_groups)],
        "hyperparams": [
            dict(hyperparams[g], index=g) if hyperparams[g] else {"index": g}
            for g in range(num_groups)
        ],
        "fp32_flat_groups": {g: fp32[g] for g in range(num_groups)},
        "state": {g: state[g] for g in range(num_groups)},
        "global_step": int(spec["global_step"]),
        "merged_by": "llmtailor",
    }

    out_dir = Path(spec["output"]) / f"global_step{spec['global_step']}"
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / shard_filename(rank)
    timer = WallTimer()
    with timer:
        stats.bytes_written = write_blob(out_path, merged)
    stats.write_seconds = timer.elapsed
    return stats.as_dict()


def _worker_entry(args: tuple[dict, int]) -> dict[str, Any]:
    spec, rank = args
    return merge_rank_shard(spec, rank)


def merge_optimizer_shards(
    spec: dict[str, Any], world_size: int, workers: int
) -> list[RankMergeStats]:
    """Merge every rank's shard, in parallel across ranks when possible.

    Returns per-rank stats in rank order (stable regardless of worker
    scheduling).
    """
    results: list[dict[str, Any]]
    max_workers = worker_budget(workers, world_size)
    # Split the worker budget across the two levels of parallelism: with
    # P rank processes in flight, each streaming rank gets workers/P
    # threads, so total concurrency never exceeds the requested fan-out.
    spec = dict(spec, stream_threads=max(1, workers // max(1, max_workers)))
    jobs = [(spec, r) for r in range(world_size)]
    if max_workers > 1:
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                results = list(pool.map(_worker_entry, jobs))
        except (OSError, PermissionError):
            # Sandboxes without fork/semaphores: degrade gracefully.
            results = [merge_rank_shard(spec, r) for r in range(world_size)]
    else:
        results = [merge_rank_shard(spec, r) for r in range(world_size)]
    stats = [RankMergeStats(**r) for r in results]
    stats.sort(key=lambda s: s.rank)
    return stats
