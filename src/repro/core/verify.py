"""Structural verification of (merged) checkpoints.

After assembling a Frankenstein checkpoint, LLMTailor verifies that the
result is a well-formed *complete* checkpoint: the weight file covers
the exact parameter set, every rank shard carries all 2L+x groups with
the right sizes and decay settings, and — when sources are available —
every slot is bit-identical to the checkpoint it was taken from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..io.blobfile import read_blob
from ..io.layout import CheckpointPaths
from ..io.tensorfile import TensorFile
from ..nn.config import ModelConfig
from ..nn.slots import parameter_shapes, slot_parameter_shapes
from ..util.errors import MergeError
from ..util.jsonio import read_json
from .groups import groups_for_slot, tailored_group_specs

__all__ = ["VerifyReport", "verify_checkpoint"]


@dataclass
class VerifyReport:
    path: Path
    issues: list[str] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        """True when every recorded check passed."""
        return not self.issues

    def note(self, ok: bool, message: str) -> None:
        """Record one check: increments the counter, collects the failure message."""
        self.checks_run += 1
        if not ok:
            self.issues.append(message)

    def raise_if_failed(self) -> None:
        """Raise :class:`MergeError` summarizing the issues, if any."""
        if self.issues:
            summary = "; ".join(self.issues[:5])
            raise MergeError(f"checkpoint verification failed for {self.path}: {summary}")

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.issues)} issue(s)"
        return f"VerifyReport({self.path}: {self.checks_run} checks, {status})"


def verify_checkpoint(
    directory: str | Path,
    *,
    sources: dict[str, CheckpointPaths] | None = None,
    weight_decay: float = 0.01,
) -> VerifyReport:
    """Run structural checks; returns a report (never raises directly)."""
    paths = CheckpointPaths(directory)
    report = VerifyReport(path=Path(directory))

    if not paths.exists():
        report.note(False, "directory does not exist")
        return report
    if not paths.manifest.exists():
        report.note(False, "missing tailor_manifest.json")
        return report

    manifest = paths.read_manifest()
    report.note(manifest.get("complete", False) is True, "manifest not marked complete")

    try:
        config = ModelConfig.from_dict(read_json(paths.config))
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        report.note(False, f"config.json unreadable: {exc}")
        return report

    # 1. Weight file covers the exact parameter set with exact shapes.
    try:
        weights = TensorFile(paths.weights)
        expected = parameter_shapes(config)
        missing = [n for n in expected if n not in weights]
        extra = [n for n in weights.names if n not in expected]
        report.note(not missing, f"weight file missing tensors: {missing[:4]}")
        report.note(not extra, f"weight file has unexpected tensors: {extra[:4]}")
        for name, shape in expected.items():
            if name in weights and weights.shape(name) != tuple(shape):
                report.note(
                    False, f"tensor {name} shape {weights.shape(name)} != {tuple(shape)}"
                )
        report.note(True, "")
    except Exception as exc:  # noqa: BLE001
        report.note(False, f"weight file unreadable: {exc}")
        return report

    # 2. Every rank shard: all groups present, sizes and decay correct.
    world_size = int(manifest.get("world_size", 0))
    report.note(world_size >= 1, f"bad world_size {world_size} in manifest")
    specs = tailored_group_specs(config, weight_decay)
    expected_numel = {}
    shapes_by_name = parameter_shapes(config)
    for spec in specs:
        expected_numel[spec.index] = sum(
            int(np.prod(shapes_by_name[n])) for n in spec.param_names
        )
    for rank in range(world_size):
        shard_path = paths.shard(rank)
        if not shard_path.exists():
            report.note(False, f"missing shard for rank {rank}")
            continue
        try:
            shard = read_blob(shard_path)
        except Exception as exc:  # noqa: BLE001
            report.note(False, f"rank {rank} shard unreadable: {exc}")
            continue
        got = {h["index"] for h in shard["groups"]}
        want = set(range(config.num_param_groups_tailored))
        report.note(
            got == want,
            f"rank {rank} shard groups {sorted(want - got)[:4]} missing",
        )
        for header in shard["groups"]:
            g = header["index"]
            spec = specs[g] if g < len(specs) else None
            if spec is None:
                continue
            if header["numel"] != expected_numel[g]:
                report.note(
                    False,
                    f"rank {rank} group {g} numel {header['numel']} != {expected_numel[g]}",
                )
            decayed = float(header.get("weight_decay", 0.0)) != 0.0
            if decayed != spec.is_decay:
                report.note(
                    False,
                    f"rank {rank} group {g} decay setting inverted vs canonical layout",
                )
            fp32 = shard["fp32_flat_groups"].get(g)
            st = shard["state"].get(g, {})
            shard_len = header["padded_numel"] // world_size
            if fp32 is None or fp32.shape != (shard_len,):
                report.note(False, f"rank {rank} group {g} fp32 shard malformed")
            for key in ("exp_avg", "exp_avg_sq"):
                arr = st.get(key)
                if arr is None or np.asarray(arr).shape != (shard_len,):
                    report.note(False, f"rank {rank} group {g} missing/odd {key}")

    # 3. Optional provenance check: slots bitwise equal to their sources.
    if sources:
        by_slot = slot_parameter_shapes(config)
        for slot, source in sources.items():
            try:
                src_weights = TensorFile(source.weights)
                for name in by_slot[slot]:
                    a, _ = weights.read_raw(name)
                    b, _ = src_weights.read_raw(name)
                    report.note(
                        a == b, f"slot {slot} tensor {name} differs from source {source.dir}"
                    )
            except Exception as exc:  # noqa: BLE001
                report.note(False, f"source comparison failed for slot {slot}: {exc}")
            for rank in range(world_size):
                try:
                    merged_shard = read_blob(paths.shard(rank))
                    src_shard = read_blob(source.shard(rank))
                    src_fp32 = src_shard["fp32_flat_groups"]
                    for g in groups_for_slot(config, slot):
                        ok = g in src_fp32 and np.array_equal(
                            merged_shard["fp32_flat_groups"][g], src_fp32[g]
                        )
                        report.note(
                            ok,
                            f"rank {rank} group {g} (slot {slot}) fp32 differs from source",
                        )
                except Exception as exc:  # noqa: BLE001
                    report.note(False, f"rank {rank} shard comparison failed: {exc}")
                    break
    return report
