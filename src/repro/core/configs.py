"""Configuration/metadata handling for merged checkpoints (paper §4.4).

Metadata files (training args, trainer state with step and learning
rate, scheduler state, RNG provenance) are copied verbatim from the most
recent source checkpoint so the Frankenstein checkpoint resumes with the
correct schedule position.  A fresh manifest marks the output complete
and records full merge provenance.
"""

from __future__ import annotations

import shutil

from ..io.layout import CheckpointPaths
from ..nn.slots import model_slots
from ..util.errors import MergeError
from .plan import MergePlan

__all__ = ["copy_config_files", "write_merged_manifest"]


def copy_config_files(plan: MergePlan) -> list[str]:
    """Copy the metadata files from ``plan.config_source`` to the output.

    Returns the list of files copied.  Missing optional files are
    tolerated (older checkpoints); a missing ``config.json`` or
    ``trainer_state.json`` is an error because resume cannot work.
    """
    plan.output.mkdir(parents=True, exist_ok=True)
    copied: list[str] = []
    required = {"config.json", "trainer_state.json"}
    for name in CheckpointPaths.CONFIG_FILES:
        src = plan.config_source.dir / name
        if not src.exists():
            if name in required:
                raise MergeError(
                    f"config source {plan.config_source.dir} is missing required {name}"
                )
            continue
        shutil.copy2(src, plan.output / name)
        copied.append(name)
    return copied


def write_merged_manifest(plan: MergePlan) -> dict:
    """Manifest for the merged (complete) checkpoint, with provenance."""
    manifest = {
        "format_version": 1,
        "step": plan.config_source.step,
        "model_config": plan.config.name,
        "strategy": "llmtailor-merge",
        "world_size": plan.world_size,
        "slots": model_slots(plan.config),
        "all_slots": model_slots(plan.config),
        "complete": True,
        "merge_provenance": plan.describe(),
    }
    CheckpointPaths(plan.output).write_manifest(manifest)
    return manifest
