"""Weight-file merging: lazy per-tensor copies between checkpoints.

Unlike optimizer shards, model weights live in a lazily readable
container, so assembling a Frankenstein weight file touches only the
bytes of the tensors being copied ("lazy loading, as in the case of
model weights" — paper §5.4).  Tensors pass through bit-exactly: they
are already quantized to the storage dtype, so re-encoding is lossless.

With ``plan.options.stream`` the merge pipes raw tensor bytes from the
source readers straight into a :class:`TensorFileWriter`, one tensor in
memory at a time, instead of materializing the whole merged state dict
before writing.  Both paths emit byte-identical files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..io.layout import CheckpointPaths, WEIGHTS_NAME
from ..io.tensorfile import TensorFile, TensorFileWriter, write_tensorfile
from ..nn.slots import model_slots, slot_parameter_shapes
from ..numerics.dtypes import DType, unpack_bits
from ..util.errors import MergeError
from ..util.timer import WallTimer
from .plan import MergePlan

__all__ = ["WeightMergeStats", "merge_weight_files"]


@dataclass
class WeightMergeStats:
    tensors_copied: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    files_opened: int = 0
    seconds: float = 0.0
    per_slot_bytes: dict[str, int] = field(default_factory=dict)


def _merge_metadata(plan: MergePlan) -> dict:
    return {
        "model": plan.config.name,
        "merged_by": "llmtailor",
        "slots": model_slots(plan.config),
        "sources": {s: str(cp.dir) for s, cp in plan.slot_sources.items()},
    }


def _iter_slot_tensors(plan: MergePlan, stats: WeightMergeStats):
    """Yield ``(slot, name, reader)`` per tensor in canonical model order,
    validating presence/shape and keeping the per-slot byte accounting."""
    expected = slot_parameter_shapes(plan.config)
    readers: dict[str, TensorFile] = {}
    for slot in model_slots(plan.config):
        source = plan.slot_sources[slot]
        key = str(source.dir)
        reader = readers.get(key)
        if reader is None:
            reader = TensorFile(source.weights)
            readers[key] = reader
            stats.files_opened += 1
        slot_bytes = 0
        for name, shape in expected[slot].items():
            if name not in reader:
                raise MergeError(
                    f"checkpoint {source.dir} lacks tensor {name!r} required for slot {slot!r}"
                )
            if reader.shape(name) != tuple(shape):
                raise MergeError(
                    f"tensor {name!r} in {source.dir} has shape {reader.shape(name)}, "
                    f"model expects {tuple(shape)}"
                )
            nbytes = reader.nbytes(name)
            slot_bytes += nbytes
            stats.bytes_read += nbytes
            stats.tensors_copied += 1
            yield slot, name, reader
        stats.per_slot_bytes[slot] = slot_bytes


def merge_weight_files(plan: MergePlan) -> WeightMergeStats:
    """Assemble ``<output>/model.tsr`` from the plan's slot sources."""
    stats = WeightMergeStats()
    timer = WallTimer()
    timer.start()
    plan.output.mkdir(parents=True, exist_ok=True)
    target_dtype = plan.config.storage_dtype

    if plan.options.stream:
        # Streaming: raw bytes flow source -> writer, one tensor resident.
        with TensorFileWriter(
            plan.output / WEIGHTS_NAME, metadata=_merge_metadata(plan)
        ) as writer:
            for _slot, name, reader in _iter_slot_tensors(plan, stats):
                raw, entry = reader.read_raw(name)
                if entry["dtype"] == target_dtype.value:
                    writer.add_raw(name, raw, entry)
                else:  # stored at another precision: re-encode like serial,
                    # decoding the bytes already fetched (no second read)
                    src_dtype = DType.parse(entry["dtype"])
                    decoded = unpack_bits(
                        np.frombuffer(raw, dtype=src_dtype.packed_numpy), src_dtype
                    ).reshape(entry["shape"])
                    writer.add(name, decoded, target_dtype)
        stats.bytes_written = (plan.output / WEIGHTS_NAME).stat().st_size
    else:
        merged: dict[str, np.ndarray] = {}
        for _slot, name, reader in _iter_slot_tensors(plan, stats):
            merged[name] = reader.read(name)  # lazy: reads only this tensor
        stats.bytes_written = write_tensorfile(
            plan.output / WEIGHTS_NAME,
            merged,
            dtype=target_dtype,
            metadata=_merge_metadata(plan),
        )
    stats.seconds = timer.stop()
    return stats


def weights_equal_to_source(
    output_dir: CheckpointPaths, slot: str, source: CheckpointPaths, config
) -> bool:
    """Bitwise check: the merged slot equals the source slot's tensors."""
    out_reader = TensorFile(output_dir.weights)
    src_reader = TensorFile(source.weights)
    for name in slot_parameter_shapes(config)[slot]:
        a, _ = out_reader.read_raw(name)
        b, _ = src_reader.read_raw(name)
        if a != b:
            return False
    return True
