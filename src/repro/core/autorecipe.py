"""Automatic recipe generation from partial-checkpoint runs.

A partial-checkpointing run leaves a trail of ``checkpoint-<step>``
directories, each saving only some slots (recorded in its manifest and
in the strategy's JSON decision log).  To recover from a failure at step
``F``, each slot must come from the most recent checkpoint at or before
``F`` that saved it.  This module builds that recipe automatically —
either from the manifests on disk or from a decision-log JSON file (the
paper's T2 workflow: "our tool will automatically generate a
corresponding YAML file").
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from ..io.layout import checkpoint_dir, list_checkpoint_steps
from ..nn.config import ModelConfig
from ..nn.slots import model_slots
from ..util.errors import MergeError
from ..util.jsonio import read_json
from .recipe import MergeOptions, MergeRecipe

__all__ = ["recipe_from_run", "recipe_from_decision_log", "latest_slot_coverage"]


def latest_slot_coverage(
    run_root: str | Path, failure_step: int | None = None
) -> tuple[dict[str, int], ModelConfig]:
    """Map each slot to the newest checkpoint step (<= failure) carrying it."""
    run_root = Path(run_root)
    steps = list_checkpoint_steps(run_root)
    if failure_step is not None:
        steps = [s for s in steps if s <= failure_step]
    if not steps:
        raise MergeError(
            f"no usable checkpoints under {run_root}"
            + (f" at or before step {failure_step}" if failure_step is not None else "")
        )

    config: ModelConfig | None = None
    coverage: dict[str, int] = {}
    for step in steps:  # ascending: later checkpoints overwrite earlier
        paths = checkpoint_dir(run_root, step)
        manifest = paths.read_manifest()
        if config is None:
            config = ModelConfig.from_dict(read_json(paths.config))
        for slot in manifest.get("slots", []):
            coverage[slot] = step
    assert config is not None
    missing = [s for s in model_slots(config) if s not in coverage]
    if missing:
        raise MergeError(
            f"slots {missing[:6]} were never checkpointed before step "
            f"{failure_step}; recovery is impossible — checkpoint strategy bug?"
        )
    return coverage, config


def recipe_from_run(
    run_root: str | Path,
    failure_step: int | None = None,
    *,
    workers: int = 1,
    cache_mode: str = "per-checkpoint",
    verify: bool = True,
    stream: bool = False,
) -> MergeRecipe:
    """Build a merge recipe by scanning checkpoint manifests on disk."""
    run_root = Path(run_root)
    coverage, config = latest_slot_coverage(run_root, failure_step)
    base_step = max(coverage.values())
    base = checkpoint_dir(run_root, base_step)
    assignments = {
        slot: checkpoint_dir(run_root, step).dir
        for slot, step in coverage.items()
        if step != base_step
    }
    return MergeRecipe(
        base_checkpoint=base.dir,
        assignments=assignments,
        options=MergeOptions(
            workers=workers, cache_mode=cache_mode, verify=verify, stream=stream
        ),
    )


def recipe_from_decision_log(
    log_path: str | Path,
    run_root: str | Path,
    failure_step: int | None = None,
    *,
    workers: int = 1,
    cache_mode: str = "per-checkpoint",
) -> MergeRecipe:
    """Build a recipe from a strategy's JSON decision log.

    The log format is produced by :class:`repro.strategies.base
    .CheckpointStrategy`: ``{"records": [{"step": int, "slots": [...]},
    ...]}``.  Only steps with an existing checkpoint directory count.
    """
    log = read_json(log_path)
    records: list[dict[str, Any]] = log.get("records", [])
    if not records:
        raise MergeError(f"decision log {log_path} has no records")
    run_root = Path(run_root)

    coverage: dict[str, int] = {}
    for record in sorted(records, key=lambda r: int(r["step"])):
        step = int(record["step"])
        if failure_step is not None and step > failure_step:
            break
        if not checkpoint_dir(run_root, step).exists():
            continue  # the log may mention steps whose files were pruned
        for slot in record.get("slots", []):
            coverage[slot] = step
    if not coverage:
        raise MergeError(
            f"decision log {log_path} covers no existing checkpoints under {run_root}"
        )
    base_step = max(coverage.values())
    base = checkpoint_dir(run_root, base_step)
    assignments = {
        slot: checkpoint_dir(run_root, step).dir
        for slot, step in coverage.items()
        if step != base_step
    }
    return MergeRecipe(
        base_checkpoint=base.dir,
        assignments=assignments,
        options=MergeOptions(workers=workers, cache_mode=cache_mode),
    )
