"""Layer-aligned parameter-group reconstruction (paper §4.1, Fig. 3).

The stock optimizer layout flattens the whole model into two parameter
groups (decay / no-decay), which makes optimizer files inseparable by
layer.  LLMTailor reconstructs the groups *before training* so they
mirror the model's layer structure while preserving weight-decay
settings.  The resulting canonical order (paper §4.2) is:

    index 0           : final norm                         (no decay)
    index 1 .. L      : layer i no-decay segment            (no decay)
    index L+1         : embed_tokens                        (decay)
    index L+2         : lm_head (only if untied)            (decay)
    index L+2(+1) ..  : layer i decay segment               (decay)

Total ``2L + x`` groups where ``x`` is the number of auxiliary layers
(e.g. a 16-layer untied model: 2*16 + 3 = 35 groups, as in Fig. 3).
Because the order is fixed and derivable from the model config alone
(layer count + weight tying), a merge tool can locate any layer's groups
in any checkpoint without extra metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..nn.config import ModelConfig
from ..nn.module import Module
from ..nn.slots import EMBED, LM_HEAD, NORM, layer_slot, parameter_shapes, slot_of_param
from ..optim.grouping import is_no_decay_param
from ..optim.optimizer import ParamGroup
from ..util.errors import ConfigError

__all__ = [
    "GroupSpec",
    "tailored_group_specs",
    "tailored_param_groups",
    "groups_for_slot",
    "slot_of_group",
    "group_layout_table",
]


@dataclass(frozen=True)
class GroupSpec:
    """One tailored parameter group: position, slot, decay, members."""

    index: int
    name: str
    slot: str
    weight_decay: float
    param_names: tuple[str, ...] = field(default_factory=tuple)

    @property
    def is_decay(self) -> bool:
        """Whether this group applies (non-zero) weight decay."""
        return self.weight_decay != 0.0


def tailored_group_specs(config: ModelConfig, weight_decay: float = 0.01) -> list[GroupSpec]:
    """The canonical 2L+x group layout for a model config.

    Derived analytically from :func:`parameter_shapes`, so it works for
    full-scale configs without instantiating the model.
    """
    if weight_decay <= 0:
        raise ConfigError(
            "tailored grouping requires a positive weight decay; with zero decay "
            "the decay/no-decay distinction (and the paper's layout) collapses"
        )
    by_slot_decay: dict[tuple[str, bool], list[str]] = {}
    for name in parameter_shapes(config):
        key = (slot_of_param(name), not is_no_decay_param(name))
        by_slot_decay.setdefault(key, []).append(name)

    L = config.num_hidden_layers
    specs: list[GroupSpec] = []

    def add(name: str, slot: str, decay: bool) -> None:
        params = tuple(by_slot_decay.get((slot, decay), ()))
        if not params:
            raise ConfigError(f"slot {slot!r} has no {'decay' if decay else 'no-decay'} params")
        specs.append(
            GroupSpec(
                index=len(specs),
                name=name,
                slot=slot,
                weight_decay=weight_decay if decay else 0.0,
                param_names=params,
            )
        )

    # 1. Final norm (no decay).
    add("norm", NORM, decay=False)
    # 2. Per-layer no-decay segments.
    for i in range(L):
        add(f"layer_{i}_nodecay", layer_slot(i), decay=False)
    # 3. Embedding (decay).
    add("embed_tokens", EMBED, decay=True)
    # 4. Optional lm_head (decay).
    if not config.tie_word_embeddings:
        add("lm_head", LM_HEAD, decay=True)
    # 5. Per-layer decay segments.
    for i in range(L):
        add(f"layer_{i}_decay", layer_slot(i), decay=True)

    expected = config.num_param_groups_tailored
    if len(specs) != expected:
        raise ConfigError(
            f"internal error: built {len(specs)} groups, expected {expected} (2L+x)"
        )
    # Every parameter must appear in exactly one group.
    seen = [n for s in specs for n in s.param_names]
    if sorted(seen) != sorted(parameter_shapes(config)):
        raise ConfigError("tailored groups do not cover the parameter set exactly")
    return specs


def tailored_param_groups(
    model: Module, config: ModelConfig, weight_decay: float = 0.01
) -> list[ParamGroup]:
    """Optimizer param groups for a live model, in tailored order.

    This is the "regroup before training" step (paper §4.1): pass the
    result to :class:`repro.optim.AdamW` (or the ZeRO engine) instead of
    the default 2-group split.  Training math is unchanged — the same
    parameters keep the same hyper-parameters — only the grouping differs.
    """
    params_by_name = dict(model.named_parameters())
    groups: list[ParamGroup] = []
    for spec in tailored_group_specs(config, weight_decay):
        try:
            params = [params_by_name[n] for n in spec.param_names]
        except KeyError as exc:
            raise ConfigError(f"model is missing parameter {exc} required by group layout") from exc
        groups.append(
            {
                "params": params,
                "param_names": list(spec.param_names),
                "weight_decay": spec.weight_decay,
                "name": spec.name,
                "slot": spec.slot,
            }
        )
    return groups


def groups_for_slot(config: ModelConfig, slot: str) -> list[int]:
    """Group indices belonging to a layer slot (paper §4.2 indexing).

    Transformer layers own two groups (no-decay + decay); auxiliary slots
    own one.  Computable from ``L`` and weight tying alone.
    """
    L = config.num_hidden_layers
    tied = config.tie_word_embeddings
    if slot == NORM:
        return [0]
    if slot == EMBED:
        return [L + 1]
    if slot == LM_HEAD:
        if tied:
            raise ConfigError("tied model has no lm_head slot")
        return [L + 2]
    if slot.startswith("layers."):
        i = int(slot.split(".", 1)[1])
        if not 0 <= i < L:
            raise ConfigError(f"layer index {i} out of range for {L}-layer model")
        decay_offset = L + 2 + (0 if tied else 1)
        return [1 + i, decay_offset + i]
    raise ConfigError(f"unknown slot {slot!r}")


def slot_of_group(config: ModelConfig, index: int) -> str:
    """Inverse of :func:`groups_for_slot`."""
    L = config.num_hidden_layers
    tied = config.tie_word_embeddings
    total = config.num_param_groups_tailored
    if not 0 <= index < total:
        raise ConfigError(f"group index {index} out of range [0, {total})")
    if index == 0:
        return NORM
    if 1 <= index <= L:
        return layer_slot(index - 1)
    if index == L + 1:
        return EMBED
    if not tied and index == L + 2:
        return LM_HEAD
    decay_offset = L + 2 + (0 if tied else 1)
    return layer_slot(index - decay_offset)


def group_layout_table(config: ModelConfig, weight_decay: float = 0.01):
    """Rows describing the tailored layout — regenerates paper Figure 3."""
    rows = []
    for spec in tailored_group_specs(config, weight_decay):
        rows.append(
            {
                "index": spec.index,
                "group": spec.name,
                "slot": spec.slot,
                "weight_decay": spec.weight_decay,
                "num_params": len(spec.param_names),
            }
        )
    return rows
