"""LLMTailor core: parameter regrouping, recipes, checkpoint merging."""

from .autorecipe import latest_slot_coverage, recipe_from_decision_log, recipe_from_run
from .diffstat import SlotDrift, diff_checkpoints, drift_ranking, nonuniformity_index
from .groups import (
    GroupSpec,
    group_layout_table,
    groups_for_slot,
    slot_of_group,
    tailored_group_specs,
    tailored_param_groups,
)
from .mergekit import MERGE_METHODS, mergekit_merge, mergekit_merge_from_yaml
from .optimizer_merge import RankMergeStats, merge_optimizer_shards, merge_rank_shard
from .plan import MergePlan, resolve_plan
from .recipe import MergeOptions, MergeRecipe, load_recipe, parse_recipe
from .tailor import LLMTailor, MergeResult
from .verify import VerifyReport, verify_checkpoint
from .weights import WeightMergeStats, merge_weight_files

__all__ = [
    "GroupSpec",
    "LLMTailor",
    "MERGE_METHODS",
    "MergeOptions",
    "MergePlan",
    "MergeRecipe",
    "MergeResult",
    "RankMergeStats",
    "SlotDrift",
    "VerifyReport",
    "WeightMergeStats",
    "diff_checkpoints",
    "drift_ranking",
    "group_layout_table",
    "groups_for_slot",
    "nonuniformity_index",
    "latest_slot_coverage",
    "load_recipe",
    "merge_optimizer_shards",
    "merge_rank_shard",
    "merge_weight_files",
    "mergekit_merge",
    "mergekit_merge_from_yaml",
    "parse_recipe",
    "recipe_from_decision_log",
    "recipe_from_run",
    "resolve_plan",
    "slot_of_group",
    "tailored_group_specs",
    "tailored_param_groups",
    "verify_checkpoint",
]
