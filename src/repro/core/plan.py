"""Merge plans: a recipe resolved against real checkpoints on disk.

Resolution validates everything the merge will rely on:

* every referenced checkpoint exists and has a manifest,
* all checkpoints were written by the same model config and world size,
* every slot's designated source actually *contains* that slot (partial
  checkpoints only carry some slots),
* every slot of the model is covered (falling back to the base).

The plan also fixes the group → slot arithmetic (via
:mod:`repro.core.groups`) and the per-rank load order, including the
"interleaved parity" order of paper §5.4 where each layer forces a
reload of its source checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..io.layout import CheckpointPaths
from ..nn.config import ModelConfig
from ..nn.slots import model_slots
from ..util.errors import MergeError, RecipeError
from ..util.jsonio import read_json
from .groups import slot_of_group
from .recipe import MergeOptions, MergeRecipe

__all__ = ["MergePlan", "resolve_plan"]


@dataclass
class MergePlan:
    """Everything the merge engine needs, fully validated."""

    config: ModelConfig
    world_size: int
    base: CheckpointPaths
    slot_sources: dict[str, CheckpointPaths]
    options: MergeOptions
    output: Path
    config_source: CheckpointPaths

    # Derived below.
    num_groups: int = field(init=False)

    def __post_init__(self) -> None:
        self.num_groups = self.config.num_param_groups_tailored

    def group_source(self, group_index: int) -> CheckpointPaths:
        """Checkpoint providing a given optimizer group."""
        return self.slot_sources[slot_of_group(self.config, group_index)]

    def distinct_sources(self) -> list[CheckpointPaths]:
        """Every checkpoint the plan reads from, deduplicated, base first."""
        seen: dict[Path, CheckpointPaths] = {}
        for cp in [self.base, *self.slot_sources.values()]:
            seen.setdefault(cp.dir, cp)
        return list(seen.values())

    def group_load_order(self) -> list[int]:
        """Group indices in on-disk (canonical) order — the write order."""
        return list(range(self.num_groups))

    def describe(self) -> dict:
        """JSON-serializable plan summary (recorded in the output manifest)."""
        return {
            "model_config": self.config.name,
            "world_size": self.world_size,
            "base": str(self.base.dir),
            "output": str(self.output),
            "slot_sources": {s: str(cp.dir) for s, cp in self.slot_sources.items()},
            "options": {
                "workers": self.options.workers,
                "cache_mode": self.options.cache_mode,
                "stream": self.options.stream,
            },
        }

    def to_worker_spec(self) -> dict:
        """Picklable description for ProcessPoolExecutor workers."""
        return {
            "config": self.config.to_dict(),
            "world_size": self.world_size,
            "slot_sources": {s: str(cp.dir) for s, cp in self.slot_sources.items()},
            "cache_mode": self.options.cache_mode,
            "stream": self.options.stream,
            "workers": self.options.workers,
            "output": str(self.output),
        }


def _checkpoint(path: Path, role: str) -> CheckpointPaths:
    cp = CheckpointPaths(path)
    if not cp.exists():
        raise MergeError(f"{role} checkpoint not found: {path}")
    if not cp.manifest.exists():
        raise MergeError(f"{role} checkpoint {path} has no tailor_manifest.json")
    return cp


def resolve_plan(recipe: MergeRecipe, output: str | Path | None = None) -> MergePlan:
    """Validate a recipe against the filesystem and build the plan."""
    base = _checkpoint(recipe.base_checkpoint, "base")
    base_manifest = base.read_manifest()
    config = ModelConfig.from_dict(read_json(base.config))
    world_size = int(base_manifest["world_size"])

    out = output or recipe.output
    if out is None:
        raise RecipeError("no output directory given (recipe 'output' or merge(output=...))")
    out = Path(out)
    if out.resolve() == base.dir.resolve():
        raise MergeError("output directory must differ from the base checkpoint")

    slots = model_slots(config)
    unknown = set(recipe.assignments) - set(slots)
    if unknown:
        raise MergeError(
            f"recipe assigns slots {sorted(unknown)} not present in model "
            f"{config.name!r} (tied lm_head?)"
        )

    slot_sources: dict[str, CheckpointPaths] = {}
    manifests: dict[Path, dict] = {base.dir: base_manifest}
    for slot in slots:
        source_path = recipe.source_for(slot)
        cp = _checkpoint(Path(source_path), f"slot {slot!r}")
        manifest = manifests.get(cp.dir)
        if manifest is None:
            manifest = cp.read_manifest()
            manifests[cp.dir] = manifest
        if manifest.get("model_config") != config.name:
            raise MergeError(
                f"checkpoint {cp.dir} was written by model "
                f"{manifest.get('model_config')!r}, base is {config.name!r}"
            )
        if int(manifest.get("world_size", -1)) != world_size:
            raise MergeError(
                f"checkpoint {cp.dir} has world_size {manifest.get('world_size')}, "
                f"base has {world_size} — shard layouts are incompatible"
            )
        if slot not in manifest.get("slots", []):
            raise MergeError(
                f"checkpoint {cp.dir} does not contain slot {slot!r} "
                f"(it saved {manifest.get('slots', [])[:6]}...)"
            )
        slot_sources[slot] = cp

    if recipe.options.copy_configs_from == "base":
        config_source = base
    else:
        config_source = _checkpoint(Path(recipe.options.copy_configs_from), "config-source")

    return MergePlan(
        config=config,
        world_size=world_size,
        base=base,
        slot_sources=slot_sources,
        options=recipe.options,
        output=out,
        config_source=config_source,
    )
