"""Numerical gradient checking.

Compares analytic gradients from the tape against central finite
differences in float64.  Used extensively by the test suite to validate
every primitive and fused op.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_grad", "check_gradients"]


def numerical_grad(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``fn`` w.r.t. ``inputs[wrt]``.

    ``fn`` must return a scalar Tensor.  Inputs should be float64 for
    meaningful comparisons.
    """
    target = inputs[wrt]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = float(fn(inputs).data)
        flat[i] = original - eps
        lo = float(fn(inputs).data)
        flat[i] = original
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradients(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic and numerical gradients agree for all inputs.

    Raises ``AssertionError`` with the worst offender on mismatch.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(inputs)
    out.backward()
    for idx, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        expected = numerical_grad(fn, inputs, idx, eps=eps)
        actual = t.grad if t.grad is not None else np.zeros_like(t.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.max(np.abs(actual - expected))
            raise AssertionError(
                f"gradient mismatch for input {idx} (shape {t.shape}): "
                f"max abs err {worst:.3e}, atol={atol}, rtol={rtol}"
            )
