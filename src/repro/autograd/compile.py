"""Backward-tape compiler: record the interpreted backward once, replay it.

Every training step re-builds an *identical* autograd graph — same ops,
same shapes, same parameters — and the interpreted :meth:`Tensor.backward`
pays for that sameness on every call: a DFS topological sort, closure
dispatch, and a fresh allocation for every intermediate gradient.  This
module removes the per-step cost with the trace-once/replay-many structure
production training stacks use for their step loop (and that HIPS autograd
pioneered: a primitive-VJP registry over a replayable node graph):

* **Record.**  Under :meth:`BackwardTape.capture` the tensor layer appends
  every grad-bearing node to the tape in creation order.  The first
  :meth:`BackwardTape.backward` runs the ordinary interpreted sweep while
  logging the execution order, then compiles a program: one entry per
  executed VJP, each either a registered *kernel* (the closure's exact
  arithmetic re-expressed as ``out=`` ufunc calls into buffers allocated
  once, at compile time) or a fallback that calls the op's own closure.
  Dead branches — captured nodes the loss never consumes — are pruned
  here: they bind and verify, but never execute.
* **Guard.**  Later rounds are bound against a structural signature
  (per node: VJP code object, shape, dtype, and parent identity — graph
  wiring by index, leaf parameters by object identity).  Any mismatch
  invalidates the program and falls back to re-recording, so a shape
  change, a swapped parameter, or a ``no_grad`` region appearing
  mid-run costs one re-trace, never a wrong gradient.
* **Replay.**  A bound round skips the DFS and the bookkeeping entirely
  and executes the compiled entries in the recorded order.  Replay is
  **bitwise-identical** to the interpreted sweep — the same canary
  discipline as ``AdamW(fused=True)``:

  - kernels issue the *same ufuncs on the same operands in the same
    order* as the closures they replace (``out=`` never changes values);
  - gradients accumulate in the *recorded execution order* — float
    addition is commutative but not associative, so ``(a + b) + c`` must
    not become ``(a + c) + b`` (the committed reassociation canary in
    ``tests/test_autograd_compile.py`` shows the drift);
  - accumulation buffers are **never pre-zeroed**: the first
    contribution is written (or adopted), not added to a zero buffer,
    because ``0.0 + (-0.0)`` is ``+0.0`` and would flip signed zeros the
    interpreted first-write preserves.

Composition with the fused ZeRO-3 engine: construct the tape with
``donate=engine.grad_donation_views()`` and each parameter's gradient is
written straight into its slice of the engine's persistent reduce-scatter
staging buffer — the tape's terminal outputs *are* the collective's
inputs, and :meth:`ZeroStage3Engine.step` skips its flatten-copy for
donated gradients.
"""

from __future__ import annotations

import contextlib
import types
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..util.errors import GradError, ShapeError
from . import functional as F
from . import tensor as _tensor_mod
from .tensor import Tensor

__all__ = ["BackwardTape", "TapeStats"]


# ---------------------------------------------------------------------------
# accumulation sinks
# ---------------------------------------------------------------------------

# Static accumulation modes for intermediate (slot) gradients, decided at
# compile time from the recorded contribution schedule:
#   _SET   exactly one contribution ever arrives: adopt it (views and
#          per-entry scratch buffers included — nothing mutates a _SET
#          gradient, so aliasing is safe and copy-free)
#   _INIT  first of several: establish exclusive, writable storage
#   _ACC   subsequent contributions: in-place +=
_SET, _INIT, _ACC = 0, 1, 2


def _reduce_to(g: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Unbroadcast ``g`` to ``shape`` — the same reduction (same ufuncs,
    same order) as the inline path in :meth:`Tensor._accum`."""
    extra = g.ndim - len(shape)
    if extra > 0:
        g = g.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and g.shape[i] != 1)
    if axes:
        g = g.sum(axis=axes, keepdims=True)
    return g.reshape(shape)


class _SlotSink:
    """Compiled accumulation target for one intermediate node's gradient."""

    __slots__ = ("bound", "j", "mode", "buf", "shape", "dtype")

    def __init__(self, bound, j, mode, shape, dtype):
        self.bound = bound
        self.j = j
        self.mode = mode
        self.shape = shape
        self.dtype = dtype
        # _INIT may need exclusive storage for non-owned values (views);
        # allocated lazily so owned-only producers never pay for it.
        self.buf: np.ndarray | None = None

    def put(self, g: np.ndarray, owned: bool = False, scratch: bool = False) -> None:
        """Accumulate one contribution (mirrors ``Tensor._accum`` values).

        ``owned`` has the interpreter's meaning (fresh array, nobody else
        references it).  ``scratch`` marks a kernel's private per-entry
        buffer: reused across steps but exclusive within one, so a slot
        may adopt it like an owned value (the next step rewrites it only
        after the previous step fully consumed it).
        """
        node = self.bound[self.j]
        if g.dtype != self.dtype:
            g = np.asarray(g, dtype=self.dtype)
            owned = True
        if g.shape != self.shape:
            g = _reduce_to(g, self.shape)
            owned = True
        mode = self.mode
        if mode == _SET:
            node.grad = g
        elif mode == _INIT:
            if owned or scratch:
                node.grad = g
            else:
                buf = self.buf
                if buf is None:
                    buf = self.buf = np.empty(self.shape, dtype=self.dtype)
                np.copyto(buf, g)
                node.grad = buf
        else:
            node.grad += g


class _LeafSink:
    """Compiled accumulation target for a leaf parameter's gradient.

    Leaf gradients outlive the round (they accumulate across
    micro-batches), so unlike slots they never adopt kernel scratch.
    With a donated view the first contribution is copied straight into
    the engine's staging buffer; ``+=`` then accumulates in place there.
    """

    __slots__ = ("param", "view", "shape", "dtype")

    def __init__(self, param: Tensor, view: np.ndarray | None):
        self.param = param
        self.view = view
        self.shape = param.data.shape
        self.dtype = param.data.dtype

    def put(self, g: np.ndarray, owned: bool = False, scratch: bool = False) -> None:
        """Accumulate one contribution (mirrors ``Tensor._accum`` values)."""
        p = self.param
        if g.dtype != self.dtype:
            g = np.asarray(g, dtype=self.dtype)
            owned = True
        if g.shape != self.shape:
            g = _reduce_to(g, self.shape)
            owned = True
        if p.grad is None:
            if self.view is not None:
                np.copyto(self.view, g)
                p.grad = self.view
            else:
                p.grad = g if (owned and not scratch) else g.copy()
        else:
            p.grad += g


# ---------------------------------------------------------------------------
# kernel registry
# ---------------------------------------------------------------------------

def _backward_code(func: Callable) -> types.CodeType:
    """The code object of the ``backward`` closure nested in ``func``.

    Closure code objects are per-op constants shared by every instance,
    which makes them stable registry keys and cheap signature entries.
    """
    for const in func.__code__.co_consts:
        if isinstance(const, types.CodeType) and const.co_name == "backward":
            return const
    raise GradError(f"no backward closure found in {getattr(func, '__qualname__', func)!r}")


class _Uncompilable(Exception):
    """Raised by a kernel factory that cannot compile this entry (falls
    back to the op's own closure — always correct, just interpreted)."""


class _Ctx:
    """Per-entry compile context handed to kernel factories."""

    __slots__ = ("tape", "i", "rec", "bound", "node")

    def __init__(self, tape: "BackwardTape", i: int):
        self.tape = tape
        self.i = i
        self.rec = tape._records[i]
        self.bound = tape._bound
        # The record-graph node: intact during compile, used to read
        # structurally-constant closure cells (axes, cached index arrays).
        self.node = tape._bound[i]

    def sink(self, j: int):
        spec = self.rec[3][j]
        kind = spec[0]
        if kind == "n":
            tj = spec[1]
            mode = self.tape._plan[(self.i, j)]
            t_rec = self.tape._records[tj]
            return _SlotSink(self.bound, tj, mode, t_rec[1], t_rec[2])
        if kind == "l":
            p = spec[1]
            return _LeafSink(p, self.tape._donated_view(p))
        return None  # constant operand: no gradient flows

    def cells(self, *names: str) -> tuple[int, ...]:
        fv = self.rec[0].co_freevars
        try:
            return tuple(fv.index(n) for n in names)
        except ValueError as err:  # pragma: no cover - registry/op drift
            raise _Uncompilable(str(err)) from err

    def record_cell(self, name: str) -> Any:
        """The value a record-graph closure captured for ``name``."""
        bk = self.node._backward
        idx = bk.__code__.co_freevars.index(name)
        return bk.__closure__[idx].cell_contents

    def parent_shape(self, j: int) -> tuple[int, ...]:
        spec = self.rec[3][j]
        if spec[0] == "n":
            return self.tape._records[spec[1]][1]
        if spec[0] == "l":
            return spec[1].data.shape
        return spec[1]

    def uniform_dtype(self) -> Any:
        """The entry's dtype, required to be shared by all grad-bearing
        operands (mixed-precision entries stay interpreted so NumPy's
        promotion rules keep applying)."""
        dtype = self.rec[2]
        for j, spec in enumerate(self.rec[3]):
            if spec[0] == "n":
                if self.tape._records[spec[1]][2] != dtype:
                    raise _Uncompilable("mixed dtypes")
            elif spec[0] == "l":
                if spec[1].data.dtype != dtype:
                    raise _Uncompilable("mixed dtypes")
        return dtype


def _k_add(ctx: _Ctx):
    s0, s1 = ctx.sink(0), ctx.sink(1)
    bound, i = ctx.bound, ctx.i

    def run():
        g = bound[i].grad
        if s0 is not None:
            s0.put(g)
        if s1 is not None:
            s1.put(g)

    return run


def _k_neg(ctx: _Ctx):
    s0 = ctx.sink(0)
    if s0 is None:
        raise _Uncompilable("no grad-bearing operand")
    dtype = ctx.uniform_dtype()
    buf = np.empty(ctx.rec[1], dtype=dtype)
    bound, i = ctx.bound, ctx.i

    def run():
        np.negative(bound[i].grad, out=buf)
        s0.put(buf, scratch=True)

    return run


def _k_sub(ctx: _Ctx):
    s0, s1 = ctx.sink(0), ctx.sink(1)
    dtype = ctx.uniform_dtype()
    buf = np.empty(ctx.rec[1], dtype=dtype) if s1 is not None else None
    bound, i = ctx.bound, ctx.i

    def run():
        g = bound[i].grad
        if s0 is not None:
            s0.put(g)
        if s1 is not None:
            np.negative(g, out=buf)
            s1.put(buf, scratch=True)

    return run


def _k_mul(ctx: _Ctx):
    s0, s1 = ctx.sink(0), ctx.sink(1)
    dtype = ctx.uniform_dtype()
    shape = ctx.rec[1]
    b0 = np.empty(shape, dtype=dtype) if s0 is not None else None
    b1 = np.empty(shape, dtype=dtype) if s1 is not None else None
    bound, i = ctx.bound, ctx.i

    def run():
        node = bound[i]
        g = node.grad
        prev = node._prev
        if s0 is not None:
            np.multiply(g, prev[1].data, out=b0)
            s0.put(b0, scratch=True)
        if s1 is not None:
            np.multiply(g, prev[0].data, out=b1)
            s1.put(b1, scratch=True)

    return run


def _k_matmul(ctx: _Ctx):
    a_shape, b_shape = ctx.parent_shape(0), ctx.parent_shape(1)
    out_shape = ctx.rec[1]
    if len(a_shape) < 2 or len(b_shape) < 2 or len(out_shape) < 2:
        raise _Uncompilable("1-D matmul operands take the outer-product path")
    dtype = ctx.uniform_dtype()
    s0, s1 = ctx.sink(0), ctx.sink(1)
    ga_shape = np.broadcast_shapes(out_shape[:-2], b_shape[:-2]) + (
        out_shape[-2], b_shape[-2],
    )
    gb_shape = np.broadcast_shapes(out_shape[:-2], a_shape[:-2]) + (
        a_shape[-1], out_shape[-1],
    )
    b0 = np.empty(ga_shape, dtype=dtype) if s0 is not None else None
    b1 = np.empty(gb_shape, dtype=dtype) if s1 is not None else None
    bound, i = ctx.bound, ctx.i

    def run():
        node = bound[i]
        g = node.grad
        prev = node._prev
        if s0 is not None:
            np.matmul(g, prev[1].data.swapaxes(-1, -2), out=b0)
            s0.put(b0, scratch=True)
        if s1 is not None:
            np.matmul(prev[0].data.swapaxes(-1, -2), g, out=b1)
            s1.put(b1, scratch=True)

    return run


def _k_transpose(ctx: _Ctx):
    s0 = ctx.sink(0)
    if s0 is None:
        raise _Uncompilable("no grad-bearing operand")
    axes_rec = tuple(ctx.record_cell("axes"))
    inv = tuple(int(a) for a in np.argsort(axes_rec))
    (ax_i,) = ctx.cells("axes")
    bound, i = ctx.bound, ctx.i

    def run():
        node = bound[i]
        axes = node._backward.__closure__[ax_i].cell_contents
        if axes == axes_rec:
            s0.put(node.grad.transpose(inv))
        else:  # same shapes, different permutation: recompute, stay correct
            s0.put(node.grad.transpose(np.argsort(axes)))

    return run


def _k_reshape(ctx: _Ctx):
    s0 = ctx.sink(0)
    if s0 is None:
        raise _Uncompilable("no grad-bearing operand")
    original = tuple(ctx.record_cell("original"))
    bound, i = ctx.bound, ctx.i

    def run():
        s0.put(bound[i].grad.reshape(original))

    return run


def _k_swapaxes(ctx: _Ctx):
    s0 = ctx.sink(0)
    if s0 is None:
        raise _Uncompilable("no grad-bearing operand")
    a_i, b_i = ctx.cells("a", "b")
    bound, i = ctx.bound, ctx.i

    def run():
        node = bound[i]
        cells = node._backward.__closure__
        s0.put(np.swapaxes(node.grad, cells[a_i].cell_contents, cells[b_i].cell_contents))

    return run


def _k_softmax(ctx: _Ctx):
    s0 = ctx.sink(0)
    if s0 is None:
        raise _Uncompilable("no grad-bearing operand")
    dtype = ctx.uniform_dtype()
    (ax_i, od_i) = ctx.cells("axis", "out_data")
    buf = np.empty(ctx.rec[1], dtype=dtype)
    bound, i = ctx.bound, ctx.i

    def run():
        node = bound[i]
        g = node.grad
        cells = node._backward.__closure__
        axis = cells[ax_i].cell_contents
        out_data = cells[od_i].cell_contents
        np.multiply(g, out_data, out=buf)
        dot = buf.sum(axis=axis, keepdims=True)
        np.subtract(g, dot, out=buf)
        np.multiply(out_data, buf, out=buf)
        s0.put(buf, scratch=True)

    return run


def _k_silu(ctx: _Ctx):
    s0 = ctx.sink(0)
    if s0 is None:
        raise _Uncompilable("no grad-bearing operand")
    dtype = ctx.uniform_dtype()
    (sig_i,) = ctx.cells("sig")
    shape = ctx.rec[1]
    b0 = np.empty(shape, dtype=dtype)
    b1 = np.empty(shape, dtype=dtype)
    bound, i = ctx.bound, ctx.i

    def run():
        node = bound[i]
        g = node.grad
        sig = node._backward.__closure__[sig_i].cell_contents
        xd = node._prev[0].data
        # g * (sig + x*sig*(1-sig)), ufunc-for-ufunc as the closure.
        np.multiply(xd, sig, out=b0)
        np.subtract(1.0, sig, out=b1)
        np.multiply(b0, b1, out=b0)
        np.add(sig, b0, out=b0)
        np.multiply(g, b0, out=b0)
        s0.put(b0, scratch=True)

    return run


def _k_rms_norm(ctx: _Ctx):
    sx, sw = ctx.sink(0), ctx.sink(1)
    dtype = ctx.uniform_dtype()
    inv_i, normed_i = ctx.cells("inv", "normed")
    shape = ctx.rec[1]
    n = shape[-1]
    b0 = np.empty(shape, dtype=dtype)
    b1 = np.empty(shape, dtype=dtype)
    bound, i = ctx.bound, ctx.i

    def run():
        node = bound[i]
        g = node.grad
        cells = node._backward.__closure__
        inv = cells[inv_i].cell_contents
        normed = cells[normed_i].cell_contents
        prev = node._prev
        # Closure order: weight first, then x.
        if sw is not None:
            np.multiply(g, normed, out=b0)
            sw.put(b0.reshape(-1, n).sum(axis=0), owned=True)
        if sx is not None:
            xd = prev[0].data
            np.multiply(g, prev[1].data, out=b0)  # gw
            np.multiply(b0, xd, out=b1)
            dot = b1.sum(axis=-1, keepdims=True)
            np.multiply(inv, b0, out=b0)  # inv * gw
            np.multiply((inv**3 / n) * dot, xd, out=b1)
            np.subtract(b0, b1, out=b0)
            sx.put(b0, scratch=True)

    return run


def _k_embedding(ctx: _Ctx):
    sink = ctx.sink(0)
    if sink is None:
        raise _Uncompilable("no grad-bearing operand")
    dtype = ctx.uniform_dtype()
    (ids_i,) = ctx.cells("ids")
    w_shape = ctx.parent_shape(0)
    if len(w_shape) != 2:
        raise _Uncompilable("embedding weight must be 2-D")
    cols = w_shape[1]
    leaf = isinstance(sink, _LeafSink)
    sc: list[np.ndarray | None] = [None]
    bound, i = ctx.bound, ctx.i

    def run():
        node = bound[i]
        g = node.grad
        ids = node._backward.__closure__[ids_i].cell_contents
        flat_ids = ids.reshape(-1)
        g2 = g.reshape(-1, cols)
        if leaf and sink.param.grad is None and sink.view is not None:
            # First contribution, donated: scatter-add straight into the
            # engine's staging slice (zeroed first, like zeros_like).
            view = sink.view
            view[...] = 0.0
            np.add.at(view, flat_ids, g2)
            sink.param.grad = view
        else:
            buf = sc[0]
            if buf is None:
                buf = sc[0] = np.empty(w_shape, dtype=dtype)
            buf[...] = 0.0
            np.add.at(buf, flat_ids, g2)
            sink.put(buf, scratch=True)

    return run


def _k_cross_entropy(ctx: _Ctx):
    s0 = ctx.sink(0)
    if s0 is None:
        raise _Uncompilable("no grad-bearing operand")
    dtype = ctx.uniform_dtype()
    lp_i, st_i, v_i, c_i = ctx.cells("log_probs", "safe_targets", "valid", "count")
    logits_shape = ctx.parent_shape(0)
    lp_shape = ctx.record_cell("log_probs").shape
    buf = np.empty(lp_shape, dtype=dtype)
    rows = np.arange(lp_shape[0])
    bound, i = ctx.bound, ctx.i

    def run():
        node = bound[i]
        g = node.grad
        cells = node._backward.__closure__
        np.exp(cells[lp_i].cell_contents, out=buf)
        buf[rows, cells[st_i].cell_contents] -= 1.0
        np.multiply(
            buf,
            (cells[v_i].cell_contents / cells[c_i].cell_contents)[:, None],
            out=buf,
        )
        np.multiply(buf, np.asarray(g), out=buf)
        s0.put(buf.reshape(logits_shape), scratch=True)

    return run


def _k_apply_rope(ctx: _Ctx):
    s0 = ctx.sink(0)
    if s0 is None:
        raise _Uncompilable("no grad-bearing operand")
    dtype = ctx.uniform_dtype()
    cos_i, sin_i = ctx.cells("cos", "sin")
    shape = ctx.rec[1]
    half = shape[-1] // 2
    b0 = np.empty(shape, dtype=dtype)
    b1 = np.empty(shape, dtype=dtype)
    b2 = np.empty(shape, dtype=dtype)
    bound, i = ctx.bound, ctx.i

    def run():
        node = bound[i]
        g = node.grad
        cells = node._backward.__closure__
        # g*cos + rotate_half_t(g*sin), with the concatenate spelled as
        # two half-writes into a persistent buffer.
        np.multiply(g, cells[cos_i].cell_contents, out=b0)
        np.multiply(g, cells[sin_i].cell_contents, out=b1)
        b2[..., :half] = b1[..., half:]
        np.negative(b1[..., :half], out=b2[..., half:])
        np.add(b0, b2, out=b0)
        s0.put(b0, scratch=True)

    return run


_KERNELS: dict[types.CodeType, Callable[[_Ctx], Callable[[], None]]] = {}


def _register(host: Callable, factory: Callable[[_Ctx], Callable[[], None]]) -> None:
    _KERNELS[_backward_code(host)] = factory


_register(Tensor.__add__, _k_add)
_register(Tensor.__neg__, _k_neg)
_register(Tensor.__sub__, _k_sub)
_register(Tensor.__mul__, _k_mul)
_register(Tensor.__matmul__, _k_matmul)
_register(Tensor.transpose, _k_transpose)
_register(Tensor.reshape, _k_reshape)
_register(Tensor.swapaxes, _k_swapaxes)
_register(F.softmax, _k_softmax)
_register(F.silu, _k_silu)
_register(F.rms_norm, _k_rms_norm)
_register(F.embedding, _k_embedding)
_register(F.cross_entropy, _k_cross_entropy)
_register(F.apply_rope, _k_apply_rope)


# ---------------------------------------------------------------------------
# the tape
# ---------------------------------------------------------------------------

@dataclass
class TapeStats:
    """Counters describing a tape's record/replay history."""

    records: int = 0
    replays: int = 0
    invalidations: int = 0
    interpreted: int = 0  # rounds run fully interpreted (tape disabled)
    kernel_fallbacks: int = 0  # compiled entries using the op's own closure
    last_invalidation: str | None = None
    disabled_reason: str | None = None


class BackwardTape:
    """Record a step function's backward pass once, then replay it.

    Usage: wrap each forward in :meth:`capture`, then call
    :meth:`backward` on the loss instead of ``loss.backward()``::

        tape = BackwardTape(donate=engine.grad_donation_views())
        with tape.capture():
            loss = model.loss(ids, labels)
        tape.backward(loss)

    The first round records and compiles; later rounds verify the graph
    signature and replay.  Any structural change (shapes, ops, parameter
    identity, graph size) invalidates the program and re-records — replay
    is bitwise-identical to the interpreted backward or it does not run.

    ``donate`` maps ``id(param)`` to a NumPy view that should receive the
    parameter's gradient in place (the fused engine's staging slices).
    """

    def __init__(self, donate: dict[int, np.ndarray] | None = None) -> None:
        self._donate: dict[int, np.ndarray] = dict(donate) if donate else {}
        # One list object reused for every round: compiled entries close
        # over (list, index), so rebinding is just refilling the list.
        self._bound: list[Tensor] = []
        self._records: list[tuple] | None = None
        self._order: list[int] | None = None
        self._plan: dict[tuple[int, int], int] | None = None
        self._program: list[Callable[[], None]] | None = None
        self._root_idx: int | None = None
        self._capturing = False
        self._captured_round = False
        self._disabled: str | None = None
        self.stats = TapeStats()

    # -- public surface -----------------------------------------------------

    @property
    def compiled(self) -> bool:
        """Whether a recorded program is currently live."""
        return self._program is not None

    @contextlib.contextmanager
    def capture(self):
        """Capture graph construction for the next :meth:`backward`."""
        if self._capturing:
            raise GradError("BackwardTape.capture() cannot be nested")
        if _tensor_mod._tape_sink is not None:
            raise GradError("another BackwardTape capture is already active")
        del self._bound[:]
        self._capturing = True
        _tensor_mod._tape_sink = self._bound
        try:
            yield self
        finally:
            _tensor_mod._tape_sink = None
            self._capturing = False
            self._captured_round = True

    def invalidate(self, reason: str = "manual") -> None:
        """Drop the compiled program; the next round re-records."""
        if self._program is not None:
            self.stats.invalidations += 1
            self.stats.last_invalidation = reason
        self._records = None
        self._order = None
        self._plan = None
        self._program = None
        self._root_idx = None

    def backward(self, root: Tensor, grad: np.ndarray | None = None) -> None:
        """Run the captured round's backward pass from ``root``.

        Records on the first round (or after an invalidation), replays
        when the captured graph matches the recorded signature, and runs
        the ordinary interpreted sweep when the tape is disabled (graphs
        it cannot bind, e.g. nodes created outside the capture).
        """
        if not self._captured_round:
            raise GradError(
                "BackwardTape.backward() requires a capture() round first"
            )
        try:
            if self._disabled is not None:
                self.stats.interpreted += 1
                root.backward(grad)
            elif self._program is None:
                self._record(root, grad)
            else:
                reason = self._mismatch(root)
                if reason is None:
                    self._seed(root, grad)
                    for fn in self._program:
                        fn()
                    self.stats.replays += 1
                else:
                    self.invalidate(reason)
                    self._record(root, grad)
        finally:
            self._captured_round = False
            # Break closure<->node reference cycles (the interpreted sweep
            # does this as it executes) and drop the round's graph.
            for node in self._bound:
                node._backward = None
                node._prev = ()
            del self._bound[:]

    # -- internals ----------------------------------------------------------

    def _donated_view(self, p: Tensor) -> np.ndarray | None:
        view = self._donate.get(id(p))
        if view is None or view.shape != p.data.shape or view.dtype != p.data.dtype:
            return None
        return view

    def _disable(self, reason: str) -> None:
        self.invalidate(reason)
        self._disabled = reason
        self.stats.disabled_reason = reason

    @staticmethod
    def _seed(root: Tensor, grad: np.ndarray | None) -> None:
        """Seed ``root.grad`` exactly as :meth:`Tensor.backward` does."""
        if not root.requires_grad:
            raise GradError("backward() on a tensor that does not require grad")
        if grad is None:
            if root.data.size != 1:
                raise GradError(
                    f"backward() without an explicit gradient requires a scalar; "
                    f"got shape {root.shape}"
                )
            grad = np.ones_like(root.data)
        grad = np.asarray(grad, dtype=root.data.dtype)
        if grad.shape != root.data.shape:
            raise ShapeError(
                f"gradient shape {grad.shape} != tensor shape {root.shape}"
            )
        if root.grad is None:
            root.grad = grad.copy()
        else:
            root.grad += grad

    def _record(self, root: Tensor, grad: np.ndarray | None) -> None:
        bound = self._bound
        index = {id(n): i for i, n in enumerate(bound)}
        root_idx = index.get(id(root))
        if root_idx is None:
            self._disable("backward() root was not created during capture()")
            self.stats.interpreted += 1
            root.backward(grad)
            return

        # The interpreter's DFS, verbatim — reachability prunes captured
        # nodes the root never consumes (dead branches).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))
        for node in topo:
            if node._backward is not None and id(node) not in index:
                self._disable("graph contains grad nodes created outside capture()")
                self.stats.interpreted += 1
                root.backward(grad)
                return

        # Structural signature over the full captured list (dead branches
        # included: they must re-bind for the graph to count as "the same").
        records: list[tuple] = []
        for node in bound:
            parents = []
            for p in node._prev:
                j = index.get(id(p))
                if j is not None:
                    parents.append(("n", j))
                elif p.requires_grad:
                    parents.append(("l", p))
                else:
                    parents.append(("c", p.data.shape))
            records.append(
                (
                    node._backward.__code__ if node._backward is not None else None,
                    node.data.shape,
                    node.data.dtype,
                    tuple(parents),
                )
            )
        self._records = records
        self._root_idx = root_idx

        # Execute interpreted, logging the execution order the replay
        # must reproduce (accumulation order is part of bitwise identity).
        self._seed(root, grad)
        order: list[int] = []
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                order.append(index[id(node)])
                node._backward(node.grad)
        self._order = order
        self._compile()
        self.stats.records += 1

    def _compile(self) -> None:
        """Build the replay program from the recorded execution order."""
        records, order = self._records, self._order
        assert records is not None and order is not None

        # Contribution schedule: per accumulation target, how many
        # contributions arrive and which occurrence is first — this is
        # what lets sinks adopt/copy/+= exactly like the interpreter.
        totals: dict[tuple, int] = {}
        occurrences: list[tuple[int, int, tuple]] = []
        for i in order:
            for j, spec in enumerate(records[i][3]):
                kind = spec[0]
                if kind == "n":
                    key = ("n", spec[1])
                elif kind == "l":
                    key = ("l", id(spec[1]))
                else:
                    continue
                occurrences.append((i, j, key))
                totals[key] = totals.get(key, 0) + 1
        plan: dict[tuple[int, int], int] = {}
        seen: dict[tuple, int] = {}
        for i, j, key in occurrences:
            c = seen.get(key, 0)
            plan[(i, j)] = _SET if totals[key] == 1 else (_INIT if c == 0 else _ACC)
            seen[key] = c + 1
        self._plan = plan

        bound = self._bound
        program: list[Callable[[], None]] = []
        for i in order:
            factory = _KERNELS.get(records[i][0])
            entry: Callable[[], None] | None = None
            if factory is not None:
                try:
                    entry = factory(_Ctx(self, i))
                except _Uncompilable:
                    entry = None
            if entry is None:
                self.stats.kernel_fallbacks += 1
                entry = _make_fallback(bound, i)
            program.append(entry)
        self._program = program

    def _mismatch(self, root: Tensor) -> str | None:
        """Bind the captured graph against the recorded signature.

        Returns an invalidation reason, or ``None`` when the graph
        matches and the compiled program may replay.
        """
        bound, records = self._bound, self._records
        assert records is not None
        if len(bound) != len(records):
            return f"graph size changed ({len(records)} -> {len(bound)} nodes)"
        if bound[self._root_idx] is not root:
            return "backward() root is not the recorded root node"
        for i, node in enumerate(bound):
            code, shape, dtype, parents = records[i]
            bk = node._backward
            if (bk.__code__ if bk is not None else None) is not code:
                return f"op changed at node {i}"
            data = node.data
            if data.shape != shape:
                return f"shape changed at node {i} ({shape} -> {data.shape})"
            if data.dtype != dtype:
                return f"dtype changed at node {i} ({dtype} -> {data.dtype})"
            prev = node._prev
            if len(prev) != len(parents):
                return f"parent count changed at node {i}"
            for p, spec in zip(prev, parents):
                kind = spec[0]
                if kind == "n":
                    if p is not bound[spec[1]]:
                        return f"graph wiring changed at node {i}"
                elif kind == "l":
                    if p is not spec[1]:
                        return f"leaf parameter changed at node {i}"
                elif p.requires_grad or p.data.shape != spec[1]:
                    return f"constant operand changed at node {i}"
        return None


def _make_fallback(bound: list[Tensor], i: int) -> Callable[[], None]:
    def run():
        node = bound[i]
        if node.grad is not None:
            node._backward(node.grad)

    return run
