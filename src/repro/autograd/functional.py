"""Fused differentiable operations used by the transformer stack.

These are implemented as single tape nodes (rather than compositions of
primitives) for numerical stability and speed: softmax, log-softmax,
cross-entropy, RMS norm, SiLU, embedding lookup, and rotary position
embedding.  Each has a hand-derived backward verified by numerical
gradient checking in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..util.errors import ShapeError
from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "silu",
    "gelu",
    "relu",
    "rms_norm",
    "layer_norm",
    "embedding",
    "apply_rope",
    "rope_cache",
    "dropout",
]

IGNORE_INDEX = -100


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Normalized exponentials along ``axis`` (stable: max-shifted)."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> None:
        # d softmax: s * (g - sum(g * s))
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        x._accum(out_data * (g - dot), owned=True)

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - lse
    probs = np.exp(out_data)

    def backward(g: np.ndarray) -> None:
        x._accum(g - probs * g.sum(axis=axis, keepdims=True), owned=True)

    return Tensor._make(out_data, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray, ignore_index: int = IGNORE_INDEX) -> Tensor:
    """Mean token-level cross entropy.

    ``logits``: float tensor of shape ``(..., V)``; ``targets``: integer
    array of shape ``(...)``.  Positions equal to ``ignore_index`` are
    excluded from both the loss and the gradient (used for padding and for
    masking the prompt during SFT).
    """
    targets = np.asarray(targets)
    if targets.shape != logits.shape[:-1]:
        raise ShapeError(
            f"targets shape {targets.shape} incompatible with logits {logits.shape}"
        )
    vocab = logits.shape[-1]
    flat_logits = logits.data.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)
    valid = flat_targets != ignore_index
    count = int(valid.sum())
    if count == 0:
        raise ShapeError("cross_entropy: every target position is ignored")

    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - lse

    safe_targets = np.where(valid, flat_targets, 0)
    picked = log_probs[np.arange(flat_targets.size), safe_targets]
    loss = -(picked * valid).sum() / count
    out_data = np.asarray(loss, dtype=logits.data.dtype)

    def backward(g: np.ndarray) -> None:
        grad = np.exp(log_probs)
        grad[np.arange(flat_targets.size), safe_targets] -= 1.0
        grad *= (valid / count)[:, None]
        grad *= np.asarray(g)  # scalar chain factor
        logits._accum(grad.reshape(logits.shape), owned=True)

    return Tensor._make(out_data, (logits,), backward)


def silu(x: Tensor) -> Tensor:
    """SiLU / swish: ``x * sigmoid(x)`` (the Llama MLP activation)."""
    sig = 0.5 * (np.tanh(0.5 * x.data) + 1.0)
    out_data = x.data * sig

    def backward(g: np.ndarray) -> None:
        x._accum(g * (sig + x.data * sig * (1.0 - sig)), owned=True)

    return Tensor._make(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Element-wise rectifier ``max(x, 0)``."""
    mask = x.data > 0
    out_data = x.data * mask

    def backward(g: np.ndarray) -> None:
        x._accum(g * mask, owned=True)

    return Tensor._make(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Tanh-approximated GELU (as used by GPT-style MLPs)."""
    c = np.sqrt(2.0 / np.pi).astype(x.data.dtype) if hasattr(np.sqrt(2.0 / np.pi), "astype") else np.sqrt(2.0 / np.pi)
    inner = c * (x.data + 0.044715 * x.data**3)
    t = np.tanh(inner)
    out_data = 0.5 * x.data * (1.0 + t)

    def backward(g: np.ndarray) -> None:
        d_inner = c * (1.0 + 3 * 0.044715 * x.data**2)
        dt = (1.0 - t * t) * d_inner
        x._accum(g * (0.5 * (1.0 + t) + 0.5 * x.data * dt), owned=True)

    return Tensor._make(out_data, (x,), backward)


def rms_norm(x: Tensor, weight: Tensor, eps: float = 1e-6) -> Tensor:
    """Root-mean-square layer norm over the last axis (Llama-style).

    ``y = x / sqrt(mean(x^2) + eps) * w``
    """
    if weight.data.shape != (x.shape[-1],):
        raise ShapeError(f"rms_norm weight shape {weight.shape} != ({x.shape[-1]},)")
    ms = (x.data * x.data).mean(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(ms + eps)
    normed = x.data * inv
    out_data = normed * weight.data

    def backward(g: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accum((g * normed).reshape(-1, x.shape[-1]).sum(axis=0), owned=True)
        if x.requires_grad:
            gw = g * weight.data
            n = x.shape[-1]
            dot = (gw * x.data).sum(axis=-1, keepdims=True)
            x._accum(inv * gw - (inv**3 / n) * dot * x.data, owned=True)

    return Tensor._make(out_data, (x, weight), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Classic LayerNorm (kept for non-Llama architectures)."""
    mu = x.data.mean(axis=-1, keepdims=True)
    xc = x.data - mu
    var = (xc * xc).mean(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    normed = xc * inv
    out_data = normed * weight.data + bias.data

    def backward(g: np.ndarray) -> None:
        n = x.shape[-1]
        if weight.requires_grad:
            weight._accum((g * normed).reshape(-1, n).sum(axis=0), owned=True)
        if bias.requires_grad:
            bias._accum(g.reshape(-1, n).sum(axis=0), owned=True)
        if x.requires_grad:
            gw = g * weight.data
            mean_g = gw.mean(axis=-1, keepdims=True)
            mean_gx = (gw * normed).mean(axis=-1, keepdims=True)
            x._accum(inv * (gw - mean_g - normed * mean_gx), owned=True)

    return Tensor._make(out_data, (x, weight, bias), backward)


def embedding(weight: Tensor, ids: np.ndarray) -> Tensor:
    """Row gather ``weight[ids]`` with scatter-add backward."""
    ids = np.asarray(ids)
    if ids.dtype.kind not in "iu":
        raise ShapeError(f"embedding ids must be integers, got dtype {ids.dtype}")
    out_data = weight.data[ids]

    def backward(g: np.ndarray) -> None:
        if not weight.requires_grad:
            return
        full = np.zeros_like(weight.data)
        np.add.at(full, ids.reshape(-1), g.reshape(-1, weight.data.shape[1]))
        weight._accum(full, owned=True)

    return Tensor._make(out_data, (weight,), backward)


def rope_cache(seq_len: int, head_dim: int, base: float = 10000.0, dtype=np.float32):
    """Precompute cos/sin tables for rotary position embedding.

    Returns ``(cos, sin)`` each of shape ``(seq_len, head_dim)`` following
    the Llama "rotate half" convention: frequencies repeat across the two
    halves of the head dimension.
    """
    if head_dim % 2:
        raise ShapeError(f"RoPE head_dim must be even, got {head_dim}")
    inv_freq = 1.0 / (base ** (np.arange(0, head_dim, 2, dtype=np.float64) / head_dim))
    positions = np.arange(seq_len, dtype=np.float64)
    freqs = np.outer(positions, inv_freq)  # (T, D/2)
    emb = np.concatenate([freqs, freqs], axis=-1)  # (T, D)
    return np.cos(emb).astype(dtype), np.sin(emb).astype(dtype)


def _rotate_half(x: np.ndarray) -> np.ndarray:
    half = x.shape[-1] // 2
    return np.concatenate([-x[..., half:], x[..., :half]], axis=-1)


def _rotate_half_t(x: np.ndarray) -> np.ndarray:
    """Transpose of the rotate-half linear map (for backward)."""
    half = x.shape[-1] // 2
    return np.concatenate([x[..., half:], -x[..., :half]], axis=-1)


def apply_rope(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Apply rotary position embedding to ``x`` of shape ``(..., T, D)``.

    ``cos``/``sin`` broadcast over the leading dimensions; gradient is the
    inverse rotation (the map is orthogonal).
    """
    out_data = x.data * cos + _rotate_half(x.data) * sin

    def backward(g: np.ndarray) -> None:
        x._accum(g * cos + _rotate_half_t(g * sin), owned=True)

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ShapeError(f"dropout probability must be < 1, got {p}")
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    out_data = x.data * mask

    def backward(g: np.ndarray) -> None:
        x._accum(g * mask, owned=True)

    return Tensor._make(out_data, (x,), backward)
