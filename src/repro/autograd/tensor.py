"""Reverse-mode automatic differentiation over NumPy arrays.

A deliberately small tape-based autograd engine — the substrate standing
in for PyTorch.  Tensors wrap ``numpy.ndarray`` data; every differentiable
operation records a backward closure; :meth:`Tensor.backward` runs a
topological sweep and accumulates gradients into ``.grad`` (plain NumPy
arrays, never Tensors).

Design choices (following the HPC guides: vectorise, avoid copies):

* All math is NumPy-vectorised; no per-element Python loops anywhere.
* Gradients accumulate with in-place ``+=`` where safe.
* Graph retention is opt-in: with gradients globally disabled (see
  :func:`no_grad`) ops degrade to pure NumPy with zero bookkeeping.
* dtype follows the inputs (float32 for training, float64 for gradient
  checking) — ops never silently downcast.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from ..util.errors import GradError, ShapeError

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "cat", "stack"]

_grad_enabled: bool = True

# When a BackwardTape capture is active (see repro.autograd.compile) this
# is the tape's node list; _make appends every grad-bearing node it
# creates, so creation order doubles as a valid topological order for
# binding a recorded backward program to a freshly built graph.
_tape_sink: list["Tensor"] | None = None


@contextlib.contextmanager
def no_grad():
    """Disable graph construction within the block (inference / update)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    """Whether autograd tape recording is currently on (see :func:`no_grad`)."""
    return _grad_enabled


def _as_array(data, dtype=None) -> np.ndarray:
    arr = np.asarray(data)
    if arr.dtype.kind not in "f":
        arr = arr.astype(np.float32)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    return arr


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce a gradient back to the shape of a broadcast operand."""
    if grad.shape == shape:
        return grad
    # Sum out leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array plus an optional autograd tape node."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        *,
        dtype=None,
        name: str | None = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data, dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._prev: tuple[Tensor, ...] = ()
        self.name = name

    # -- basic introspection ------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        """The array shape tuple."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """The underlying NumPy dtype."""
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The raw ``np.ndarray`` backing this tensor (no copy, no graph)."""
        return self.data

    def item(self) -> float:
        """The value of a one-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _item_err(self)

    def detach(self) -> "Tensor":
        """A new tensor sharing this data but cut out of the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def __repr__(self) -> str:
        tag = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{tag})"

    def __len__(self) -> int:
        return len(self.data)

    # -- graph construction ---------------------------------------------------

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None] | None,
    ) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        # Hot path: ops always hand us a float ndarray, so skip __init__'s
        # coercion and build the node directly.
        out = Tensor.__new__(Tensor)
        out.data = (
            data
            if type(data) is np.ndarray and data.dtype.kind == "f"
            else _as_array(data)
        )
        out.grad = None
        out.requires_grad = requires
        out._backward = backward if requires else None
        out._prev = tuple(parents) if requires else ()
        out.name = None
        if _tape_sink is not None and out._backward is not None:
            _tape_sink.append(out)
        return out

    def _accum(self, g: np.ndarray, owned: bool = False) -> None:
        """Accumulate ``g`` into ``self.grad``.

        ``owned=True`` is a closure's promise that ``g`` is a freshly
        allocated array nobody else references (the overwhelmingly common
        case: ufunc results computed inside the backward closure), which
        lets the first accumulation adopt the array instead of defensively
        copying it.  Closures that pass a *shared* or *view* gradient
        (add/sub reusing the incoming ``g``, reshape/transpose/slice
        views, read-only ``broadcast_to`` results) keep the default and
        get the copy.  Values are bitwise-unchanged either way.
        """
        if not self.requires_grad:
            return
        data = self.data
        if not isinstance(g, np.ndarray) or g.dtype != data.dtype:
            g = np.asarray(g, dtype=data.dtype)
            owned = True  # the cast allocated a fresh array
        shape = data.shape
        if g.shape != shape:
            # Inline unbroadcast so ownership tracks whether a reduction
            # actually allocated (a pure reshape view would not).
            extra = g.ndim - len(shape)
            if extra > 0:
                g = g.sum(axis=tuple(range(extra)))
                owned = True
            axes = tuple(i for i, s in enumerate(shape) if s == 1 and g.shape[i] != 1)
            if axes:
                g = g.sum(axis=axes, keepdims=True)
                owned = True
            g = g.reshape(shape)  # view of the reduction; ownership unchanged
        if self.grad is None:
            self.grad = g if owned else g.copy()
        else:
            self.grad += g

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise GradError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise GradError(
                    f"backward() without an explicit gradient requires a scalar; got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ShapeError(f"gradient shape {grad.shape} != tensor shape {self.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Release the closure so intermediate buffers can be freed.
                node._backward = None
                node._prev = ()

    # -- arithmetic -----------------------------------------------------------

    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(
            np.asarray(other, dtype=self.data.dtype)
        )

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            self._accum(g)
            other._accum(g)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accum(-g, owned=True)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(g: np.ndarray) -> None:
            self._accum(g)
            other._accum(-g, owned=True)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            self._accum(g * other.data, owned=True)
            other._accum(g * self.data, owned=True)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            self._accum(g / other.data, owned=True)
            other._accum(-g * self.data / (other.data * other.data), owned=True)

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise GradError("tensor exponents are not supported; use exp/log")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            self._accum(g * exponent * self.data ** (exponent - 1), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                if b.data.ndim == 1:
                    ga = np.multiply.outer(g, b.data) if g.ndim else g * b.data
                else:
                    ga = g @ b.data.swapaxes(-1, -2)
                a._accum(ga, owned=True)
            if b.requires_grad:
                if a.data.ndim == 1:
                    gb = np.multiply.outer(a.data, g)
                else:
                    gb = a.data.swapaxes(-1, -2) @ g
                b._accum(gb, owned=True)

        return Tensor._make(out_data, (self, other), backward)

    # -- elementwise functions --------------------------------------------------

    def exp(self) -> "Tensor":
        """Element-wise natural exponential."""
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            self._accum(g * out_data, owned=True)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Element-wise natural logarithm."""
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            self._accum(g / self.data, owned=True)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        """Element-wise square root."""
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray) -> None:
            self._accum(g * 0.5 / out_data, owned=True)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Element-wise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            self._accum(g * (1.0 - out_data * out_data), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic via tanh.
        """Element-wise logistic function ``1 / (1 + exp(-x))``."""
        out_data = 0.5 * (np.tanh(0.5 * self.data) + 1.0)

        def backward(g: np.ndarray) -> None:
            self._accum(g * out_data * (1.0 - out_data), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        """Element-wise absolute value."""
        out_data = np.abs(self.data)

        def backward(g: np.ndarray) -> None:
            self._accum(g * np.sign(self.data), owned=True)

        return Tensor._make(out_data, (self,), backward)

    # -- reductions ---------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (or all elements)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accum(np.broadcast_to(grad, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis`` (or all elements), with gradient spread evenly."""
        count = self.data.size if axis is None else _axis_count(self.data.shape, axis)
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Variance over ``axis`` (population, ``ddof=0``)."""
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) * (self - mu)
        return sq.mean(axis=axis, keepdims=keepdims)

    # -- shape manipulation ----------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        """A reshaped graph-tracked view with the same total size."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(g: np.ndarray) -> None:
            self._accum(g.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        """Permute axes (default: reverse them), tracked for gradients."""
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes)

        def backward(g: np.ndarray) -> None:
            # argsort deferred into the closure: it only matters on the
            # grad-requiring path, and forward calls dominate.
            self._accum(g.transpose(np.argsort(axes)))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        """Interchange two axes, tracked for gradients."""
        out_data = np.swapaxes(self.data, a, b)

        def backward(g: np.ndarray) -> None:
            self._accum(np.swapaxes(g, a, b))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        """The matrix transpose, as a graph-tracked view (alias of ``transpose()``)."""
        return self.transpose()

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]
        uses_fancy = _is_fancy(idx)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            if uses_fancy:
                np.add.at(full, idx, g)
            else:
                full[idx] = g
            self._accum(full, owned=True)

        return Tensor._make(out_data, (self,), backward)

    # -- misc ------------------------------------------------------------------------

    def clip(self, low: float, high: float) -> "Tensor":
        """Element-wise clamp into ``[min_value, max_value]``."""
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(g: np.ndarray) -> None:
            self._accum(g * mask, owned=True)

        return Tensor._make(out_data, (self,), backward)

    def maximum(self, other: float) -> "Tensor":
        """Element-wise maximum against another tensor or scalar."""
        out_data = np.maximum(self.data, other)
        mask = self.data > other

        def backward(g: np.ndarray) -> None:
            self._accum(g * mask, owned=True)

        return Tensor._make(out_data, (self,), backward)


def _item_err(t: Tensor):
    raise ShapeError(f"item() requires a single-element tensor, got shape {t.shape}")


def _axis_count(shape: tuple[int, ...], axis) -> int:
    if isinstance(axis, int):
        axis = (axis,)
    count = 1
    for a in axis:
        count *= shape[a]
    return count


def _is_fancy(idx) -> bool:
    if isinstance(idx, (np.ndarray, list)):
        return True
    if isinstance(idx, tuple):
        return any(isinstance(i, (np.ndarray, list)) for i in idx)
    return False


def cat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an axis (differentiable)."""
    tensors = list(tensors)
    if not tensors:
        raise ShapeError("cat() of an empty sequence")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(lo, hi)
            t._accum(g[tuple(slicer)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        parts = np.split(g, len(tensors), axis=axis)
        for t, part in zip(tensors, parts):
            t._accum(np.squeeze(part, axis=axis))

    return Tensor._make(out_data, tensors, backward)
