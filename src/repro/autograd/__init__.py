"""Tape-based reverse-mode autograd over NumPy (the PyTorch substitute)."""

from .compile import BackwardTape, TapeStats
from .functional import (
    IGNORE_INDEX,
    apply_rope,
    cross_entropy,
    dropout,
    embedding,
    gelu,
    layer_norm,
    log_softmax,
    relu,
    rms_norm,
    rope_cache,
    silu,
    softmax,
)
from .gradcheck import check_gradients, numerical_grad
from .tensor import Tensor, cat, is_grad_enabled, no_grad, stack

__all__ = [
    "IGNORE_INDEX",
    "BackwardTape",
    "TapeStats",
    "Tensor",
    "apply_rope",
    "cat",
    "check_gradients",
    "cross_entropy",
    "dropout",
    "embedding",
    "gelu",
    "is_grad_enabled",
    "layer_norm",
    "log_softmax",
    "no_grad",
    "numerical_grad",
    "relu",
    "rms_norm",
    "rope_cache",
    "silu",
    "softmax",
    "stack",
]
