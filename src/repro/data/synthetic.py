"""Synthetic corpora: a PubMed-like CPT corpus and MedQA-like SFT pairs.

Both are generated deterministically from a :class:`MedicalKB`, using
sentence templates with filler variation so the corpus has learnable
statistical structure beyond the raw facts (word order, collocations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.rng import RngTree
from .facts import Disease, MedicalKB

__all__ = ["QAPair", "pubmed_like_corpus", "medqa_like_pairs", "general_fact_sentences"]

_FILLERS = [
    "recent studies indicate that",
    "clinical evidence shows that",
    "it is well established that",
    "researchers report that",
    "according to current guidelines ,",
]

_DISEASE_TEMPLATES = [
    "{filler} the recommended treatment for {name} is {treatment} .",
    "{filler} patients with {name} typically present with {symptom} .",
    "{filler} {name} primarily affects the {organ} .",
    "{filler} a major risk factor for {name} is {risk} .",
    "treatment of {name} with {treatment} improves outcomes .",
    "{name} is characterized by {symptom} and involvement of the {organ} .",
]

_GENERAL_TEMPLATES = {
    "capital": "the capital of {subject} is {value} .",
    "element": "the compound {subject} is composed mainly of {value} .",
    "inventor": "the device {subject} was invented by {value} .",
}


@dataclass(frozen=True)
class QAPair:
    """One supervised fine-tuning example."""

    question: str
    answer: str


def _disease_sentences(d: Disease, rng: np.random.Generator, n: int) -> list[str]:
    out = []
    for _ in range(n):
        template = _DISEASE_TEMPLATES[int(rng.integers(len(_DISEASE_TEMPLATES)))]
        filler = _FILLERS[int(rng.integers(len(_FILLERS)))]
        out.append(
            template.format(
                filler=filler,
                name=d.name,
                treatment=d.treatment,
                symptom=d.symptom,
                organ=d.organ,
                risk=d.risk_factor,
            )
        )
    return out


def general_fact_sentences(kb: MedicalKB) -> list[str]:
    """Generic filler sentences (non-medical) mixed into the corpus."""
    return [
        _GENERAL_TEMPLATES[f.relation].format(subject=f.subject, value=f.value)
        for f in kb.general
    ]


def pubmed_like_corpus(kb: MedicalKB, *, n_docs: int = 200, seed: int = 7) -> list[str]:
    """Abstract-like documents, each discussing a few diseases.

    Facts recur across documents (as in a real domain corpus), so
    continual pre-training can absorb them.
    """
    tree = RngTree(seed, "pubmed-corpus")
    docs: list[str] = []
    general = general_fact_sentences(kb)
    for doc_idx in range(n_docs):
        rng = tree.generator("doc", doc_idx)
        k = int(rng.integers(2, 5))
        picks = rng.choice(len(kb.diseases), size=k, replace=False)
        sentences: list[str] = []
        for pi in picks:
            sentences.extend(_disease_sentences(kb.diseases[int(pi)], rng, int(rng.integers(2, 4))))
        if rng.random() < 0.5 and general:
            sentences.append(general[int(rng.integers(len(general)))])
        order = rng.permutation(len(sentences))
        docs.append(" ".join(sentences[i] for i in order))
    return docs


_QA_TEMPLATES = [
    ("what is the recommended treatment for {name} ?", "the recommended treatment for {name} is {treatment} ."),
    ("which symptom is typical for {name} ?", "patients with {name} typically present with {symptom} ."),
    ("which organ does {name} primarily affect ?", "{name} primarily affects the {organ} ."),
    ("what is a major risk factor for {name} ?", "a major risk factor for {name} is {risk} ."),
]


def medqa_like_pairs(kb: MedicalKB, *, n_pairs: int = 400, seed: int = 11) -> list[QAPair]:
    """Structured question-answer pairs over the same knowledge base."""
    tree = RngTree(seed, "medqa-pairs")
    pairs: list[QAPair] = []
    for idx in range(n_pairs):
        rng = tree.generator("pair", idx)
        d = kb.diseases[int(rng.integers(len(kb.diseases)))]
        q_t, a_t = _QA_TEMPLATES[int(rng.integers(len(_QA_TEMPLATES)))]
        fields = dict(
            name=d.name, treatment=d.treatment, symptom=d.symptom, organ=d.organ, risk=d.risk_factor
        )
        pairs.append(QAPair(question=q_t.format(**fields), answer=a_t.format(**fields)))
    return pairs
