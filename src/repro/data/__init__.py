"""Synthetic data substrate: tokenizer, knowledge base, datasets."""

from .datasets import Batch, CPTDataset, SFTDataset
from .facts import Disease, GeneralFact, MedicalKB
from .synthetic import QAPair, general_fact_sentences, medqa_like_pairs, pubmed_like_corpus
from .tokenizer import WordTokenizer

__all__ = [
    "Batch",
    "CPTDataset",
    "Disease",
    "GeneralFact",
    "MedicalKB",
    "QAPair",
    "SFTDataset",
    "WordTokenizer",
    "general_fact_sentences",
    "medqa_like_pairs",
    "pubmed_like_corpus",
]
