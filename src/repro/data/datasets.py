"""Tokenized training datasets with *stateless* step-indexed batching.

The batch drawn at global step ``t`` is a pure function of
``(seed, t)`` — no iterator state.  This is what makes recovery exact:
resuming from a checkpoint at step ``t`` replays precisely the batches
an uninterrupted run would have seen, so the identity-merge recovery
trajectory overlays the original one bit-for-bit (paper §5.2, Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd.functional import IGNORE_INDEX
from ..util.errors import ConfigError
from ..util.rng import RngTree
from .synthetic import QAPair
from .tokenizer import WordTokenizer

__all__ = ["Batch", "CPTDataset", "SFTDataset"]


@dataclass(frozen=True)
class Batch:
    """One micro-batch: inputs and next-token labels (both ``(B, T)``)."""

    input_ids: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.input_ids.shape != self.labels.shape:
            raise ConfigError(
                f"batch shapes differ: inputs {self.input_ids.shape} vs labels {self.labels.shape}"
            )

    @property
    def num_target_tokens(self) -> int:
        """Count of label positions that contribute to the loss (non-ignored)."""
        return int((self.labels != IGNORE_INDEX).sum())


class CPTDataset:
    """Continual-pre-training dataset: documents packed into blocks.

    Documents are concatenated (with EOS separators) into one token
    stream, then cut into ``seq_len + 1`` windows; inputs are the first
    ``seq_len`` tokens and labels the last ``seq_len`` (next-token).
    """

    def __init__(
        self, docs: list[str], tokenizer: WordTokenizer, *, seq_len: int, seed: int = 0
    ) -> None:
        if seq_len < 2:
            raise ConfigError(f"seq_len must be >= 2, got {seq_len}")
        self.tokenizer = tokenizer
        self.seq_len = seq_len
        self.seed = seed
        stream: list[int] = []
        for doc in docs:
            stream.extend(tokenizer.encode(doc, add_bos=True, add_eos=True))
        n_blocks = (len(stream) - 1) // seq_len
        if n_blocks < 1:
            raise ConfigError(
                f"corpus too small: {len(stream)} tokens < one block of {seq_len + 1}"
            )
        self._stream = np.asarray(stream[: n_blocks * seq_len + 1], dtype=np.int64)
        self.num_blocks = n_blocks
        self._tree = RngTree(seed, "cpt-batches")

    def __len__(self) -> int:
        return self.num_blocks

    def block(self, index: int) -> Batch:
        """The ``index``-th contiguous ``seq_len`` token block as a batch of one."""
        lo = index * self.seq_len
        window = self._stream[lo : lo + self.seq_len + 1]
        return Batch(input_ids=window[:-1][None, :], labels=window[1:][None, :])

    def batch_at_step(self, step: int, batch_size: int, *, tag: str = "train") -> Batch:
        """The deterministic micro-batch for a global step (stateless)."""
        rng = self._tree.generator(tag, step)
        picks = rng.integers(0, self.num_blocks, size=batch_size)
        inputs = np.stack([self._stream[p * self.seq_len : p * self.seq_len + self.seq_len] for p in picks])
        labels = np.stack(
            [self._stream[p * self.seq_len + 1 : p * self.seq_len + self.seq_len + 1] for p in picks]
        )
        return Batch(input_ids=inputs, labels=labels)

    def eval_batches(self, batch_size: int, max_batches: int = 8) -> list[Batch]:
        """Fixed held-out-ish evaluation batches (deterministic)."""
        rng = self._tree.generator("eval")
        out = []
        for _ in range(max_batches):
            picks = rng.integers(0, self.num_blocks, size=batch_size)
            inputs = np.stack(
                [self._stream[p * self.seq_len : p * self.seq_len + self.seq_len] for p in picks]
            )
            labels = np.stack(
                [self._stream[p * self.seq_len + 1 : p * self.seq_len + self.seq_len + 1] for p in picks]
            )
            out.append(Batch(input_ids=inputs, labels=labels))
        return out


class SFTDataset:
    """Supervised fine-tuning dataset: prompt masked, answer supervised."""

    def __init__(
        self,
        pairs: list[QAPair],
        tokenizer: WordTokenizer,
        *,
        seq_len: int,
        seed: int = 0,
    ) -> None:
        if not pairs:
            raise ConfigError("SFT dataset needs at least one pair")
        self.tokenizer = tokenizer
        self.seq_len = seq_len
        self.seed = seed
        self._examples: list[tuple[np.ndarray, np.ndarray]] = []
        for pair in pairs:
            q = tokenizer.encode(pair.question, add_bos=True)
            a = tokenizer.encode(pair.answer, add_eos=True)
            ids = (q + [tokenizer.sep_id] + a)[: seq_len + 1]
            tokens = np.asarray(ids, dtype=np.int64)
            inputs = tokens[:-1]
            labels = tokens[1:].copy()
            # Mask the prompt (everything up to and including <sep>).
            prompt_len = min(len(q), len(labels))
            labels[:prompt_len] = IGNORE_INDEX
            if (labels != IGNORE_INDEX).sum() == 0:
                continue  # truncated answer entirely; skip
            pad = seq_len - len(inputs)
            if pad > 0:
                inputs = np.concatenate([inputs, np.full(pad, tokenizer.pad_id, dtype=np.int64)])
                labels = np.concatenate([labels, np.full(pad, IGNORE_INDEX, dtype=np.int64)])
            self._examples.append((inputs, labels))
        if not self._examples:
            raise ConfigError("every SFT pair was truncated away; raise seq_len")
        self._tree = RngTree(seed, "sft-batches")

    def __len__(self) -> int:
        return len(self._examples)

    def example(self, index: int) -> Batch:
        """One formatted QA example as a batch of one."""
        inputs, labels = self._examples[index]
        return Batch(input_ids=inputs[None, :], labels=labels[None, :])

    def batch_at_step(self, step: int, batch_size: int, *, tag: str = "train") -> Batch:
        """The deterministic micro-batch for a global step (stateless)."""
        rng = self._tree.generator(tag, step)
        picks = rng.integers(0, len(self._examples), size=batch_size)
        inputs = np.stack([self._examples[p][0] for p in picks])
        labels = np.stack([self._examples[p][1] for p in picks])
        return Batch(input_ids=inputs, labels=labels)

    def eval_batches(self, batch_size: int, max_batches: int = 8) -> list[Batch]:
        """Fixed deterministic evaluation batches (same picks every call)."""
        rng = self._tree.generator("eval")
        out = []
        for _ in range(max_batches):
            picks = rng.integers(0, len(self._examples), size=batch_size)
            inputs = np.stack([self._examples[p][0] for p in picks])
            labels = np.stack([self._examples[p][1] for p in picks])
            out.append(Batch(input_ids=inputs, labels=labels))
        return out
