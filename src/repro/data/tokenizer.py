"""A deterministic word-level tokenizer built from scratch.

Stands in for the HF tokenizers: vocabulary is built from a corpus
(frequency-ordered, ties broken alphabetically, so identical corpora
give identical vocabularies), with special tokens for padding, sequence
boundaries, and unknowns.  Word-level is sufficient because the
synthetic corpora draw from a closed vocabulary.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable

import numpy as np

from ..util.errors import ConfigError

__all__ = ["WordTokenizer"]

_WORD_RE = re.compile(r"[a-z0-9]+|[.,;:?!]")


class WordTokenizer:
    """Deterministic word-level tokenizer with reserved special tokens.

    The vocabulary is the most frequent lowercase word forms of the
    training texts, always prefixed by the five specials (``<pad>``,
    ``<bos>``, ``<eos>``, ``<unk>``, ``<sep>``) at fixed ids.
    """
    PAD = "<pad>"
    BOS = "<bos>"
    EOS = "<eos>"
    UNK = "<unk>"
    SEP = "<sep>"
    SPECIALS = (PAD, BOS, EOS, UNK, SEP)

    def __init__(self, vocab: list[str]) -> None:
        for i, special in enumerate(self.SPECIALS):
            if i >= len(vocab) or vocab[i] != special:
                raise ConfigError("tokenizer vocab must start with the special tokens")
        self.vocab = list(vocab)
        self.token_to_id = {tok: i for i, tok in enumerate(self.vocab)}
        if len(self.token_to_id) != len(self.vocab):
            raise ConfigError("tokenizer vocab contains duplicates")

    # -- construction -----------------------------------------------------------

    @classmethod
    def train(cls, texts: Iterable[str], vocab_size: int = 512) -> "WordTokenizer":
        """Build a vocabulary from raw texts (frequency-ordered)."""
        if vocab_size <= len(cls.SPECIALS):
            raise ConfigError(f"vocab_size must exceed {len(cls.SPECIALS)}")
        counts: Counter[str] = Counter()
        for text in texts:
            counts.update(cls.tokenize_text(text))
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        words = [w for w, _ in ranked[: vocab_size - len(cls.SPECIALS)]]
        return cls(list(cls.SPECIALS) + words)

    @staticmethod
    def tokenize_text(text: str) -> list[str]:
        """Split text into lowercase word tokens (the training-time rule)."""
        return _WORD_RE.findall(text.lower())

    # -- codec ---------------------------------------------------------------------

    @property
    def vocab_size(self) -> int:
        """Total vocabulary size including the special tokens."""
        return len(self.vocab)

    @property
    def pad_id(self) -> int:
        """Id of the padding token."""
        return self.token_to_id[self.PAD]

    @property
    def bos_id(self) -> int:
        """Id of the beginning-of-sequence token."""
        return self.token_to_id[self.BOS]

    @property
    def eos_id(self) -> int:
        """Id of the end-of-sequence token."""
        return self.token_to_id[self.EOS]

    @property
    def unk_id(self) -> int:
        """Id of the unknown-word token."""
        return self.token_to_id[self.UNK]

    @property
    def sep_id(self) -> int:
        """Id of the question/answer separator token."""
        return self.token_to_id[self.SEP]

    def encode(self, text: str, *, add_bos: bool = False, add_eos: bool = False) -> list[int]:
        """Map text to token ids, optionally bracketed by BOS/EOS."""
        ids = [self.token_to_id.get(tok, self.unk_id) for tok in self.tokenize_text(text)]
        if add_bos:
            ids.insert(0, self.bos_id)
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def encode_array(self, text: str, **kwargs) -> np.ndarray:
        """Like :meth:`encode`, returned as an ``int64`` NumPy array."""
        return np.asarray(self.encode(text, **kwargs), dtype=np.int64)

    def decode(self, ids: Iterable[int], *, skip_special: bool = True) -> str:
        """Map token ids back to a space-joined string (specials skippable)."""
        words = []
        for i in ids:
            tok = self.vocab[int(i)] if 0 <= int(i) < len(self.vocab) else self.UNK
            if skip_special and tok in self.SPECIALS:
                continue
            words.append(tok)
        return " ".join(words)

    # -- persistence ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serializable form (the ordered vocabulary)."""
        return {"vocab": self.vocab}

    @classmethod
    def from_dict(cls, data: dict) -> "WordTokenizer":
        """Rebuild a tokenizer from :meth:`to_dict` output."""
        return cls(list(data["vocab"]))

    def __repr__(self) -> str:
        return f"WordTokenizer(vocab_size={self.vocab_size})"
