"""A deterministic synthetic medical knowledge base.

Substitute for PubMed-Summarization / MedQA (unavailable offline): a
closed world of invented diseases, drugs, symptoms and organs with
functional relations between them.  The same KB underlies the CPT
corpus, the SFT pairs, and the evaluation benchmarks, so a model trained
on the corpora genuinely *knows* the answers the benchmarks probe —
which is what makes the quality-preservation comparison (paper Tables
2/5) meaningful at toy scale.

Everything derives from one seed; names are pronounceable
syllable-concatenations so the word-level tokenizer stays compact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..util.rng import RngTree

__all__ = ["Disease", "GeneralFact", "MedicalKB"]

_ONSETS = ["b", "br", "c", "cl", "d", "dr", "f", "g", "gl", "k", "l", "m", "n", "p", "pr", "s", "st", "t", "tr", "v", "z"]
_VOWELS = ["a", "e", "i", "o", "u", "ia", "eo"]
_CODAS = ["", "n", "r", "l", "x", "s", "m"]


def _make_name(rng: np.random.Generator, syllables: int, suffix: str = "") -> str:
    parts = []
    for _ in range(syllables):
        parts.append(rng.choice(_ONSETS) + rng.choice(_VOWELS) + rng.choice(_CODAS))
    return "".join(parts) + suffix


@dataclass(frozen=True)
class Disease:
    name: str
    treatment: str  # drug
    symptom: str
    organ: str
    risk_factor: str


@dataclass(frozen=True)
class GeneralFact:
    subject: str
    relation: str  # "capital" | "element" | "inventor"
    value: str


@dataclass
class MedicalKB:
    seed: int
    diseases: list[Disease] = field(default_factory=list)
    general: list[GeneralFact] = field(default_factory=list)

    @classmethod
    def build(cls, seed: int = 1234, *, n_diseases: int = 24, n_general: int = 18) -> "MedicalKB":
        """Generate the deterministic knowledge base for a seed."""
        tree = RngTree(seed, "medical-kb")
        rng = tree.generator("entities")

        drugs = sorted({_make_name(rng, 2, "ol") for _ in range(n_diseases * 2)})[:n_diseases]
        symptoms = sorted({_make_name(rng, 2, "ia") for _ in range(n_diseases * 2)})[:n_diseases]
        organs = ["heart", "liver", "lung", "kidney", "spleen", "brain", "stomach", "pancreas"]
        risks = ["smoking", "obesity", "age", "stress", "toxins", "infection"]

        diseases: list[Disease] = []
        used_names: set[str] = set()
        while len(diseases) < n_diseases:
            name = _make_name(rng, 2, "osis")
            if name in used_names:
                continue
            used_names.add(name)
            i = len(diseases)
            diseases.append(
                Disease(
                    name=name,
                    treatment=drugs[i % len(drugs)],
                    symptom=symptoms[i % len(symptoms)],
                    organ=organs[int(rng.integers(len(organs)))],
                    risk_factor=risks[int(rng.integers(len(risks)))],
                )
            )

        grng = tree.generator("general")
        general: list[GeneralFact] = []
        used = set()
        relations = ["capital", "element", "inventor"]
        while len(general) < n_general:
            subject = _make_name(grng, 2, "land" if len(general) % 3 == 0 else "ium")
            if subject in used:
                continue
            used.add(subject)
            value = _make_name(grng, 2)
            general.append(
                GeneralFact(subject=subject, relation=relations[len(general) % 3], value=value)
            )
        return cls(seed=seed, diseases=diseases, general=general)

    # -- vocabulary ---------------------------------------------------------------

    def entity_words(self) -> list[str]:
        """Every invented word (for tokenizer coverage checks)."""
        words: set[str] = set()
        for d in self.diseases:
            words.update([d.name, d.treatment, d.symptom, d.organ, d.risk_factor])
        for f in self.general:
            words.update([f.subject, f.value])
        return sorted(words)

    def treatments(self) -> list[str]:
        """All treatment entity names in the KB."""
        return sorted({d.treatment for d in self.diseases})

    def symptoms(self) -> list[str]:
        """All symptom entity names in the KB."""
        return sorted({d.symptom for d in self.diseases})

    def organs(self) -> list[str]:
        """All organ entity names in the KB."""
        return sorted({d.organ for d in self.diseases})
