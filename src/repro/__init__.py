"""LLMTailor reproduction: layer-wise tailoring for efficient LLM checkpointing.

Reproduces "LLMTailor: A Layer-wise Tailoring Tool for Efficient
Checkpointing of Large Language Models" (SC Workshops '25) end to end on
a from-scratch NumPy substrate: a transformer LM with autograd, AdamW
with PyTorch-style parameter groups, a simulated ZeRO-3 engine with
per-rank optimizer shard files, selective checkpoint strategies, and the
LLMTailor merge tool itself.

Quick start::

    from repro import TrainConfig, Trainer, LLMTailor

    cfg = TrainConfig(model="tiny-untied", task="sft", total_steps=60,
                      checkpoint_strategy="parity", checkpoint_interval=20,
                      output_dir="runs/demo", failure_step=50)
    trainer = Trainer(cfg)
    result = trainer.train()          # crashes at step 50 (injected)
    trainer.auto_recover(50)          # merge partials, resume
    trainer.train()                   # continue to completion
"""

from .core import (
    LLMTailor,
    MergeRecipe,
    MergeResult,
    load_recipe,
    tailored_group_specs,
    tailored_param_groups,
    verify_checkpoint,
)
from .dist import FaultPlan
from .nn import CausalLM, ModelConfig, build_model, get_config, list_configs
from .strategies import build_strategy, plan_strategy
from .train import ChaosSupervisor, TrainConfig, Trainer, TrainResult, train_with_faults

__version__ = "1.0.0"

__all__ = [
    "CausalLM",
    "ChaosSupervisor",
    "FaultPlan",
    "LLMTailor",
    "MergeRecipe",
    "MergeResult",
    "ModelConfig",
    "TrainConfig",
    "TrainResult",
    "Trainer",
    "train_with_faults",
    "__version__",
    "build_model",
    "build_strategy",
    "get_config",
    "list_configs",
    "load_recipe",
    "plan_strategy",
    "tailored_group_specs",
    "tailored_param_groups",
    "verify_checkpoint",
]
