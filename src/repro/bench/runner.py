"""Unified benchmark runner: one command for the whole ``benchmarks/`` suite.

Every paper table/figure lives in a ``benchmarks/bench_*.py`` pytest
module, but until this runner existed only Table 7 ever emitted a
machine-readable artifact.  The runner turns the directory into a
repo-wide perf harness:

* ``run``     — discover scenarios, execute each one (full or ``--quick``)
  under pytest-benchmark, and normalize the raw stats into
  ``benchmarks/results/BENCH_<scenario>.json`` artifacts stamped with
  environment and commit metadata, plus a rendered summary table;
* ``compare`` — diff a fresh run against the committed baselines and
  fail on best-of-rounds regressions beyond a threshold (the CI gate);
* ``list``    — show what would run.

Artifact schema (``schema: "repro-bench/1"``)::

    {"schema": "repro-bench/1",
     "scenario": str,           # bench file stem minus the bench_ prefix
     "quick": bool,             # reduced-round mode
     "generated_at": iso8601,
     "env": {python, implementation, platform, machine, cpu_count},
     "commit": {id, branch, dirty} | null,
     "benchmarks": [{"name", "fullname", "group", "params",
                     "stats": {min, max, mean, stddev, median,
                               rounds, iterations}}]}

The committed baselines under ``benchmarks/results/`` are regenerated
with ``run --out benchmarks/results`` whenever a perf-relevant change
lands.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from ..util.tables import Table

__all__ = [
    "ARTIFACT_SCHEMA",
    "LEGACY_SCENARIO_ALIASES",
    "Scenario",
    "ScenarioResult",
    "compare_artifacts",
    "discover_scenarios",
    "load_artifact",
    "main",
    "normalize_raw",
    "render_summary",
    "run_scenario",
]

ARTIFACT_SCHEMA = "repro-bench/1"
ARTIFACT_PREFIX = "BENCH_"
QUICK_ENV_VAR = "REPRO_BENCH_QUICK"
RESULTS_DIR_ENV_VAR = "REPRO_BENCH_RESULTS_DIR"
DEFAULT_THRESHOLD = 0.25
# Means below this are metadata-rendering noise, not perf signal.
DEFAULT_MIN_SECONDS = 0.005
# Retired artifact names still accepted by `compare` (with a deprecation
# note) so external baseline archives keep working.  The naming rule is
# BENCH_<scenario>.json where <scenario> is the bench_<scenario>.py stem
# — see docs/benchmarks.md; BENCH_table7.json predates the runner.
LEGACY_SCENARIO_ALIASES = {"table7": "table7_loading_time"}


@dataclass(frozen=True)
class Scenario:
    """One runnable benchmark module."""

    name: str  # "table7_loading_time"
    path: Path  # benchmarks/bench_table7_loading_time.py

    @property
    def artifact_name(self) -> str:
        """The scenario's normalized artifact filename (``BENCH_<name>.json``)."""
        return f"{ARTIFACT_PREFIX}{self.name}.json"


@dataclass
class ScenarioResult:
    """Outcome of executing one scenario."""

    scenario: Scenario
    ok: bool
    artifact: Path | None = None
    error: str | None = None


# ---------------------------------------------------------------------------
# Discovery
# ---------------------------------------------------------------------------

def discover_scenarios(bench_dir: str | Path, only: list[str] | None = None) -> list[Scenario]:
    """All ``bench_*.py`` modules under ``bench_dir``, sorted by name.

    ``only`` filters by scenario name (exact match, no ``bench_`` prefix);
    unknown names raise so a CI typo cannot silently gate on nothing.
    """
    bench_dir = Path(bench_dir)
    scenarios = [
        Scenario(name=p.stem[len("bench_"):], path=p)
        for p in sorted(bench_dir.glob("bench_*.py"))
    ]
    if only is not None:
        by_name = {s.name: s for s in scenarios}
        missing = [n for n in only if n not in by_name]
        if missing:
            raise SystemExit(
                f"unknown scenario(s) {missing}; available: {sorted(by_name)}"
            )
        scenarios = [by_name[n] for n in only]
    return scenarios


# ---------------------------------------------------------------------------
# Metadata
# ---------------------------------------------------------------------------

def collect_env() -> dict[str, Any]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def collect_commit(repo_root: str | Path) -> dict[str, Any] | None:
    """Current git commit metadata, or ``None`` outside a work tree."""

    def git(*args: str) -> str:
        return subprocess.run(
            ["git", *args], cwd=str(repo_root), check=True,
            capture_output=True, text=True,
        ).stdout.strip()

    try:
        commit = git("rev-parse", "HEAD")
        branch = git("rev-parse", "--abbrev-ref", "HEAD")
        dirty = bool(git("status", "--porcelain"))
    except (OSError, subprocess.CalledProcessError):
        return None
    return {"id": commit, "branch": branch, "dirty": dirty}


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------

_STAT_KEYS = ("min", "max", "mean", "stddev", "median", "rounds", "iterations")


def normalize_raw(
    raw: dict[str, Any],
    *,
    scenario: str,
    quick: bool,
    env: dict[str, Any] | None = None,
    commit: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Normalize a raw pytest-benchmark JSON document into an artifact."""
    benchmarks = []
    for bench in raw.get("benchmarks", []):
        stats = bench.get("stats", {})
        benchmarks.append(
            {
                "name": bench.get("name"),
                "fullname": bench.get("fullname"),
                "group": bench.get("group"),
                "params": bench.get("params"),
                "stats": {k: stats.get(k) for k in _STAT_KEYS},
                # Scenario-reported metrics (e.g. bench_serve's request
                # latency percentiles and cache hit rate) ride along so
                # the committed artifact documents service-level numbers
                # the timing stats alone cannot express.
                "extra_info": bench.get("extra_info") or {},
            }
        )
    return {
        "schema": ARTIFACT_SCHEMA,
        "scenario": scenario,
        "quick": quick,
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "env": env if env is not None else collect_env(),
        "commit": commit,
        "pytest_benchmark_version": raw.get("version"),
        "benchmarks": benchmarks,
    }


def load_artifact(path: str | Path) -> dict[str, Any]:
    """Load an artifact, adapting raw pytest-benchmark output if needed.

    Accepting the raw format keeps ``compare`` usable against baselines
    produced before the runner existed (e.g. ``--benchmark-json`` files).
    """
    path = Path(path)
    doc = json.loads(path.read_text(encoding="utf-8"))
    if doc.get("schema") == ARTIFACT_SCHEMA:
        return doc
    name = path.stem
    if name.startswith(ARTIFACT_PREFIX):
        name = name[len(ARTIFACT_PREFIX):]
    return normalize_raw(
        doc, scenario=name, quick=False,
        env=doc.get("machine_info") or {}, commit=doc.get("commit_info"),
    )


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def _subprocess_env(quick: bool, results_dir: Path) -> dict[str, str]:
    env = dict(os.environ)
    if quick:
        env[QUICK_ENV_VAR] = "1"
    else:
        env.pop(QUICK_ENV_VAR, None)
    # Route the scenarios' rendered .txt tables (emit()) to the same
    # directory as the JSON artifacts, so --out fully isolates a run.
    env[RESULTS_DIR_ENV_VAR] = str(results_dir.resolve())
    # Make `repro` importable in the child even without an editable
    # install (the documented PYTHONPATH=src workflow).
    src_dir = str(Path(__file__).resolve().parents[2])
    parts = [src_dir] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    return env


def run_scenario(
    scenario: Scenario,
    *,
    quick: bool = False,
    results_dir: str | Path,
    repo_root: str | Path | None = None,
    pytest_args: list[str] | None = None,
    profile: bool = False,
) -> ScenarioResult:
    """Execute one scenario under pytest and write its artifact.

    With ``profile``, pytest-benchmark's native cProfile support is
    enabled (``--benchmark-cprofile`` + ``--benchmark-cprofile-dump``):
    after the normal timing rounds it runs each benchmark once more
    under the profiler and dumps one ``.prof`` per benchmark, which are
    aggregated into a top-20-by-cumulative-time table written next to
    the artifact as ``PROFILE_<scenario>.txt`` — the CI-archivable
    breadcrumb that makes a hot-path regression diagnosable without
    reproducing it locally.  The recorded stats come from the unprofiled
    rounds, so profiler overhead never leaks into the artifact.
    """
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    repo_root = Path(repo_root) if repo_root else scenario.path.resolve().parents[1]
    env = _subprocess_env(quick, results_dir)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        raw_path = Path(tmp) / "raw.json"
        prof_prefix = Path(tmp) / "prof" / "bench"
        cmd = [
            sys.executable, "-m", "pytest", str(scenario.path),
            "--benchmark-json", str(raw_path),
            "-q", "-p", "no:cacheprovider", *(pytest_args or []),
        ]
        if profile:
            cmd += [
                "--benchmark-cprofile", "cumtime",
                "--benchmark-cprofile-dump", str(prof_prefix),
            ]
        proc = subprocess.run(
            cmd, cwd=str(repo_root), env=env, capture_output=True, text=True,
        )
        if proc.returncode != 0 or not raw_path.exists():
            tail = "\n".join((proc.stdout + proc.stderr).splitlines()[-25:])
            return ScenarioResult(scenario, ok=False, error=tail)
        raw = json.loads(raw_path.read_text(encoding="utf-8"))
        if profile:
            dumps = sorted(prof_prefix.parent.glob("*.prof"))
            if dumps:
                _write_profile_dump(
                    dumps, results_dir / f"PROFILE_{scenario.name}.txt"
                )
            else:
                print(f"[bench] {scenario.name}: no cProfile dumps produced; "
                      "timing artifact unaffected", file=sys.stderr)
    artifact = normalize_raw(
        raw, scenario=scenario.name, quick=quick, commit=collect_commit(repo_root)
    )
    out_path = results_dir / scenario.artifact_name
    out_path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    return ScenarioResult(scenario, ok=True, artifact=out_path)


def _write_profile_dump(
    prof_paths: list[Path], out_path: Path, top: int = 20
) -> None:
    """Merge per-benchmark cProfile dumps into one top-N cumulative table."""
    import io
    import pstats

    stream = io.StringIO()
    stats = pstats.Stats(str(prof_paths[0]), stream=stream)
    for extra in prof_paths[1:]:
        stats.add(str(extra))
    stats.sort_stats("cumulative").print_stats(top)
    out_path.write_text(stream.getvalue(), encoding="utf-8")


def render_summary(artifact_paths: list[Path]) -> str:
    """One table over every benchmark of every artifact."""
    table = Table(
        ["Scenario", "Benchmark", "Mean (s)", "Stddev", "Rounds"],
        title="Benchmark summary (BENCH_*.json)",
    )
    for path in artifact_paths:
        doc = load_artifact(path)
        for bench in doc["benchmarks"]:
            stats = bench["stats"]
            table.add_row(
                [
                    doc["scenario"],
                    bench["name"],
                    round(stats["mean"], 5) if stats.get("mean") is not None else "-",
                    round(stats["stddev"], 5) if stats.get("stddev") is not None else "-",
                    stats.get("rounds", "-"),
                ]
            )
    return table.render()


# ---------------------------------------------------------------------------
# Regression gating
# ---------------------------------------------------------------------------

def _gate_time(stats: dict[str, Any]) -> float | None:
    """The time a benchmark is gated on: best-of-rounds.

    Wall-clock noise is one-sided (scheduling, page-cache misses only
    ever add time), so the minimum is far more stable than the mean,
    especially for the low-round quick mode the CI gate runs in.
    """
    return stats.get("min") or stats.get("mean")


def compare_artifacts(
    current: dict[str, Any],
    baseline: dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> list[dict[str, Any]]:
    """Per-benchmark best-of-rounds comparison rows, keyed by ``fullname``.

    A benchmark regresses when its gate time (min, see :func:`_gate_time`)
    exceeds the baseline's by more than ``threshold``, provided the
    baseline is above ``min_seconds`` (sub-millisecond rows are
    render/bookkeeping noise).  Benchmarks present on only one side are
    reported but never fail the gate — adding a scenario must not break
    CI retroactively.
    """
    base_by_name = {b["fullname"]: b for b in baseline["benchmarks"]}
    rows: list[dict[str, Any]] = []
    for bench in current["benchmarks"]:
        ref = base_by_name.pop(bench["fullname"], None)
        cur_time = _gate_time(bench["stats"])
        if ref is None:
            rows.append({"fullname": bench["fullname"], "status": "new",
                         "current": cur_time, "baseline": None, "ratio": None})
            continue
        base_time = _gate_time(ref["stats"])
        if not cur_time or not base_time:
            # A null/zero time means stat collection broke on one side —
            # surface it (and fail the gate) rather than dropping the row.
            rows.append({"fullname": bench["fullname"], "status": "invalid",
                         "current": cur_time, "baseline": base_time, "ratio": None})
            continue
        ratio = cur_time / base_time
        if base_time < min_seconds:
            status = "skipped"
        elif ratio > 1.0 + threshold:
            status = "regression"
        elif ratio < 1.0 - threshold:
            status = "improvement"
        else:
            status = "ok"
        rows.append({"fullname": bench["fullname"], "status": status,
                     "current": cur_time, "baseline": base_time, "ratio": ratio})
    for fullname in base_by_name:
        rows.append({"fullname": fullname, "status": "missing",
                     "current": None, "baseline": _gate_time(base_by_name[fullname]["stats"]),
                     "ratio": None})
    return rows


def _render_compare(rows: list[dict[str, Any]], scenario: str) -> str:
    table = Table(
        ["Benchmark", "Baseline (s)", "Current (s)", "Ratio", "Status"],
        title=f"Regression gate: {scenario}",
    )
    for row in rows:
        table.add_row(
            [
                row["fullname"].split("::")[-1],
                round(row["baseline"], 5) if row["baseline"] is not None else "-",
                round(row["current"], 5) if row["current"] is not None else "-",
                round(row["ratio"], 3) if row["ratio"] is not None else "-",
                row["status"],
            ]
        )
    return table.render()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench.runner",
        description="Discover, run, and regression-gate the benchmarks/ suite",
    )
    parser.add_argument("--bench-dir", default="benchmarks",
                        help="directory holding bench_*.py modules")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list discovered scenarios")
    del p_list

    p_run = sub.add_parser("run", help="run scenarios and emit BENCH_*.json artifacts")
    p_run.add_argument("--quick", action="store_true",
                       help=f"reduced rounds (sets {QUICK_ENV_VAR}=1)")
    p_run.add_argument("--only", default=None,
                       help="comma-separated scenario names (default: all)")
    p_run.add_argument("--out", default=None,
                       help="artifact directory (default: <bench-dir>/results)")
    p_run.add_argument("--summary", default=None,
                       help="write the rendered summary table here as well")
    p_run.add_argument("--profile", action="store_true",
                       help="run each scenario under cProfile and write a "
                            "top-20 cumulative dump (PROFILE_<scenario>.txt)")

    p_cmp = sub.add_parser("compare", help="gate current artifacts against baselines")
    p_cmp.add_argument("--baseline", required=True,
                       help="directory with committed BENCH_*.json baselines")
    p_cmp.add_argument("--current", required=True,
                       help="directory with freshly generated BENCH_*.json")
    p_cmp.add_argument("--only", default=None,
                       help="comma-separated scenario names (default: all baselines)")
    p_cmp.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                       help="fail when best-of-rounds (min) exceeds baseline "
                            "by this fraction")
    p_cmp.add_argument("--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
                       help="ignore benchmarks whose baseline best-of-rounds "
                            "(min) is below this")
    return parser


def _split_only(value: str | None) -> list[str] | None:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def _canonical_scenario(name: str) -> str:
    """Map a legacy scenario name to its current one (note on stderr)."""
    canonical = LEGACY_SCENARIO_ALIASES.get(name)
    if canonical is None:
        return name
    print(f"[gate] note: scenario name {name!r} is deprecated; "
          f"use {canonical!r}", file=sys.stderr)
    return canonical


def _artifact_path(directory: Path, name: str) -> Path:
    """A scenario's artifact in ``directory``, accepting legacy filenames.

    Prefers the canonical ``BENCH_<name>.json``; falls back (with a
    deprecation note) to a retired alias like ``BENCH_table7.json`` so
    archived baselines produced before a rename keep gating.
    """
    path = directory / f"{ARTIFACT_PREFIX}{name}.json"
    if path.exists():
        return path
    for legacy, canonical in LEGACY_SCENARIO_ALIASES.items():
        if canonical != name:
            continue
        legacy_path = directory / f"{ARTIFACT_PREFIX}{legacy}.json"
        if legacy_path.exists():
            print(f"[gate] note: {legacy_path.name} uses the deprecated "
                  f"pre-runner name for scenario {name!r}; rename it to "
                  f"{path.name} (docs/benchmarks.md)", file=sys.stderr)
            return legacy_path
    return path


def _cmd_list(args) -> int:
    for scenario in discover_scenarios(args.bench_dir):
        print(f"{scenario.name:32s} {scenario.path}")
    return 0


def _cmd_run(args) -> int:
    scenarios = discover_scenarios(args.bench_dir, only=_split_only(args.only))
    results_dir = Path(args.out) if args.out else Path(args.bench_dir) / "results"
    failures = 0
    artifacts: list[Path] = []
    for scenario in scenarios:
        print(f"[bench] running {scenario.name} "
              f"({'quick' if args.quick else 'full'})...", flush=True)
        result = run_scenario(
            scenario, quick=args.quick, results_dir=results_dir,
            profile=args.profile,
        )
        if result.ok:
            print(f"[bench]   -> {result.artifact}")
            artifacts.append(result.artifact)
        else:
            failures += 1
            print(f"[bench]   FAILED:\n{result.error}", file=sys.stderr)
    if artifacts:
        summary = render_summary(artifacts)
        print()
        print(summary)
        summary_path = (
            Path(args.summary) if args.summary else results_dir / "BENCH_summary.txt"
        )
        summary_path.write_text(summary + "\n", encoding="utf-8")
    return 1 if failures else 0


def _cmd_compare(args) -> int:
    baseline_dir = Path(args.baseline)
    current_dir = Path(args.current)
    only = _split_only(args.only)
    if only is not None:
        only = [_canonical_scenario(n) for n in only]
        # A typo'd scenario name must fail the gate loudly: without this
        # check it would fall through to per-name "no baseline" errors —
        # or, worse, silently compare stale artifacts left behind by a
        # retired scenario.  Validation needs the bench directory, so a
        # missing one is equally fatal here: skipping it would reopen
        # the silent-gating hole from the wrong working directory.
        bench_dir = Path(args.bench_dir)
        if not bench_dir.is_dir():
            raise SystemExit(
                f"bench dir {bench_dir} not found; cannot validate --only "
                "scenario names (pass --bench-dir or run from the repo root)"
            )
        discover_scenarios(bench_dir, only=only)
        names = only
    else:
        # Bare compare gates the intersection: baseline-only names (e.g.
        # retired scenarios) warn instead of failing.  Legacy artifact
        # filenames canonicalize first, so an archived BENCH_table7.json
        # baseline still gates today's table7_loading_time run.
        base_names = {
            LEGACY_SCENARIO_ALIASES.get(name, name)
            for name in (
                p.stem[len(ARTIFACT_PREFIX):]
                for p in baseline_dir.glob(f"{ARTIFACT_PREFIX}*.json")
            )
        }
        cur_names = {
            LEGACY_SCENARIO_ALIASES.get(name, name)
            for name in (
                p.stem[len(ARTIFACT_PREFIX):]
                for p in current_dir.glob(f"{ARTIFACT_PREFIX}*.json")
            )
        }
        for name in sorted(base_names - cur_names):
            print(f"[gate] note: baseline {name} has no current artifact; skipping",
                  file=sys.stderr)
        names = sorted(base_names & cur_names)
    if not names:
        print(f"no comparable {ARTIFACT_PREFIX}*.json artifacts "
              f"({baseline_dir} vs {current_dir})", file=sys.stderr)
        return 1
    regressions = 0
    for name in names:
        base_path = _artifact_path(baseline_dir, name)
        cur_path = _artifact_path(current_dir, name)
        if not base_path.exists():
            print(f"[gate] {name}: no baseline at {base_path}", file=sys.stderr)
            regressions += 1
            continue
        if not cur_path.exists():
            print(f"[gate] {name}: no current artifact at {cur_path}", file=sys.stderr)
            regressions += 1
            continue
        rows = compare_artifacts(
            load_artifact(cur_path), load_artifact(base_path),
            threshold=args.threshold, min_seconds=args.min_seconds,
        )
        print(_render_compare(rows, name))
        bad = [r for r in rows if r["status"] in ("regression", "invalid")]
        regressions += len(bad)
        for row in bad:
            if row["status"] == "invalid":
                print(f"[gate] INVALID {row['fullname']}: mean missing "
                      f"(baseline={row['baseline']!r}, current={row['current']!r})",
                      file=sys.stderr)
            else:
                print(f"[gate] REGRESSION {row['fullname']}: "
                      f"{row['baseline']:.4f}s -> {row['current']:.4f}s "
                      f"({row['ratio']:.2f}x)", file=sys.stderr)
    if regressions:
        print(f"[gate] {regressions} regression(s) beyond "
              f"{args.threshold:.0%} threshold", file=sys.stderr)
        return 1
    print("[gate] all benchmarks within threshold")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.bench.runner`` / ``llmtailor bench``)."""
    args = build_parser().parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run, "compare": _cmd_compare}
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # e.g. `... list | head`: not an error
        return 0


if __name__ == "__main__":
    sys.exit(main())
