"""Benchmark harness shared by the ``benchmarks/`` suite."""

from .experiments import (
    PAPER_SETTINGS,
    PipelineResult,
    paper_scale_overhead,
    run_use_case_pipeline,
)

__all__ = [
    "PAPER_SETTINGS",
    "PipelineResult",
    "paper_scale_overhead",
    "run_use_case_pipeline",
]
