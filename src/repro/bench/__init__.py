"""Benchmark harness shared by the ``benchmarks/`` suite, plus the
unified runner (``python -m repro.bench.runner``) that executes every
``bench_*.py`` scenario and emits normalized ``BENCH_*.json`` artifacts."""

from .experiments import (
    PAPER_SETTINGS,
    PipelineResult,
    paper_scale_overhead,
    run_use_case_pipeline,
)

_RUNNER_EXPORTS = (
    "ARTIFACT_SCHEMA",
    "Scenario",
    "ScenarioResult",
    "compare_artifacts",
    "discover_scenarios",
    "load_artifact",
    "normalize_raw",
    "render_summary",
    "run_scenario",
)


def __getattr__(name: str):
    # Lazy re-export: keeps `python -m repro.bench.runner` from importing
    # the runner twice (once via this package, once as __main__).
    if name in _RUNNER_EXPORTS:
        from . import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ARTIFACT_SCHEMA",
    "PAPER_SETTINGS",
    "PipelineResult",
    "Scenario",
    "ScenarioResult",
    "compare_artifacts",
    "discover_scenarios",
    "load_artifact",
    "normalize_raw",
    "paper_scale_overhead",
    "render_summary",
    "run_scenario",
    "run_use_case_pipeline",
]
