"""Shared experiment runner for the paper-reproduction benchmarks.

Each of the paper's use cases is one *pipeline*:

1. train a baseline run to completion with full checkpointing;
2. train an identically-seeded run with a selective strategy, crashing
   at the failure step;
3. auto-merge the partial trail with LLMTailor and resume to completion;
4. evaluate both final models on the five zero-shot benchmarks;
5. account checkpoint bytes (measured on disk) and simulated time.

The sim-scale models keep the published layer counts, so strategy
behaviour, merge arithmetic, and size *ratios* match the paper; absolute
GBs for the paper-scale rows come from the analytic planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.tailor import LLMTailor
from ..evalbench import evaluate_suite
from ..io.layout import list_checkpoint_steps, checkpoint_dir
from ..strategies import build_strategy, plan_strategy
from ..nn.config import get_config
from ..train import TrainConfig, TrainResult, Trainer
from ..util.logging import get_logger

__all__ = ["PipelineResult", "run_use_case_pipeline", "paper_scale_overhead", "PAPER_SETTINGS"]

log = get_logger("bench")

# Paper experimental settings (§5.1): Qwen SFT saves every 50 steps,
# Llama CPT every 100; one epoch each.
PAPER_SETTINGS = {
    "qwen-sft": dict(model="qwen2.5-7b", interval=50, total_steps=850,
                     tokens_per_step_per_gpu=8192.0),
    "llama-cpt": dict(model="llama3.1-8b", interval=100, total_steps=1600,
                      tokens_per_step_per_gpu=16384.0),
}


@dataclass
class PipelineResult:
    """Everything the table builders need from one use-case pipeline."""

    model: str
    task: str
    strategy: str
    failure_step: int
    baseline: TrainResult
    interrupted: TrainResult
    resumed: TrainResult
    merge_summary: dict[str, Any]
    eval_baseline: dict[str, float]
    eval_resumed: dict[str, float]
    baseline_ckpt_bytes: int
    strategy_ckpt_bytes: int
    baseline_ckpt_fraction: float
    strategy_ckpt_fraction: float
    extras: dict[str, Any] = field(default_factory=dict)


def _measure_run_bytes(root: Path) -> int:
    """Actual bytes on disk across every checkpoint of a run."""
    total = 0
    for step in list_checkpoint_steps(root):
        total += checkpoint_dir(root, step).nbytes()
    return total


def run_use_case_pipeline(
    *,
    model: str,
    task: str,
    strategy: str,
    out_dir: str | Path,
    total_steps: int = 120,
    interval: int = 20,
    failure_step: int = 110,
    strategy_kwargs: dict | None = None,
    world_size: int = 2,
    seq_len: int = 48,
    eval_items: int = 30,
    workers: int = 2,
    seed: int = 0,
) -> PipelineResult:
    """Run one full use-case pipeline (paper §5.2 / §5.3)."""
    out_dir = Path(out_dir)

    def config_for(sub: str, strat: str, fail: int | None) -> TrainConfig:
        return TrainConfig(
            model=model,
            task=task,
            total_steps=total_steps,
            checkpoint_strategy=strat,
            checkpoint_interval=interval,
            strategy_kwargs=strategy_kwargs or {} if strat == strategy else {},
            output_dir=str(out_dir / sub),
            failure_step=fail,
            world_size=world_size,
            micro_batch_size=2,
            grad_accum_steps=2 if task == "cpt" else 1,
            seq_len=seq_len,
            seed=seed,
            log_every=interval,
        )

    # 1. Baseline: uninterrupted, full checkpointing.
    log.info("pipeline[%s/%s/%s]: baseline run", model, task, strategy)
    baseline_trainer = Trainer(config_for("baseline", "full", None))
    baseline_result = baseline_trainer.train()

    # 2. Selective run, crashing at the failure step.
    log.info("pipeline: selective run with failure at %d", failure_step)
    selective_trainer = Trainer(config_for("selective", strategy, failure_step))
    interrupted = selective_trainer.train()
    assert interrupted.interrupted_at == failure_step

    # 3. Auto-merge and resume to completion.
    tailor = LLMTailor.from_checkpoints(
        selective_trainer.storage.root, failure_step=failure_step, workers=workers
    )
    base_step = max(
        s for s in list_checkpoint_steps(selective_trainer.storage.root) if s <= failure_step
    )
    merge_result = tailor.merge(
        output=Path(selective_trainer.storage.root) / f"merged-{base_step}"
    )
    selective_trainer.resume_from(merge_result.output)
    resumed = selective_trainer.train()

    # 4. Quality evaluation on the shared knowledge base.
    eval_baseline = evaluate_suite(
        baseline_trainer.model, baseline_trainer.tokenizer, baseline_trainer.kb,
        items_per_benchmark=eval_items,
    )
    eval_resumed = evaluate_suite(
        selective_trainer.model, selective_trainer.tokenizer, selective_trainer.kb,
        items_per_benchmark=eval_items,
    )

    # 5. Size / simulated-time accounting (merged dirs excluded by
    #    construction: only checkpoint-* dirs are counted).
    return PipelineResult(
        model=model,
        task=task,
        strategy=strategy,
        failure_step=failure_step,
        baseline=baseline_result,
        interrupted=interrupted,
        resumed=resumed,
        merge_summary={
            "checkpoints_included": merge_result.checkpoints_included,
            "optimizer_files_loaded": merge_result.optimizer_files_loaded,
            "optimizer_bytes_loaded": merge_result.optimizer_bytes_loaded,
            "total_seconds": merge_result.total_seconds,
        },
        eval_baseline=eval_baseline,
        eval_resumed=eval_resumed,
        baseline_ckpt_bytes=_measure_run_bytes(baseline_trainer.storage.root),
        strategy_ckpt_bytes=_measure_run_bytes(selective_trainer.storage.root),
        baseline_ckpt_fraction=baseline_result.checkpoint_time_fraction,
        strategy_ckpt_fraction=resumed.checkpoint_time_fraction,
    )


def paper_scale_overhead(setting: str, strategy: str, **strategy_kwargs) -> dict[str, Any]:
    """Analytic paper-scale size/time for Tables 3 and 6.

    ``setting`` is one of :data:`PAPER_SETTINGS`; returns total bytes and
    checkpoint-time fraction over the published run shape.
    """
    params = PAPER_SETTINGS[setting]
    config = get_config(params["model"])
    strat = build_strategy(strategy, config, params["interval"], **strategy_kwargs)
    plan = plan_strategy(
        config,
        strat,
        total_steps=params["total_steps"],
        world_size=8,
        tokens_per_step_per_gpu=params["tokens_per_step_per_gpu"],
    )
    return {
        "model": params["model"],
        "strategy": strategy,
        "events": plan.num_events,
        "total_bytes": plan.total_bytes,
        "total_gb": plan.total_bytes / 1e9,
        "ckpt_fraction": plan.checkpoint_time_fraction,
    }
