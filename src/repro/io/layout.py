"""On-disk checkpoint layout (HF transformers + DeepSpeed conventions).

::

    <run_root>/
      latest                                   # text: "checkpoint-<step>"
      checkpoint-<step>/
        config.json                            # model config
        model.tsr                              # consolidated bf16 weights (lazy)
        trainer_state.json                     # step, log history, LR
        training_args.json                     # run hyper-parameters
        scheduler.json                         # LR scheduler state
        rng_state.json                         # data-order RNG provenance
        tailor_manifest.json                   # slots saved in this ckpt
        global_step<step>/
          zero_pp_rank_<r>_mp_rank_00_optim_states.blob   # per-rank shard

Partial checkpoints simply omit slots from ``model.tsr`` and groups from
the shard blobs; ``tailor_manifest.json`` records exactly what is
present.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any

from ..util.errors import CheckpointError
from ..util.jsonio import read_json, write_json_atomic

__all__ = [
    "CheckpointPaths",
    "checkpoint_dir",
    "list_checkpoint_steps",
    "read_latest",
    "shard_filename",
    "write_latest",
    "MANIFEST_NAME",
    "WEIGHTS_NAME",
]


def shard_filename(rank: "int | str") -> str:
    """The on-disk name of one rank's optimizer shard (DeepSpeed layout).

    Accepts ``"*"`` for glob patterns.  The single owner of the format —
    the merge tool and the resharder build shard paths without a
    manifest, so this lives outside :class:`CheckpointPaths`.
    """
    return f"zero_pp_rank_{rank}_mp_rank_00_optim_states.blob"

WEIGHTS_NAME = "model.tsr"
CONFIG_NAME = "config.json"
TRAINER_STATE_NAME = "trainer_state.json"
TRAINING_ARGS_NAME = "training_args.json"
SCHEDULER_NAME = "scheduler.json"
RNG_STATE_NAME = "rng_state.json"
MANIFEST_NAME = "tailor_manifest.json"
LATEST_NAME = "latest"

_CKPT_RE = re.compile(r"^checkpoint-(\d+)$")


class CheckpointPaths:
    """Path bundle for one ``checkpoint-<step>`` directory."""

    # Config files copied verbatim when assembling a Frankenstein
    # checkpoint (paper §4.4).
    CONFIG_FILES = (
        CONFIG_NAME,
        TRAINER_STATE_NAME,
        TRAINING_ARGS_NAME,
        SCHEDULER_NAME,
        RNG_STATE_NAME,
    )

    def __init__(self, directory: "str | Path | CheckpointPaths") -> None:
        if isinstance(directory, CheckpointPaths):
            directory = directory.dir
        self.dir = Path(directory)

    @property
    def step(self) -> int:
        """Training step of this checkpoint.

        Normally parsed from the ``checkpoint-<step>`` directory name;
        merged outputs may use arbitrary names, in which case the step
        comes from the manifest.
        """
        m = _CKPT_RE.match(self.dir.name)
        if m:
            return int(m.group(1))
        if self.manifest.exists():
            return int(self.read_manifest()["step"])
        raise CheckpointError(
            f"{self.dir} is neither a checkpoint-<step> directory nor has a manifest"
        )

    @property
    def weights(self) -> Path:
        """Path of the consolidated weight tensor file (``model.tsr``)."""
        return self.dir / WEIGHTS_NAME

    @property
    def config(self) -> Path:
        """Path of the model config JSON (``config.json``)."""
        return self.dir / CONFIG_NAME

    @property
    def trainer_state(self) -> Path:
        """Path of the trainer bookkeeping JSON (``trainer_state.json``)."""
        return self.dir / TRAINER_STATE_NAME

    @property
    def training_args(self) -> Path:
        """Path of the run hyper-parameter JSON (``training_args.json``)."""
        return self.dir / TRAINING_ARGS_NAME

    @property
    def scheduler(self) -> Path:
        """Path of the LR-scheduler state JSON (``scheduler.json``)."""
        return self.dir / SCHEDULER_NAME

    @property
    def rng_state(self) -> Path:
        """Path of the RNG provenance JSON (``rng_state.json``)."""
        return self.dir / RNG_STATE_NAME

    @property
    def manifest(self) -> Path:
        """Path of the slot-coverage manifest (``tailor_manifest.json``)."""
        return self.dir / MANIFEST_NAME

    @property
    def optim_dir(self) -> Path:
        """The per-rank optimizer shard directory (``global_step<step>/``)."""
        return self.dir / f"global_step{self.step}"

    def shard(self, rank: int) -> Path:
        """Path of one rank's optimizer shard blob."""
        return self.optim_dir / shard_filename(rank)

    def shard_paths(self, world_size: int) -> list[Path]:
        """Shard paths for every rank of a ``world_size`` checkpoint."""
        return [self.shard(r) for r in range(world_size)]

    def exists(self) -> bool:
        """Whether the checkpoint directory exists on disk."""
        return self.dir.is_dir()

    def read_manifest(self) -> dict[str, Any]:
        """Parse and return the manifest JSON."""
        return read_json(self.manifest)

    def write_manifest(self, manifest: dict[str, Any]) -> None:
        """Atomically write the manifest JSON."""
        write_json_atomic(self.manifest, manifest)

    def nbytes(self) -> int:
        """Total bytes on disk in this checkpoint."""
        return sum(p.stat().st_size for p in self.dir.rglob("*") if p.is_file())

    def __repr__(self) -> str:
        return f"CheckpointPaths({self.dir})"


def checkpoint_dir(root: str | Path, step: int) -> CheckpointPaths:
    """The :class:`CheckpointPaths` bundle for ``<root>/checkpoint-<step>``."""
    return CheckpointPaths(Path(root) / f"checkpoint-{step}")


def list_checkpoint_steps(root: str | Path) -> list[int]:
    """Steps of all checkpoint directories under ``root``, ascending."""
    root = Path(root)
    if not root.is_dir():
        return []
    steps = []
    for child in root.iterdir():
        m = _CKPT_RE.match(child.name)
        if m and child.is_dir():
            steps.append(int(m.group(1)))
    return sorted(steps)


def read_latest(root: str | Path) -> CheckpointPaths | None:
    """Resolve the ``latest`` pointer, if present and valid."""
    latest = Path(root) / LATEST_NAME
    if not latest.exists():
        return None
    name = latest.read_text(encoding="utf-8").strip()
    candidate = Path(root) / name
    if not candidate.is_dir():
        raise CheckpointError(f"latest points at missing checkpoint {name!r}")
    return CheckpointPaths(candidate)


def write_latest(root: str | Path, step: int) -> None:
    """Point the run's ``latest`` file at ``checkpoint-<step>``."""
    (Path(root) / LATEST_NAME).write_text(f"checkpoint-{step}\n", encoding="utf-8")
