"""Checkpoint writer: full or partial (layer-selective) snapshots.

A *full* checkpoint stores every slot; a *partial* one stores only the
slots a :class:`repro.strategies` policy selected for this step.  Both
use the identical layout; ``tailor_manifest.json`` records coverage.

Write costs are charged to the storage's simulated clock:
* consolidated weight file — one serial writer (rank 0), as in §2.3;
* optimizer shards — one file per rank, written in parallel.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..dist.zero import ZeroStage3Engine
from ..nn.config import ModelConfig
from ..nn.module import Module
from ..nn.slots import model_slots, slot_of_param
from ..util.errors import CheckpointError
from ..util.jsonio import write_json_atomic
from .blobfile import write_blob
from .layout import CheckpointPaths, checkpoint_dir, write_latest
from .storage import Storage
from .tensorfile import write_tensorfile

__all__ = ["save_checkpoint"]


def save_checkpoint(
    storage: Storage,
    *,
    step: int,
    model: Module,
    config: ModelConfig,
    engine: ZeroStage3Engine,
    trainer_state: dict[str, Any],
    training_args: dict[str, Any] | None = None,
    scheduler_state: dict[str, Any] | None = None,
    rng_state: dict[str, Any] | None = None,
    slots: Iterable[str] | None = None,
    strategy: str = "full",
    update_latest: bool = True,
) -> CheckpointPaths:
    """Write ``checkpoint-<step>`` under the storage root.

    ``slots=None`` saves everything; otherwise only the named slots'
    weights and optimizer groups are written.  Returns the path bundle.
    """
    all_slots = model_slots(config)
    if slots is None:
        saved_slots = list(all_slots)
    else:
        saved_slots = [s for s in all_slots if s in set(slots)]
        unknown = set(slots) - set(all_slots)
        if unknown:
            raise CheckpointError(f"unknown slots for {config.name}: {sorted(unknown)}")
        if not saved_slots:
            raise CheckpointError("refusing to write a checkpoint with zero slots")

    paths = checkpoint_dir(storage.root, step)
    paths.dir.mkdir(parents=True, exist_ok=True)
    slot_set = set(saved_slots)

    # 1. Consolidated model weights (bf16, lazy container), rank-0 serial.
    tensors = {
        name: value
        for name, value in model.state_dict().items()
        if slot_of_param(name) in slot_set
    }
    weight_bytes = write_tensorfile(
        paths.weights,
        tensors,
        dtype=config.storage_dtype,
        metadata={
            "model": config.name,
            "step": step,
            "slots": saved_slots,
            "strategy": strategy,
        },
    )
    storage.charge_write(weight_bytes, files=1, parallel=1, category="checkpoint_write.weights")

    # 2. Per-rank optimizer shard blobs, written in parallel across ranks.
    paths.optim_dir.mkdir(parents=True, exist_ok=True)
    shard_bytes = 0
    for rank in range(engine.world_size):
        shard = engine.rank_state_dict(rank, slots=slot_set)
        shard["global_step"] = step
        shard_bytes += write_blob(paths.shard(rank), shard)
    # Rewriting a step at a smaller world size (elastic shrink replaying
    # a checkpointed step) must not leave the old higher-rank shards
    # behind the new manifest — stale files with a different geometry.
    from .layout import shard_filename

    valid_names = {shard_filename(r) for r in range(engine.world_size)}
    for stale in paths.optim_dir.glob(shard_filename("*")):
        if stale.name not in valid_names:
            stale.unlink()
    # Likewise, fault-injection replicas of overwritten shards are stale:
    # restoring one over a freshly rewritten checkpoint would resurrect
    # pre-rewrite state.
    for stale in paths.optim_dir.glob("*.replica"):
        stale.unlink()
    storage.charge_write(
        shard_bytes,
        files=engine.world_size,
        parallel=engine.world_size,
        category="checkpoint_write.optimizer",
    )

    # 3. Config / metadata files (paper §4.4).
    write_json_atomic(paths.config, config.to_dict())
    write_json_atomic(paths.trainer_state, trainer_state)
    write_json_atomic(paths.training_args, training_args or {})
    write_json_atomic(paths.scheduler, scheduler_state or {})
    write_json_atomic(paths.rng_state, rng_state or {})
    paths.write_manifest(
        {
            "format_version": 1,
            "step": step,
            "model_config": config.name,
            "strategy": strategy,
            "world_size": engine.world_size,
            "slots": saved_slots,
            "all_slots": all_slots,
            "complete": slot_set == set(all_slots),
        }
    )
    config_bytes = sum(
        (paths.dir / name).stat().st_size for name in CheckpointPaths.CONFIG_FILES
    ) + paths.manifest.stat().st_size
    storage.charge_write(
        config_bytes,
        files=len(CheckpointPaths.CONFIG_FILES) + 1,
        parallel=1,
        category="checkpoint_write.config",
    )

    if update_latest:
        write_latest(storage.root, step)
    return paths
