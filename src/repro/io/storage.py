"""Storage backends: real local filesystem + a Lustre-like cost model.

Files are always materialised on the local filesystem (so merging and
resuming are real); the *cost model* additionally charges a simulated
clock for each read/write, reproducing the time behaviour of the paper's
testbed (Lustre over InfiniBand, 8 concurrent GPU writers).

Checkpoint-time proportions in Tables 3/6 are read off the simulated
clock, so they are deterministic; Table 7's merge timings use real wall
clock on real files (the data volumes at simulation scale are honest).

The module also hosts the multi-tenant service's storage layer
(``llmtailor serve``):

* :class:`BlobStore` — a content-addressed, reference-counted object
  store keyed by per-group ``(crc32, numel)``.  Identical shard groups
  across different tenants' checkpoints hash to the same key and dedup
  to one stored copy; ownership is tracked per ``(tenant, checkpoint)``
  so no tenant's retention pass can delete a group another tenant still
  references (see :func:`repro.io.retention.prune_checkpoints`).
* :class:`GroupCache` — a thread-safe, byte-bounded LRU of *decoded*
  shard groups plus a per-file metadata memo, shared across requests by
  the serve worker pool and optionally backed by a :class:`BlobStore`.
  The streaming merge engine consults it through
  :func:`repro.core.optimizer_merge.set_group_cache`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from ..util.jsonio import read_json, write_json_atomic
from ..util.timer import SimClock

__all__ = [
    "BlobStore",
    "GroupCache",
    "IOStats",
    "LUSTRE_DEFAULT",
    "Storage",
    "StorageCostModel",
    "group_key",
]


@dataclass
class IOStats:
    """Byte/file counters, split by category prefix."""

    bytes_written: float = 0.0
    bytes_read: float = 0.0
    files_written: int = 0
    files_read: int = 0
    by_category: dict[str, float] = field(default_factory=dict)

    def record_write(self, nbytes: float, category: str) -> None:
        """Count one write of ``nbytes`` under a category."""
        self.bytes_written += nbytes
        self.files_written += 1
        self.by_category[category] = self.by_category.get(category, 0.0) + nbytes

    def record_read(self, nbytes: float, category: str) -> None:
        """Count one read of ``nbytes`` under a category."""
        self.bytes_read += nbytes
        self.files_read += 1
        self.by_category[category] = self.by_category.get(category, 0.0) + nbytes

    def category_bytes(self, prefix: str) -> float:
        """Total bytes recorded under categories starting with ``prefix``."""
        return sum(v for k, v in self.by_category.items() if k.startswith(prefix))

    def reset(self) -> None:
        """Zero all counters and categories."""
        self.bytes_written = self.bytes_read = 0.0
        self.files_written = self.files_read = 0
        self.by_category.clear()


@dataclass(frozen=True)
class StorageCostModel:
    """Bandwidth/latency parameters of the simulated parallel filesystem.

    Defaults approximate a Lustre filesystem over InfiniBand as seen from
    one node: a few GB/s of aggregate write bandwidth shared by the
    node's writers, per-file metadata latency dominated by the MDS.
    """

    write_bandwidth: float = 3.0e9  # bytes/s aggregate
    read_bandwidth: float = 6.0e9  # bytes/s aggregate
    file_latency: float = 0.010  # seconds per file (open/close/MDS)
    decompress_bandwidth: float = 1.5e9  # bytes/s per core (zlib-ish)
    concurrent_writers: int = 8  # ranks writing shards in parallel

    def write_time(self, nbytes: float, files: int = 1, parallel: int | None = None) -> float:
        """Seconds to write ``nbytes`` spread over ``files`` files.

        ``parallel`` caps how many of the files are written concurrently
        (per-rank shard writes overlap; the consolidated weight file does
        not).
        """
        parallel = min(parallel or 1, self.concurrent_writers)
        bw_time = nbytes / self.write_bandwidth
        lat_time = self.file_latency * files / max(1, parallel)
        return bw_time + lat_time

    def read_time(
        self,
        nbytes: float,
        files: int = 1,
        parallel: int | None = None,
        decompress: bool = False,
    ) -> float:
        """Seconds to read ``nbytes`` over ``files`` files (latency + bandwidth + optional decompress)."""
        parallel = max(1, min(parallel or 1, self.concurrent_writers))
        bw_time = nbytes / self.read_bandwidth
        lat_time = self.file_latency * files / parallel
        extra = nbytes / (self.decompress_bandwidth * parallel) if decompress else 0.0
        return bw_time + lat_time + extra


LUSTRE_DEFAULT = StorageCostModel()


class Storage:
    """A rooted directory plus simulated-cost accounting.

    All real file creation goes through the tensorfile/blobfile modules;
    this class tracks what was moved and charges the simulated clock.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        cost_model: StorageCostModel | None = None,
        clock: SimClock | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.cost_model = cost_model or LUSTRE_DEFAULT
        self.clock = clock or SimClock()
        self.stats = IOStats()

    def path(self, *parts: str) -> Path:
        """A path under the storage root (``root / parts...``)."""
        return self.root.joinpath(*parts)

    # -- accounting hooks -----------------------------------------------------

    def charge_write(
        self,
        nbytes: float,
        *,
        files: int = 1,
        parallel: int | None = None,
        category: str = "checkpoint_write",
    ) -> float:
        """Record a write and advance the simulated clock; returns dt."""
        dt = self.cost_model.write_time(nbytes, files=files, parallel=parallel)
        self.clock.advance(dt, category)
        self.stats.record_write(nbytes, category)
        return dt

    def charge_read(
        self,
        nbytes: float,
        *,
        files: int = 1,
        parallel: int | None = None,
        decompress: bool = False,
        category: str = "checkpoint_read",
    ) -> float:
        """Record a read and advance the simulated clock; returns dt."""
        dt = self.cost_model.read_time(
            nbytes, files=files, parallel=parallel, decompress=decompress
        )
        self.clock.advance(dt, category)
        self.stats.record_read(nbytes, category)
        return dt

    def charge_compute(self, seconds: float, category: str = "compute") -> float:
        """Advance the simulated clock by ``seconds`` under a category."""
        self.clock.advance(seconds, category)
        return seconds

    # -- disk usage -------------------------------------------------------------

    def tree_nbytes(self, *parts: str) -> int:
        """Actual bytes on disk under a subdirectory."""
        base = self.path(*parts)
        if not base.exists():
            return 0
        if base.is_file():
            return base.stat().st_size
        return sum(p.stat().st_size for p in base.rglob("*") if p.is_file())


# ---------------------------------------------------------------------------
# Content-addressed blob store (the serve subsystem's dedup layer)
# ---------------------------------------------------------------------------

def group_key(crc32: int, numel: int) -> str:
    """Content-address of one rank-local shard group: CRC + length.

    The CRC is the per-group ``crc32`` the ZeRO engine writes into every
    shard header (over the concatenated fp32 master, ``exp_avg`` and
    ``exp_avg_sq`` slices); ``numel`` is the rank-local slice length.
    Two groups with the same key are treated as identical content — the
    dedup contract of the serve blob store.
    """
    return f"{int(crc32) & 0xFFFFFFFF:08x}-{int(numel)}"


class BlobStore:
    """Content-addressed, reference-counted store for shard groups.

    Objects live under ``<root>/objects/<key>.blob`` (the standard TLV
    blob container, so they inherit its whole-payload CRC); references
    live in ``<root>/refs.json`` mapping key -> sorted owner tokens.
    An *owner* is an opaque string — the serve daemon uses
    :meth:`owner_token` (``tenant:resolved-checkpoint-dir``) so each
    tenant's claim on each source checkpoint is tracked independently.

    Dedup invariant: ``put`` is a no-op when the key already exists, so
    N tenants whose checkpoints share a group store one copy.  Deletion
    only ever happens in :meth:`sweep`, and only for keys with zero
    owners — a retention pass that releases one tenant's references can
    never delete content another tenant still claims.

    All mutating operations are serialized by an internal lock; the
    refs file is rewritten atomically, so a crash never leaves a
    half-written ownership table.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self._refs_path = self.root / "refs.json"
        self._lock = threading.Lock()
        self._refs: dict[str, list[str]] = {}
        if self._refs_path.exists():
            self._refs = {
                k: list(v) for k, v in read_json(self._refs_path).items()
            }

    @staticmethod
    def owner_token(tenant: str, checkpoint_dir: str | Path) -> str:
        """The canonical owner string for a tenant's claim on a checkpoint."""
        return f"{tenant}:{Path(checkpoint_dir).resolve()}"

    def _object_path(self, key: str) -> Path:
        return self.objects_dir / f"{key}.blob"

    def _save_refs(self) -> None:
        write_json_atomic(self._refs_path, self._refs)

    # -- objects --------------------------------------------------------------

    def contains(self, key: str) -> bool:
        """Whether a payload object for ``key`` is stored."""
        return self._object_path(key).exists()

    def put(self, key: str, arrays: Mapping[str, np.ndarray]) -> bool:
        """Store one group's arrays under ``key``; returns True if written.

        A key that already has a payload is left untouched (content
        addressing makes rewrites pointless) — that no-op *is* the
        dedup: the second tenant's identical group costs zero bytes.
        """
        from .blobfile import write_blob  # local: storage stays import-light

        path = self._object_path(key)
        with self._lock:
            if path.exists():
                return False
            write_blob(path, {k: np.ascontiguousarray(v) for k, v in arrays.items()})
            return True

    def get(self, key: str) -> dict[str, np.ndarray] | None:
        """Load one group's arrays, or ``None`` if the key has no payload.

        A concurrent :meth:`sweep` (e.g. another tenant's retention
        pass) may unlink the object between lookup and read; that race
        degrades to a miss rather than failing the caller's job.
        """
        from .blobfile import read_blob
        from ..util.errors import CheckpointFormatError

        path = self._object_path(key)
        if not path.exists():
            return None
        try:
            return read_blob(path)
        except (OSError, CheckpointFormatError):
            return None

    # -- ownership ------------------------------------------------------------

    def add_refs(self, keys: Iterable[str], owner: str) -> int:
        """Register ``owner``'s claim on every key (idempotent).

        Returns the number of claims that were actually new.
        """
        with self._lock:
            added = 0
            for key in keys:
                owners = self._refs.setdefault(key, [])
                if owner not in owners:
                    owners.append(owner)
                    owners.sort()
                    added += 1
            if added:
                self._save_refs()
            return added

    def owners(self, key: str) -> list[str]:
        """All owner tokens currently claiming ``key``."""
        with self._lock:
            return list(self._refs.get(key, []))

    def release(self, owner: str) -> list[str]:
        """Drop every claim held by ``owner``; returns keys that lost a ref.

        Keys are never deleted here — call :meth:`sweep` afterwards to
        reclaim payloads whose owner set became empty.
        """
        with self._lock:
            touched: list[str] = []
            for key, owners in list(self._refs.items()):
                if owner in owners:
                    owners.remove(owner)
                    touched.append(key)
                if not owners:
                    del self._refs[key]
            if touched:
                self._save_refs()
            return touched

    def sweep(self) -> list[str]:
        """Delete payload objects with zero owners; returns removed keys."""
        removed: list[str] = []
        with self._lock:
            for path in self.objects_dir.glob("*.blob"):
                key = path.stem
                if not self._refs.get(key):
                    path.unlink()
                    removed.append(key)
        return sorted(removed)

    def stats(self) -> dict[str, Any]:
        """Dedup accounting: object/ref counts and stored bytes."""
        with self._lock:
            objects = list(self.objects_dir.glob("*.blob"))
            total_refs = sum(len(v) for v in self._refs.values())
            return {
                "objects": len(objects),
                "object_bytes": sum(p.stat().st_size for p in objects),
                "referenced_keys": len(self._refs),
                "total_refs": total_refs,
                # refs / keys: 1.0 means no cross-owner sharing at all.
                "dedup_factor": (
                    total_refs / len(self._refs) if self._refs else 0.0
                ),
            }


# ---------------------------------------------------------------------------
# Cross-request group cache (shared by the serve worker pool)
# ---------------------------------------------------------------------------

@dataclass
class GroupCacheStats:
    """Hit/miss counters for one :class:`GroupCache`."""

    hits: int = 0
    misses: int = 0
    store_hits: int = 0
    evictions: int = 0
    meta_passes: int = 0
    meta_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of group lookups served without decoding a shard."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        """Flat dict form (for the serve ``stats`` op and bench tables)."""
        out = dict(self.__dict__)
        out["hit_rate"] = self.hit_rate
        return out


class GroupCache:
    """Byte-bounded LRU of decoded shard groups, keyed by content.

    Two layers, both thread-safe:

    * the *group* layer maps :func:`group_key` -> decoded arrays
      (``fp32``/``exp_avg``/``exp_avg_sq``); a miss optionally falls
      through to a backing :class:`BlobStore` before giving up, so a
      group any tenant ever merged can be served without touching the
      owning tenant's checkpoint again;
    * the *metadata* layer memoizes per-file header passes keyed by
      ``(path, size, mtime_ns)`` — a changed or rewritten shard file
      never serves stale headers.

    Bitwise safety: cached entries are only ever *content* (arrays whose
    per-group CRC the engine verified on first decode).  Headers,
    hyperparameters and step counters always come from the actual source
    file's metadata pass, so two content-identical groups with different
    schedules can never cross-contaminate.
    """

    def __init__(
        self, max_bytes: int = 256 << 20, *, store: BlobStore | None = None
    ) -> None:
        self.max_bytes = int(max_bytes)
        self.store = store
        self.stats = GroupCacheStats()
        self._lock = threading.Lock()
        self._groups: OrderedDict[str, dict[str, np.ndarray]] = OrderedDict()
        self._meta: dict[tuple, dict] = {}
        self._nbytes = 0

    @staticmethod
    def _entry_nbytes(arrays: Mapping[str, np.ndarray]) -> int:
        return sum(int(a.nbytes) for a in arrays.values())

    def get(self, key: str) -> dict[str, np.ndarray] | None:
        """Look one group up by content key (LRU touch on hit)."""
        with self._lock:
            entry = self._groups.get(key)
            if entry is not None:
                self._groups.move_to_end(key)
                self.stats.hits += 1
                return entry
        if self.store is not None:
            from_store = self.store.get(key)
            if from_store is not None:
                with self._lock:
                    self.stats.hits += 1
                    self.stats.store_hits += 1
                self._insert(key, from_store)
                return from_store
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, key: str, arrays: Mapping[str, np.ndarray]) -> None:
        """Insert one decoded group (write-through to the blob store)."""
        self._insert(key, dict(arrays))
        if self.store is not None:
            self.store.put(key, arrays)

    def _insert(self, key: str, arrays: dict[str, np.ndarray]) -> None:
        with self._lock:
            if key in self._groups:
                self._groups.move_to_end(key)
                return
            self._groups[key] = arrays
            self._nbytes += self._entry_nbytes(arrays)
            while self._nbytes > self.max_bytes and len(self._groups) > 1:
                _, evicted = self._groups.popitem(last=False)
                self._nbytes -= self._entry_nbytes(evicted)
                self.stats.evictions += 1

    def metadata(
        self, path: str | Path, loader: Callable[[Path], dict]
    ) -> tuple[dict, bool]:
        """Per-file metadata memo; returns ``(meta, freshly_loaded)``.

        The memo key includes size and mtime, so rewriting a shard file
        in place invalidates its entry.
        """
        path = Path(path)
        st = path.stat()
        key = (str(path), st.st_size, st.st_mtime_ns)
        with self._lock:
            if key in self._meta:
                self.stats.meta_hits += 1
                return self._meta[key], False
        meta = loader(path)
        with self._lock:
            self._meta[key] = meta
            self.stats.meta_passes += 1
        return meta, True

    @property
    def nbytes(self) -> int:
        """Bytes of decoded arrays currently resident."""
        with self._lock:
            return self._nbytes

    def clear(self) -> None:
        """Drop every cached group and metadata entry (counters survive)."""
        with self._lock:
            self._groups.clear()
            self._meta.clear()
            self._nbytes = 0
