"""Storage backends: real local filesystem + a Lustre-like cost model.

Files are always materialised on the local filesystem (so merging and
resuming are real); the *cost model* additionally charges a simulated
clock for each read/write, reproducing the time behaviour of the paper's
testbed (Lustre over InfiniBand, 8 concurrent GPU writers).

Checkpoint-time proportions in Tables 3/6 are read off the simulated
clock, so they are deterministic; Table 7's merge timings use real wall
clock on real files (the data volumes at simulation scale are honest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..util.timer import SimClock

__all__ = ["IOStats", "StorageCostModel", "LUSTRE_DEFAULT", "Storage"]


@dataclass
class IOStats:
    """Byte/file counters, split by category prefix."""

    bytes_written: float = 0.0
    bytes_read: float = 0.0
    files_written: int = 0
    files_read: int = 0
    by_category: dict[str, float] = field(default_factory=dict)

    def record_write(self, nbytes: float, category: str) -> None:
        """Count one write of ``nbytes`` under a category."""
        self.bytes_written += nbytes
        self.files_written += 1
        self.by_category[category] = self.by_category.get(category, 0.0) + nbytes

    def record_read(self, nbytes: float, category: str) -> None:
        """Count one read of ``nbytes`` under a category."""
        self.bytes_read += nbytes
        self.files_read += 1
        self.by_category[category] = self.by_category.get(category, 0.0) + nbytes

    def category_bytes(self, prefix: str) -> float:
        """Total bytes recorded under categories starting with ``prefix``."""
        return sum(v for k, v in self.by_category.items() if k.startswith(prefix))

    def reset(self) -> None:
        """Zero all counters and categories."""
        self.bytes_written = self.bytes_read = 0.0
        self.files_written = self.files_read = 0
        self.by_category.clear()


@dataclass(frozen=True)
class StorageCostModel:
    """Bandwidth/latency parameters of the simulated parallel filesystem.

    Defaults approximate a Lustre filesystem over InfiniBand as seen from
    one node: a few GB/s of aggregate write bandwidth shared by the
    node's writers, per-file metadata latency dominated by the MDS.
    """

    write_bandwidth: float = 3.0e9  # bytes/s aggregate
    read_bandwidth: float = 6.0e9  # bytes/s aggregate
    file_latency: float = 0.010  # seconds per file (open/close/MDS)
    decompress_bandwidth: float = 1.5e9  # bytes/s per core (zlib-ish)
    concurrent_writers: int = 8  # ranks writing shards in parallel

    def write_time(self, nbytes: float, files: int = 1, parallel: int | None = None) -> float:
        """Seconds to write ``nbytes`` spread over ``files`` files.

        ``parallel`` caps how many of the files are written concurrently
        (per-rank shard writes overlap; the consolidated weight file does
        not).
        """
        parallel = min(parallel or 1, self.concurrent_writers)
        bw_time = nbytes / self.write_bandwidth
        lat_time = self.file_latency * files / max(1, parallel)
        return bw_time + lat_time

    def read_time(
        self,
        nbytes: float,
        files: int = 1,
        parallel: int | None = None,
        decompress: bool = False,
    ) -> float:
        """Seconds to read ``nbytes`` over ``files`` files (latency + bandwidth + optional decompress)."""
        parallel = max(1, min(parallel or 1, self.concurrent_writers))
        bw_time = nbytes / self.read_bandwidth
        lat_time = self.file_latency * files / parallel
        extra = nbytes / (self.decompress_bandwidth * parallel) if decompress else 0.0
        return bw_time + lat_time + extra


LUSTRE_DEFAULT = StorageCostModel()


class Storage:
    """A rooted directory plus simulated-cost accounting.

    All real file creation goes through the tensorfile/blobfile modules;
    this class tracks what was moved and charges the simulated clock.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        cost_model: StorageCostModel | None = None,
        clock: SimClock | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.cost_model = cost_model or LUSTRE_DEFAULT
        self.clock = clock or SimClock()
        self.stats = IOStats()

    def path(self, *parts: str) -> Path:
        """A path under the storage root (``root / parts...``)."""
        return self.root.joinpath(*parts)

    # -- accounting hooks -----------------------------------------------------

    def charge_write(
        self,
        nbytes: float,
        *,
        files: int = 1,
        parallel: int | None = None,
        category: str = "checkpoint_write",
    ) -> float:
        """Record a write and advance the simulated clock; returns dt."""
        dt = self.cost_model.write_time(nbytes, files=files, parallel=parallel)
        self.clock.advance(dt, category)
        self.stats.record_write(nbytes, category)
        return dt

    def charge_read(
        self,
        nbytes: float,
        *,
        files: int = 1,
        parallel: int | None = None,
        decompress: bool = False,
        category: str = "checkpoint_read",
    ) -> float:
        """Record a read and advance the simulated clock; returns dt."""
        dt = self.cost_model.read_time(
            nbytes, files=files, parallel=parallel, decompress=decompress
        )
        self.clock.advance(dt, category)
        self.stats.record_read(nbytes, category)
        return dt

    def charge_compute(self, seconds: float, category: str = "compute") -> float:
        """Advance the simulated clock by ``seconds`` under a category."""
        self.clock.advance(seconds, category)
        return seconds

    # -- disk usage -------------------------------------------------------------

    def tree_nbytes(self, *parts: str) -> int:
        """Actual bytes on disk under a subdirectory."""
        base = self.path(*parts)
        if not base.exists():
            return 0
        if base.is_file():
            return base.stat().st_size
        return sum(p.stat().st_size for p in base.rglob("*") if p.is_file())
