"""A safetensors-like container with lazy per-tensor reads.

Consolidated model-weight files are stored in this format so individual
layers can be copied between checkpoints *without loading the whole
file* — the property the paper exploits for weight merging (and which
optimizer blobs deliberately lack, see :mod:`repro.io.blobfile`).

Layout::

    8 bytes   magic  b"REPROTSR"
    4 bytes   format version (little-endian u32)
    8 bytes   header length H (little-endian u64)
    H bytes   JSON header (utf-8)
    ...       raw tensor buffers, 64-byte aligned

Header schema::

    {"tensors": {name: {"dtype": "bf16", "shape": [...],
                        "offset": int, "nbytes": int, "crc32": int}},
     "metadata": {...}}

Offsets are relative to the start of the data section.  Every tensor
carries a CRC-32 so corruption is detected at read time.
"""

from __future__ import annotations

import io
import json
import shutil
import struct
import zlib
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from ..numerics.dtypes import DType, pack_bits, unpack_bits
from ..util.errors import CheckpointFormatError

__all__ = ["write_tensorfile", "TensorFile", "TensorFileWriter", "TENSORFILE_VERSION"]

MAGIC = b"REPROTSR"
TENSORFILE_VERSION = 1
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class TensorFileWriter:
    """Incremental tensor-file writer: one tensor in memory at a time.

    Small files accumulate their data section in memory and are written
    in a single pass; once the section crosses ``SPILL_THRESHOLD`` it
    spills to a side file, and ``close()`` assembles the final container
    (header first, then a chunked copy of the spill) — so peak memory
    stays bounded for huge files while ordinary checkpoint saves keep
    their one-sequential-write cost.  Either way the target is replaced
    atomically, and feeding the same tensors in the same order produces
    a byte-identical file to :func:`write_tensorfile`, which is itself
    implemented on top of this class — the streaming merge paths rely on
    that equivalence.
    """

    SPILL_THRESHOLD = 64 << 20  # data sections beyond this go to disk

    def __init__(self, path: str | Path, *, metadata: dict[str, Any] | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.metadata = dict(metadata or {})
        self._entries: dict[str, dict[str, Any]] = {}
        self._data_tmp = self.path.with_suffix(self.path.suffix + ".data.tmp")
        self._buffer: io.BytesIO | None = io.BytesIO()
        self._data_fh = None  # opened lazily on spill
        self._offset = 0
        self._closed = False

    def _sink(self):
        if self._buffer is not None and self._offset > self.SPILL_THRESHOLD:
            self._data_fh = self._data_tmp.open("wb")
            self._data_fh.write(self._buffer.getvalue())
            self._buffer = None
        return self._buffer if self._buffer is not None else self._data_fh

    # -- appends -----------------------------------------------------------

    def _append(self, name: str, raw: bytes, dtype_value: str, shape: Sequence[int]) -> None:
        if self._closed:
            raise CheckpointFormatError(f"{self.path}: writer already closed")
        if name in self._entries:
            raise CheckpointFormatError(f"{self.path}: duplicate tensor {name!r}")
        sink = self._sink()
        aligned_offset = _aligned(self._offset)
        if aligned_offset != self._offset:
            sink.write(b"\x00" * (aligned_offset - self._offset))
            self._offset = aligned_offset
        self._entries[name] = {
            "dtype": dtype_value,
            "shape": list(shape),
            "offset": self._offset,
            "nbytes": len(raw),
            "crc32": zlib.crc32(raw),
        }
        sink.write(raw)
        self._offset += len(raw)

    def add(self, name: str, array: np.ndarray, dtype: DType) -> None:
        """Quantize a float32 tensor to ``dtype`` and append it."""
        packed = pack_bits(np.asarray(array, dtype=np.float32), dtype)
        self._append(name, packed.tobytes(), dtype.value, np.asarray(array).shape)

    def add_raw(self, name: str, raw: bytes, entry: Mapping[str, Any]) -> None:
        """Append already-packed bytes (a lossless copy between files).

        ``entry`` is the source header entry (as returned by
        :meth:`TensorFile.read_raw`); dtype and shape are taken from it.
        """
        self._append(name, raw, str(entry["dtype"]), list(entry["shape"]))

    # -- finalization ------------------------------------------------------

    def close(self) -> int:
        """Assemble the final file; returns its total size in bytes."""
        if self._closed:
            return self.path.stat().st_size
        self._closed = True
        if self._data_fh is not None:
            self._data_fh.flush()
            self._data_fh.close()
        header = json.dumps(
            {"tensors": self._entries, "metadata": self.metadata}, sort_keys=True
        ).encode("utf-8")
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            with tmp.open("wb") as fh:
                fh.write(MAGIC)
                fh.write(struct.pack("<I", TENSORFILE_VERSION))
                fh.write(struct.pack("<Q", len(header)))
                fh.write(header)
                if self._buffer is not None:  # never spilled: single pass
                    fh.write(self._buffer.getvalue())
                else:
                    with self._data_tmp.open("rb") as data:
                        shutil.copyfileobj(data, fh, 1 << 20)
                fh.flush()
            tmp.replace(self.path)
        finally:
            if self._data_fh is not None:
                self._data_tmp.unlink(missing_ok=True)
        return self.path.stat().st_size

    def abort(self) -> None:
        """Discard the partial write without producing a file."""
        if not self._closed:
            self._closed = True
            if self._data_fh is not None:
                self._data_fh.close()
                self._data_tmp.unlink(missing_ok=True)
            self._buffer = None

    def __enter__(self) -> "TensorFileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_tensorfile(
    path: str | Path,
    tensors: Mapping[str, np.ndarray],
    *,
    dtype: DType | Mapping[str, DType] = DType.BF16,
    metadata: dict[str, Any] | None = None,
) -> int:
    """Serialize float32 tensors at the given storage precision.

    ``dtype`` may be a single :class:`DType` for every tensor or a
    per-name mapping.  Returns the total bytes written.
    """

    def dtype_for(name: str) -> DType:
        if isinstance(dtype, DType):
            return dtype
        return dtype[name]

    with TensorFileWriter(path, metadata=metadata) as writer:
        for name, array in tensors.items():
            writer.add(name, array, dtype_for(name))
    return Path(path).stat().st_size


class TensorFile:
    """Lazy reader: the header is parsed eagerly, data only on demand."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise CheckpointFormatError(f"tensor file not found: {self.path}")
        with self.path.open("rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise CheckpointFormatError(
                    f"{self.path}: bad magic {magic!r} (not a repro tensor file)"
                )
            (version,) = struct.unpack("<I", fh.read(4))
            if version != TENSORFILE_VERSION:
                raise CheckpointFormatError(
                    f"{self.path}: unsupported tensor file version {version}"
                )
            (header_len,) = struct.unpack("<Q", fh.read(8))
            try:
                header = json.loads(fh.read(header_len).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise CheckpointFormatError(f"{self.path}: corrupt header: {exc}") from exc
            self._data_start = len(MAGIC) + 4 + 8 + header_len
        self._entries: dict[str, dict[str, Any]] = header.get("tensors", {})
        self.metadata: dict[str, Any] = header.get("metadata", {})

    # -- introspection ----------------------------------------------------------

    @property
    def names(self) -> list[str]:
        """All tensor names in the container, in file order."""
        return list(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def shape(self, name: str) -> tuple[int, ...]:
        """Shape of one named tensor."""
        return tuple(self._entry(name)["shape"])

    def dtype(self, name: str) -> DType:
        """Storage dtype of one named tensor."""
        return DType.parse(self._entry(name)["dtype"])

    def nbytes(self, name: str) -> int:
        """On-disk payload bytes of one named tensor."""
        return int(self._entry(name)["nbytes"])

    def total_nbytes(self) -> int:
        """Sum of all tensors' payload bytes."""
        return sum(int(e["nbytes"]) for e in self._entries.values())

    def _entry(self, name: str) -> dict[str, Any]:
        try:
            return self._entries[name]
        except KeyError:
            raise CheckpointFormatError(f"{self.path}: no tensor named {name!r}") from None

    # -- reads -------------------------------------------------------------------

    def read(self, name: str) -> np.ndarray:
        """Read one tensor (seek + read of just its bytes) as float32."""
        entry = self._entry(name)
        with self.path.open("rb") as fh:
            fh.seek(self._data_start + entry["offset"])
            raw = fh.read(entry["nbytes"])
        if len(raw) != entry["nbytes"]:
            raise CheckpointFormatError(f"{self.path}: truncated tensor {name!r}")
        if zlib.crc32(raw) != entry["crc32"]:
            raise CheckpointFormatError(f"{self.path}: CRC mismatch for tensor {name!r}")
        dt = DType.parse(entry["dtype"])
        buffer = np.frombuffer(raw, dtype=dt.packed_numpy)
        return unpack_bits(buffer, dt).reshape(entry["shape"])

    def read_raw(self, name: str) -> tuple[bytes, dict[str, Any]]:
        """Read a tensor's serialized bytes without decoding (for copies)."""
        entry = self._entry(name)
        with self.path.open("rb") as fh:
            fh.seek(self._data_start + entry["offset"])
            raw = fh.read(entry["nbytes"])
        if zlib.crc32(raw) != entry["crc32"]:
            raise CheckpointFormatError(f"{self.path}: CRC mismatch for tensor {name!r}")
        return raw, dict(entry)

    def read_all(self) -> dict[str, np.ndarray]:
        """Materialize every tensor as ``{name: array}`` (decoded copies)."""
        return {name: self.read(name) for name in self._entries}
