"""A safetensors-like container with lazy per-tensor reads.

Consolidated model-weight files are stored in this format so individual
layers can be copied between checkpoints *without loading the whole
file* — the property the paper exploits for weight merging (and which
optimizer blobs deliberately lack, see :mod:`repro.io.blobfile`).

Layout::

    8 bytes   magic  b"REPROTSR"
    4 bytes   format version (little-endian u32)
    8 bytes   header length H (little-endian u64)
    H bytes   JSON header (utf-8)
    ...       raw tensor buffers, 64-byte aligned

Header schema::

    {"tensors": {name: {"dtype": "bf16", "shape": [...],
                        "offset": int, "nbytes": int, "crc32": int}},
     "metadata": {...}}

Offsets are relative to the start of the data section.  Every tensor
carries a CRC-32 so corruption is detected at read time.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..numerics.dtypes import DType, pack_bits, unpack_bits
from ..util.errors import CheckpointFormatError

__all__ = ["write_tensorfile", "TensorFile", "TENSORFILE_VERSION"]

MAGIC = b"REPROTSR"
TENSORFILE_VERSION = 1
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def write_tensorfile(
    path: str | Path,
    tensors: Mapping[str, np.ndarray],
    *,
    dtype: DType | Mapping[str, DType] = DType.BF16,
    metadata: dict[str, Any] | None = None,
) -> int:
    """Serialize float32 tensors at the given storage precision.

    ``dtype`` may be a single :class:`DType` for every tensor or a
    per-name mapping.  Returns the total bytes written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    def dtype_for(name: str) -> DType:
        if isinstance(dtype, DType):
            return dtype
        return dtype[name]

    entries: dict[str, dict[str, Any]] = {}
    buffers: list[bytes] = []
    offset = 0
    for name, array in tensors.items():
        dt = dtype_for(name)
        packed = pack_bits(np.asarray(array, dtype=np.float32), dt)
        raw = packed.tobytes()
        aligned_offset = _aligned(offset)
        if aligned_offset != offset:
            buffers.append(b"\x00" * (aligned_offset - offset))
            offset = aligned_offset
        entries[name] = {
            "dtype": dt.value,
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": len(raw),
            "crc32": zlib.crc32(raw),
        }
        buffers.append(raw)
        offset += len(raw)

    header = json.dumps(
        {"tensors": entries, "metadata": metadata or {}}, sort_keys=True
    ).encode("utf-8")
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack("<I", TENSORFILE_VERSION))
        fh.write(struct.pack("<Q", len(header)))
        fh.write(header)
        for buf in buffers:
            fh.write(buf)
        fh.flush()
    tmp.replace(path)
    return path.stat().st_size


class TensorFile:
    """Lazy reader: the header is parsed eagerly, data only on demand."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise CheckpointFormatError(f"tensor file not found: {self.path}")
        with self.path.open("rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise CheckpointFormatError(
                    f"{self.path}: bad magic {magic!r} (not a repro tensor file)"
                )
            (version,) = struct.unpack("<I", fh.read(4))
            if version != TENSORFILE_VERSION:
                raise CheckpointFormatError(
                    f"{self.path}: unsupported tensor file version {version}"
                )
            (header_len,) = struct.unpack("<Q", fh.read(8))
            try:
                header = json.loads(fh.read(header_len).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise CheckpointFormatError(f"{self.path}: corrupt header: {exc}") from exc
            self._data_start = len(MAGIC) + 4 + 8 + header_len
        self._entries: dict[str, dict[str, Any]] = header.get("tensors", {})
        self.metadata: dict[str, Any] = header.get("metadata", {})

    # -- introspection ----------------------------------------------------------

    @property
    def names(self) -> list[str]:
        return list(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def shape(self, name: str) -> tuple[int, ...]:
        return tuple(self._entry(name)["shape"])

    def dtype(self, name: str) -> DType:
        return DType.parse(self._entry(name)["dtype"])

    def nbytes(self, name: str) -> int:
        return int(self._entry(name)["nbytes"])

    def total_nbytes(self) -> int:
        return sum(int(e["nbytes"]) for e in self._entries.values())

    def _entry(self, name: str) -> dict[str, Any]:
        try:
            return self._entries[name]
        except KeyError:
            raise CheckpointFormatError(f"{self.path}: no tensor named {name!r}") from None

    # -- reads -------------------------------------------------------------------

    def read(self, name: str) -> np.ndarray:
        """Read one tensor (seek + read of just its bytes) as float32."""
        entry = self._entry(name)
        with self.path.open("rb") as fh:
            fh.seek(self._data_start + entry["offset"])
            raw = fh.read(entry["nbytes"])
        if len(raw) != entry["nbytes"]:
            raise CheckpointFormatError(f"{self.path}: truncated tensor {name!r}")
        if zlib.crc32(raw) != entry["crc32"]:
            raise CheckpointFormatError(f"{self.path}: CRC mismatch for tensor {name!r}")
        dt = DType.parse(entry["dtype"])
        buffer = np.frombuffer(raw, dtype=dt.packed_numpy)
        return unpack_bits(buffer, dt).reshape(entry["shape"])

    def read_raw(self, name: str) -> tuple[bytes, dict[str, Any]]:
        """Read a tensor's serialized bytes without decoding (for copies)."""
        entry = self._entry(name)
        with self.path.open("rb") as fh:
            fh.seek(self._data_start + entry["offset"])
            raw = fh.read(entry["nbytes"])
        if zlib.crc32(raw) != entry["crc32"]:
            raise CheckpointFormatError(f"{self.path}: CRC mismatch for tensor {name!r}")
        return raw, dict(entry)

    def read_all(self) -> dict[str, np.ndarray]:
        return {name: self.read(name) for name in self._entries}
