"""Coverage-aware checkpoint retention.

Partial checkpointing complicates the usual "keep the last N
checkpoints" policy: deleting an old checkpoint may remove the *only*
copy of a layer slot and make recovery impossible.  This module prunes
old checkpoints while guaranteeing that every slot of the model remains
recoverable from the surviving set — the retention policy a production
deployment of layer-wise checkpointing needs (an extension beyond the
paper's prototype, which "can only manipulate local checkpoints", §7).
"""

from __future__ import annotations

import shutil
from pathlib import Path

from ..util.errors import CheckpointError
from ..util.logging import get_logger
from .layout import checkpoint_dir, list_checkpoint_steps, read_latest

__all__ = [
    "coverage_map",
    "latest_complete_step",
    "prunable_steps",
    "prune_checkpoints",
]

log = get_logger("io.retention")


def coverage_map(root: str | Path) -> dict[int, list[str]]:
    """Step -> slots saved, for every checkpoint under ``root``."""
    out: dict[int, list[str]] = {}
    for step in list_checkpoint_steps(root):
        manifest = checkpoint_dir(root, step).read_manifest()
        out[step] = list(manifest.get("slots", []))
    return out


def latest_complete_step(root: str | Path) -> int | None:
    """Newest checkpoint whose manifest marks it *complete*, or ``None``.

    A complete checkpoint is a self-sufficient, world-size-consistent
    resume point (every slot present, all shards from one save) — the
    anchor failure recovery falls back to without a merge.  Partial
    checkpoints can only be resumed after merging, so retention treats
    the newest complete one as load-bearing.
    """
    newest: int | None = None
    for step in list_checkpoint_steps(root):
        manifest = checkpoint_dir(root, step).read_manifest()
        if manifest.get("complete", False):
            newest = step  # steps are ascending
    return newest


def _covered(coverage: dict[int, list[str]], keep: set[int]) -> set[str]:
    slots: set[str] = set()
    for step in keep:
        slots.update(coverage[step])
    return slots


def prunable_steps(root: str | Path, keep_last: int) -> list[int]:
    """Steps safe to delete while keeping ``keep_last`` newest, full
    slot coverage, and the newest *complete* checkpoint.

    Walks candidates oldest-first; a checkpoint is prunable if the
    remaining set still covers every slot any checkpoint ever saved
    (the union is the model's slot set for any sane strategy).  The
    newest complete checkpoint is additionally protected even when
    partial checkpoints cover its slots: a partial set can only be
    resumed *after* a merge, so evicting the last self-sufficient
    world-size-consistent snapshot would make failure recovery depend
    on a merge succeeding — exactly what a bitrotten or mid-write shard
    can break.
    """
    if keep_last < 1:
        raise CheckpointError(f"keep_last must be >= 1, got {keep_last}")
    coverage = coverage_map(root)
    steps = sorted(coverage)
    if len(steps) <= keep_last:
        return []
    all_slots = _covered(coverage, set(steps))
    protected = set(steps[-keep_last:])
    anchor = latest_complete_step(root)
    if anchor is not None:
        protected.add(anchor)
    keep = set(steps)
    prunable: list[int] = []
    for step in steps:  # oldest first
        if step in protected:
            continue
        candidate = keep - {step}
        if _covered(coverage, candidate) == all_slots:
            keep = candidate
            prunable.append(step)
    return prunable


def prune_checkpoints(
    root: str | Path,
    keep_last: int,
    *,
    dry_run: bool = False,
    blob_store=None,
    tenant: str | None = None,
) -> list[int]:
    """Delete prunable checkpoints; returns the steps removed.

    Never deletes the checkpoint the ``latest`` pointer references.

    When the run's shard groups were ingested into a serve
    :class:`~repro.io.storage.BlobStore`, pass it (with the ``tenant``
    the groups were registered under) so retention and the store agree
    on ownership: deleting a checkpoint releases exactly *this tenant's*
    references on it, and the follow-up sweep reclaims only objects no
    other owner still claims.  A group dedup'd across two tenants
    therefore survives either tenant's retention pass — the refcount is
    the arbiter, never the order of pruning.
    """
    root = Path(root)
    latest = read_latest(root)
    latest_step = latest.step if latest is not None else None
    removed: list[int] = []
    for step in prunable_steps(root, keep_last):
        if step == latest_step:
            continue
        if not dry_run:
            ckpt = checkpoint_dir(root, step)
            if blob_store is not None:
                owner = blob_store.owner_token(tenant or root.name, ckpt.dir)
                blob_store.release(owner)
            shutil.rmtree(ckpt.dir)
            log.info("pruned checkpoint-%d", step)
        removed.append(step)
    if removed and not dry_run and blob_store is not None:
        swept = blob_store.sweep()
        if swept:
            log.info("blob store sweep reclaimed %d object(s)", len(swept))
    return removed
