"""Monolithic compressed container for optimizer shard files.

DeepSpeed serializes each rank's optimizer state as one pickled,
compressed file; the whole file must be read and deserialized before any
group inside it can be touched ("no possibility of lazy loading, as in
the case of model weights" — paper §5.4).  This module reproduces that
anatomy with a self-contained binary encoding (no pickle: loading a
checkpoint must never execute code).

Layout::

    8 bytes  magic b"REPROBLB"
    4 bytes  version (u32 LE)
    1 byte   flags (bit 0: zlib-compressed payload)
    8 bytes  payload length (u64 LE, compressed size)
    8 bytes  uncompressed length (u64 LE)
    4 bytes  CRC-32 of the *uncompressed* payload
    ...      payload

Payload encoding (tag-length-value):
``N`` none, ``T``/``F`` bool, ``I`` int64, ``D`` float64, ``S`` utf-8
string, ``B`` raw bytes, ``L`` list, ``M`` dict (keys: str or int),
``A`` ndarray (dtype-string, ndim, dims, raw C-order buffer).

Because every value carries its length up front, the payload can also be
decoded *selectively*: :func:`read_blob_selected` walks the TLV stream
sequentially (decompressing in bounded chunks) and skips any subtree a
predicate rejects, so a merge tool can pull a handful of parameter
groups out of a multi-gigabyte shard without ever materializing the
whole checkpoint.  Writes stream symmetrically: :func:`write_blob`
pushes encoded chunks through an incremental compressor and patches the
header afterwards, so no full payload buffer exists at any point.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Any, Callable, Iterator

import numpy as np

from ..util.errors import CheckpointFormatError

__all__ = [
    "write_blob",
    "read_blob",
    "read_blob_selected",
    "encode",
    "iter_encode",
    "decode",
    "BLOB_VERSION",
]

MAGIC = b"REPROBLB"
BLOB_VERSION = 1
_FLAG_COMPRESSED = 0x01
_HEADER_LEN = len(MAGIC) + 4 + 1 + 8 + 8 + 4
# Small-value staging threshold for streaming writes; big tensor buffers
# bypass staging entirely, so this also bounds the writer's peak memory.
_WRITE_CHUNK = 256 << 10
# Reads inflate in smaller steps so a ``stop_after`` early exit skips a
# meaningful tail of the payload instead of having decompressed it all.
_READ_CHUNK = 128 << 10
_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def iter_encode(obj: Any) -> Iterator[bytes]:
    """Yield the TLV encoding of ``obj`` as a chunk stream.

    Large ndarray buffers are yielded as separate chunks, so a writer can
    push them straight into a compressor without concatenating the whole
    payload in memory first.
    """
    if obj is None:
        yield b"N"
    elif obj is True:
        yield b"T"
    elif obj is False:
        yield b"F"
    elif isinstance(obj, (int, np.integer)):
        yield b"I" + struct.pack("<q", int(obj))
    elif isinstance(obj, (float, np.floating)):
        yield b"D" + struct.pack("<d", float(obj))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        yield b"S" + struct.pack("<I", len(raw)) + raw
    elif isinstance(obj, bytes):
        yield b"B" + struct.pack("<Q", len(obj)) + obj
    elif isinstance(obj, (list, tuple)):
        yield b"L" + struct.pack("<I", len(obj))
        for item in obj:
            yield from iter_encode(item)
    elif isinstance(obj, dict):
        yield b"M" + struct.pack("<I", len(obj))
        for key, value in obj.items():
            if not isinstance(key, (str, int, np.integer)):
                raise CheckpointFormatError(
                    f"blob dict keys must be str or int, got {type(key).__name__}"
                )
            yield from iter_encode(int(key) if isinstance(key, np.integer) else key)
            yield from iter_encode(value)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        if obj.ndim == 0:  # ascontiguousarray promotes 0-dim to 1-D
            arr = arr.reshape(())
        dtype_str = arr.dtype.str.encode("ascii")
        yield (
            b"A"
            + struct.pack("<B", len(dtype_str))
            + dtype_str
            + struct.pack("<B", arr.ndim)
            + struct.pack(f"<{arr.ndim}q", *arr.shape)
            + struct.pack("<Q", arr.nbytes)
        )
        yield arr.tobytes()
    else:
        raise CheckpointFormatError(f"cannot serialize object of type {type(obj).__name__}")


def encode(obj: Any) -> bytes:
    """Encode an object tree into the TLV byte string (see module docs for tags)."""
    return b"".join(iter_encode(obj))


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

class _Reader:
    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.buf):
            raise CheckpointFormatError("blob payload truncated")
        chunk = self.buf[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def unpack(self, fmt: str) -> tuple:
        size = struct.calcsize(fmt)
        return struct.unpack(fmt, self.take(size))


def _decode_one(r: _Reader) -> Any:
    tag = r.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"I":
        return r.unpack("<q")[0]
    if tag == b"D":
        return r.unpack("<d")[0]
    if tag == b"S":
        (n,) = r.unpack("<I")
        return r.take(n).decode("utf-8")
    if tag == b"B":
        (n,) = r.unpack("<Q")
        return r.take(n)
    if tag == b"L":
        (n,) = r.unpack("<I")
        return [_decode_one(r) for _ in range(n)]
    if tag == b"M":
        (n,) = r.unpack("<I")
        out: dict[Any, Any] = {}
        for _ in range(n):
            key = _decode_one(r)
            if not isinstance(key, (str, int)):
                raise CheckpointFormatError(f"invalid blob dict key type {type(key).__name__}")
            out[key] = _decode_one(r)
        return out
    if tag == b"A":
        (dtype_len,) = r.unpack("<B")
        dtype = np.dtype(r.take(dtype_len).decode("ascii"))
        (ndim,) = r.unpack("<B")
        shape = r.unpack(f"<{ndim}q") if ndim else ()
        (nbytes,) = r.unpack("<Q")
        raw = r.take(nbytes)
        arr = np.frombuffer(raw, dtype=dtype)
        expected = int(np.prod(shape)) if shape else 1
        if arr.size != expected:
            raise CheckpointFormatError(
                f"blob array size mismatch: buffer has {arr.size}, shape wants {expected}"
            )
        return arr.reshape(shape).copy()
    raise CheckpointFormatError(f"unknown blob tag {tag!r}")


def decode(payload: bytes) -> Any:
    """Decode one TLV payload produced by :func:`encode` back into Python objects."""
    r = _Reader(payload)
    obj = _decode_one(r)
    if r.pos != len(payload):
        raise CheckpointFormatError(f"blob has {len(payload) - r.pos} trailing bytes")
    return obj


# ---------------------------------------------------------------------------
# Streaming (selective) decoding
# ---------------------------------------------------------------------------

class _StreamSource:
    """Sequential byte source over a (possibly compressed) blob payload.

    Decompresses in bounded chunks; the running CRC of the uncompressed
    stream is folded in once per produced chunk (not per token read), so
    selective reads keep :func:`read_blob`'s corruption detection at a
    negligible per-value cost.  ``skip`` is pointer arithmetic within
    the current chunk — skipped tensor buffers are never copied.
    """

    def __init__(self, fh, payload_len: int, compressed: bool) -> None:
        self._fh = fh
        self._remaining_file = payload_len
        self._inflater = zlib.decompressobj() if compressed else None
        self._buf = bytearray()  # += amortizes; take() of an N-byte value stays O(N)
        self._pos = 0  # consumed prefix of _buf
        self.crc = 0
        self.produced = 0  # uncompressed bytes that entered the buffer
        self.consumed = 0  # uncompressed bytes handed out or skipped

    def _produce(self) -> bool:
        """Decompress the next file chunk into the buffer; False at EOF."""
        while True:
            if self._remaining_file <= 0:
                if self._inflater is not None and not self._inflater.eof:
                    tail = self._inflater.flush()
                    if tail:
                        self._append(tail)
                        return True
                return False
            chunk = self._fh.read(min(_READ_CHUNK, self._remaining_file))
            if not chunk:
                raise CheckpointFormatError("blob payload truncated")
            self._remaining_file -= len(chunk)
            if self._inflater is not None:
                try:
                    chunk = self._inflater.decompress(chunk)
                except zlib.error as exc:
                    raise CheckpointFormatError(f"decompression failed: {exc}") from exc
                if not chunk:
                    continue  # compressed chunk produced no output yet
            self._append(chunk)
            return True

    def _append(self, chunk: bytes) -> None:
        self.crc = zlib.crc32(chunk, self.crc)
        self.produced += len(chunk)
        if self._pos:  # drop the consumed prefix before growing
            del self._buf[: self._pos]
            self._pos = 0
        self._buf += chunk

    def take(self, n: int) -> bytes:
        while len(self._buf) - self._pos < n:
            if not self._produce():
                raise CheckpointFormatError("blob payload truncated")
        out = bytes(self._buf[self._pos : self._pos + n])
        self._pos += n
        self.consumed += n
        return out

    def skip(self, n: int) -> None:
        """Consume ``n`` bytes without retaining or copying them."""
        self.consumed += n
        while n > 0:
            avail = len(self._buf) - self._pos
            if avail == 0:
                if not self._produce():
                    self.consumed -= n
                    raise CheckpointFormatError("blob payload truncated")
                continue
            step = avail if avail < n else n
            self._pos += step
            n -= step

    def unpack(self, fmt: str) -> tuple:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))

    def at_end(self) -> bool:
        if len(self._buf) - self._pos > 0:
            return False
        try:
            return not self._produce()
        except CheckpointFormatError:
            return True


def _skip_value(src: _StreamSource) -> None:
    """Consume one TLV value without materializing it."""
    tag = src.take(1)
    if tag in (b"N", b"T", b"F"):
        return
    if tag == b"I" or tag == b"D":
        src.skip(8)
    elif tag == b"S":
        (n,) = _U32.unpack(src.take(4))
        src.skip(n)
    elif tag == b"B":
        (n,) = _U64.unpack(src.take(8))
        src.skip(n)
    elif tag == b"L":
        (n,) = _U32.unpack(src.take(4))
        for _ in range(n):
            _skip_value(src)
    elif tag == b"M":
        (n,) = _U32.unpack(src.take(4))
        for _ in range(n):
            _skip_value(src)  # key
            _skip_value(src)  # value
    elif tag == b"A":
        (dtype_len,) = _U8.unpack(src.take(1))
        src.skip(dtype_len)
        (ndim,) = _U8.unpack(src.take(1))
        if ndim:
            src.skip(8 * ndim)
        (nbytes,) = _U64.unpack(src.take(8))
        src.skip(nbytes)
    else:
        raise CheckpointFormatError(f"unknown blob tag {tag!r}")


# Distinguishes "element pruned by the indexed filter" from a literal
# decoded None element, which must survive the filter untouched.
_SKIPPED = object()


class _EarlyStop(Exception):
    """Internal: unwinds a selective decode once ``stop_after`` is met.

    Each map frame catches it, grafts its partially built dict into the
    carried value, and re-raises, so the top level receives the decoded
    prefix of the document.
    """

    def __init__(self, value: Any) -> None:
        self.value = value


def _decode_indexed_element(
    src: _StreamSource,
    want: Callable[[tuple], bool],
    path: tuple,
    keep: "set",
) -> Any:
    """Decode one list element of ``{"index": i, ...}`` maps, or skip it.

    The shard format's ``groups``/``hyperparams`` lists lead every entry
    with its ``index`` key; peeking at that first pair lets a selective
    read discard the (comparatively token-dense) header maps of groups
    it does not want without walking their fields.  Non-map elements and
    maps not led by ``index`` fall back to a full decode.  Returns the
    ``_SKIPPED`` sentinel (never ``None``, which is a legal element) for
    pruned entries.
    """
    tag = src.take(1)
    if tag != b"M":
        return _decode_value_of_tag(src, want, path, tag)
    (n,) = _U32.unpack(src.take(4))
    out: dict[Any, Any] = {}
    for i in range(n):
        key = _decode_selected(src, want, path)
        if not isinstance(key, (str, int)):
            raise CheckpointFormatError(f"invalid blob dict key type {type(key).__name__}")
        value = _decode_selected(src, want, path + (key,))
        out[key] = value
        if i == 0 and key == "index" and value not in keep:
            for _ in range(n - 1):
                _skip_value(src)  # key
                _skip_value(src)  # value
            return _SKIPPED
    return out


def _decode_selected(
    src: _StreamSource,
    want: Callable[[tuple], bool],
    path: tuple,
    indexed_filter: Callable[[tuple], "set | None"] | None = None,
    stop_after: tuple | None = None,
) -> Any:
    """Decode one value, pruning map subtrees the predicate rejects."""
    tag = src.take(1)
    return _decode_value_of_tag(src, want, path, tag, indexed_filter, stop_after)


def _decode_value_of_tag(
    src: _StreamSource,
    want: Callable[[tuple], bool],
    path: tuple,
    tag: bytes,
    indexed_filter: Callable[[tuple], "set | None"] | None = None,
    stop_after: tuple | None = None,
) -> Any:
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"I":
        return _I64.unpack(src.take(8))[0]
    if tag == b"D":
        return _F64.unpack(src.take(8))[0]
    if tag == b"S":
        (n,) = _U32.unpack(src.take(4))
        return src.take(n).decode("utf-8")
    if tag == b"B":
        (n,) = _U64.unpack(src.take(8))
        return src.take(n)
    if tag == b"L":
        (n,) = _U32.unpack(src.take(4))
        keep = indexed_filter(path) if indexed_filter is not None else None
        if keep is not None:
            out_list = []
            for _ in range(n):
                element = _decode_indexed_element(src, want, path, keep)
                if element is not _SKIPPED:
                    out_list.append(element)
            return out_list
        return [
            _decode_selected(src, want, path + (i,), indexed_filter)
            for i in range(n)
        ]
    if tag == b"M":
        (n,) = _U32.unpack(src.take(4))
        out: dict[Any, Any] = {}
        for _ in range(n):
            key = _decode_selected(src, want, path)
            if not isinstance(key, (str, int)):
                raise CheckpointFormatError(
                    f"invalid blob dict key type {type(key).__name__}"
                )
            child = path + (key,)
            if want(child):
                try:
                    out[key] = _decode_selected(
                        src, want, child, indexed_filter, stop_after
                    )
                except _EarlyStop as stop:
                    out[key] = stop.value
                    raise _EarlyStop(out) from None
                if stop_after is not None and child == stop_after:
                    raise _EarlyStop(out)
            else:
                _skip_value(src)
        return out
    if tag == b"A":
        (dtype_len,) = _U8.unpack(src.take(1))
        dtype = np.dtype(src.take(dtype_len).decode("ascii"))
        (ndim,) = _U8.unpack(src.take(1))
        shape = src.unpack(f"<{ndim}q") if ndim else ()
        (nbytes,) = _U64.unpack(src.take(8))
        raw = src.take(nbytes)
        arr = np.frombuffer(raw, dtype=dtype)
        expected = int(np.prod(shape)) if shape else 1
        if arr.size != expected:
            raise CheckpointFormatError(
                f"blob array size mismatch: buffer has {arr.size}, shape wants {expected}"
            )
        return arr.reshape(shape).copy()
    raise CheckpointFormatError(f"unknown blob tag {tag!r}")


# ---------------------------------------------------------------------------
# File I/O
# ---------------------------------------------------------------------------

# Deflate strategy for blob payloads.  Blob content is dominated by fp32
# optimizer state, which is nearly incompressible noise to LZ77 matching:
# measured on sim-scale shard payloads, Z_RLE reaches the same ratio as
# the default strategy at level 1 (0.924 vs 0.929) while compressing ~3x
# faster — and it still catches the long zero runs of never-stepped
# moment buffers, which Z_HUFFMAN_ONLY would not.  The output remains a
# standard zlib stream, so readers (old and new) are unaffected.
_DEFLATE_STRATEGY = zlib.Z_RLE


def write_blob(path: str | Path, obj: Any, *, compress: bool = True, level: int = 1) -> int:
    """Serialize ``obj`` to a blob file; returns bytes written to disk.

    The payload is streamed through an incremental compressor chunk by
    chunk (the header is patched in place afterwards), so writing never
    holds the full encoded payload in memory.  The emitted bytes form a
    single deflate stream with one terminal flush (RLE strategy — see
    ``_DEFLATE_STRATEGY``), decodable by any zlib inflater.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    flags = _FLAG_COMPRESSED if compress else 0
    tmp = path.with_suffix(path.suffix + ".tmp")
    try:
        _write_blob_tmp(tmp, obj, flags, compress, level)
    except BaseException:
        tmp.unlink(missing_ok=True)  # no orphan debris on failed saves
        raise
    tmp.replace(path)
    return path.stat().st_size


def _write_blob_tmp(tmp: Path, obj: Any, flags: int, compress: bool, level: int) -> None:
    crc = 0
    raw_len = 0
    payload_len = 0
    with tmp.open("wb") as fh:
        fh.write(b"\x00" * _HEADER_LEN)  # placeholder, patched below
        deflater = (
            zlib.compressobj(level, zlib.DEFLATED, zlib.MAX_WBITS, 9, _DEFLATE_STRATEGY)
            if compress
            else None
        )

        def push(raw, *, final: bool = False) -> int:
            out = b""
            if deflater is not None:
                if raw:
                    out = deflater.compress(raw)
                if final:
                    out += deflater.flush()
            else:
                out = bytes(raw)
            fh.write(out)
            return len(out)

        pending = bytearray()
        for chunk in iter_encode(obj):
            crc = zlib.crc32(chunk, crc)
            raw_len += len(chunk)
            if len(chunk) >= _WRITE_CHUNK:
                # Large buffers (tensor data) go straight through without
                # being staged — no payload-sized copies at any point.
                if pending:
                    payload_len += push(pending)
                    pending = bytearray()
                payload_len += push(chunk)
            else:
                pending += chunk
                if len(pending) >= _WRITE_CHUNK:
                    payload_len += push(pending)
                    pending = bytearray()
        payload_len += push(pending, final=True)
        fh.seek(0)
        fh.write(MAGIC)
        fh.write(struct.pack("<I", BLOB_VERSION))
        fh.write(struct.pack("<B", flags))
        fh.write(struct.pack("<Q", payload_len))
        fh.write(struct.pack("<Q", raw_len))
        fh.write(struct.pack("<I", crc))
        fh.flush()


def _open_payload(path: Path):
    """Open a blob file and position the handle at the payload start."""
    if not path.exists():
        raise CheckpointFormatError(f"blob file not found: {path}")
    fh = path.open("rb")
    try:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise CheckpointFormatError(f"{path}: bad magic {magic!r} (not a repro blob)")
        (version,) = struct.unpack("<I", fh.read(4))
        if version != BLOB_VERSION:
            raise CheckpointFormatError(f"{path}: unsupported blob version {version}")
        (flags,) = struct.unpack("<B", fh.read(1))
        (payload_len,) = struct.unpack("<Q", fh.read(8))
        (raw_len,) = struct.unpack("<Q", fh.read(8))
        (crc,) = struct.unpack("<I", fh.read(4))
    except Exception:
        fh.close()
        raise
    return fh, flags, payload_len, raw_len, crc


def read_blob_selected(
    path: str | Path,
    want: Callable[[tuple], bool],
    *,
    indexed_filter: Callable[[tuple], "set | None"] | None = None,
    stop_after: tuple | None = None,
) -> Any:
    """Decode a blob, materializing only subtrees the predicate accepts.

    ``want`` receives the key path of every map entry as a tuple (e.g.
    ``("fp32_flat_groups", 3)``) and returns whether to decode it;
    rejected subtrees are skipped in the byte stream without building
    numpy arrays or containers.  ``indexed_filter`` optionally maps a
    *list* path (e.g. ``("groups",)``) to a set of wanted ``index``
    values: elements whose leading ``index`` key is not in the set are
    dropped after that one peek, which avoids walking the token-dense
    header maps of unwanted groups.  The whole payload still flows
    through the decompressor sequentially (the format is monolithic by
    design — paper §5.4), but peak memory is bounded by the *selected*
    data, not the shard size.  CRC and length checks match
    :func:`read_blob`.

    ``stop_after`` names a map-entry path after whose completed decode
    the read returns immediately with the prefix decoded so far —
    nothing past it is read or decompressed.  The trade-off is explicit:
    an early-stopped read cannot verify the payload CRC or total length
    (the unread tail carries them), exactly as if the file ended there.
    """
    path = Path(path)
    fh, flags, payload_len, raw_len, crc = _open_payload(path)
    with fh:
        src = _StreamSource(fh, payload_len, bool(flags & _FLAG_COMPRESSED))
        try:
            obj = _decode_selected(src, want, (), indexed_filter, stop_after)
        except _EarlyStop as stop:
            return stop.value
        if not src.at_end() or src.consumed != raw_len:
            raise CheckpointFormatError(
                f"{path}: payload length mismatch ({src.consumed} vs {raw_len})"
            )
        if src.crc != crc:
            raise CheckpointFormatError(f"{path}: CRC mismatch (corrupt blob)")
    return obj


def read_blob(path: str | Path) -> Any:
    """Read and fully deserialize a blob file (inherently non-lazy)."""
    path = Path(path)
    if not path.exists():
        raise CheckpointFormatError(f"blob file not found: {path}")
    with path.open("rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise CheckpointFormatError(f"{path}: bad magic {magic!r} (not a repro blob)")
        (version,) = struct.unpack("<I", fh.read(4))
        if version != BLOB_VERSION:
            raise CheckpointFormatError(f"{path}: unsupported blob version {version}")
        (flags,) = struct.unpack("<B", fh.read(1))
        (payload_len,) = struct.unpack("<Q", fh.read(8))
        (raw_len,) = struct.unpack("<Q", fh.read(8))
        (crc,) = struct.unpack("<I", fh.read(4))
        payload = fh.read(payload_len)
    if len(payload) != payload_len:
        raise CheckpointFormatError(f"{path}: truncated blob payload")
    if flags & _FLAG_COMPRESSED:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise CheckpointFormatError(f"{path}: decompression failed: {exc}") from exc
    if len(payload) != raw_len:
        raise CheckpointFormatError(
            f"{path}: payload length mismatch ({len(payload)} vs {raw_len})"
        )
    if zlib.crc32(payload) != crc:
        raise CheckpointFormatError(f"{path}: CRC mismatch (corrupt blob)")
    return decode(payload)
