"""Monolithic compressed container for optimizer shard files.

DeepSpeed serializes each rank's optimizer state as one pickled,
compressed file; the whole file must be read and deserialized before any
group inside it can be touched ("no possibility of lazy loading, as in
the case of model weights" — paper §5.4).  This module reproduces that
anatomy with a self-contained binary encoding (no pickle: loading a
checkpoint must never execute code).

Layout::

    8 bytes  magic b"REPROBLB"
    4 bytes  version (u32 LE)
    1 byte   flags (bit 0: zlib-compressed payload)
    8 bytes  payload length (u64 LE, compressed size)
    8 bytes  uncompressed length (u64 LE)
    4 bytes  CRC-32 of the *uncompressed* payload
    ...      payload

Payload encoding (tag-length-value):
``N`` none, ``T``/``F`` bool, ``I`` int64, ``D`` float64, ``S`` utf-8
string, ``B`` raw bytes, ``L`` list, ``M`` dict (keys: str or int),
``A`` ndarray (dtype-string, ndim, dims, raw C-order buffer).
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from ..util.errors import CheckpointFormatError

__all__ = ["write_blob", "read_blob", "encode", "decode", "BLOB_VERSION"]

MAGIC = b"REPROBLB"
BLOB_VERSION = 1
_FLAG_COMPRESSED = 0x01


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def _encode_into(obj: Any, out: list[bytes]) -> None:
    if obj is None:
        out.append(b"N")
    elif obj is True:
        out.append(b"T")
    elif obj is False:
        out.append(b"F")
    elif isinstance(obj, (int, np.integer)):
        out.append(b"I" + struct.pack("<q", int(obj)))
    elif isinstance(obj, (float, np.floating)):
        out.append(b"D" + struct.pack("<d", float(obj)))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(b"S" + struct.pack("<I", len(raw)) + raw)
    elif isinstance(obj, bytes):
        out.append(b"B" + struct.pack("<Q", len(obj)) + obj)
    elif isinstance(obj, (list, tuple)):
        out.append(b"L" + struct.pack("<I", len(obj)))
        for item in obj:
            _encode_into(item, out)
    elif isinstance(obj, dict):
        out.append(b"M" + struct.pack("<I", len(obj)))
        for key, value in obj.items():
            if not isinstance(key, (str, int, np.integer)):
                raise CheckpointFormatError(
                    f"blob dict keys must be str or int, got {type(key).__name__}"
                )
            _encode_into(int(key) if isinstance(key, np.integer) else key, out)
            _encode_into(value, out)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        if obj.ndim == 0:  # ascontiguousarray promotes 0-dim to 1-D
            arr = arr.reshape(())
        dtype_str = arr.dtype.str.encode("ascii")
        out.append(
            b"A"
            + struct.pack("<B", len(dtype_str))
            + dtype_str
            + struct.pack("<B", arr.ndim)
            + struct.pack(f"<{arr.ndim}q", *arr.shape)
            + struct.pack("<Q", arr.nbytes)
        )
        out.append(arr.tobytes())
    else:
        raise CheckpointFormatError(f"cannot serialize object of type {type(obj).__name__}")


def encode(obj: Any) -> bytes:
    parts: list[bytes] = []
    _encode_into(obj, parts)
    return b"".join(parts)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

class _Reader:
    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.buf):
            raise CheckpointFormatError("blob payload truncated")
        chunk = self.buf[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def unpack(self, fmt: str) -> tuple:
        size = struct.calcsize(fmt)
        return struct.unpack(fmt, self.take(size))


def _decode_one(r: _Reader) -> Any:
    tag = r.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"I":
        return r.unpack("<q")[0]
    if tag == b"D":
        return r.unpack("<d")[0]
    if tag == b"S":
        (n,) = r.unpack("<I")
        return r.take(n).decode("utf-8")
    if tag == b"B":
        (n,) = r.unpack("<Q")
        return r.take(n)
    if tag == b"L":
        (n,) = r.unpack("<I")
        return [_decode_one(r) for _ in range(n)]
    if tag == b"M":
        (n,) = r.unpack("<I")
        out: dict[Any, Any] = {}
        for _ in range(n):
            key = _decode_one(r)
            if not isinstance(key, (str, int)):
                raise CheckpointFormatError(f"invalid blob dict key type {type(key).__name__}")
            out[key] = _decode_one(r)
        return out
    if tag == b"A":
        (dtype_len,) = r.unpack("<B")
        dtype = np.dtype(r.take(dtype_len).decode("ascii"))
        (ndim,) = r.unpack("<B")
        shape = r.unpack(f"<{ndim}q") if ndim else ()
        (nbytes,) = r.unpack("<Q")
        raw = r.take(nbytes)
        arr = np.frombuffer(raw, dtype=dtype)
        expected = int(np.prod(shape)) if shape else 1
        if arr.size != expected:
            raise CheckpointFormatError(
                f"blob array size mismatch: buffer has {arr.size}, shape wants {expected}"
            )
        return arr.reshape(shape).copy()
    raise CheckpointFormatError(f"unknown blob tag {tag!r}")


def decode(payload: bytes) -> Any:
    r = _Reader(payload)
    obj = _decode_one(r)
    if r.pos != len(payload):
        raise CheckpointFormatError(f"blob has {len(payload) - r.pos} trailing bytes")
    return obj


# ---------------------------------------------------------------------------
# File I/O
# ---------------------------------------------------------------------------

def write_blob(path: str | Path, obj: Any, *, compress: bool = True, level: int = 1) -> int:
    """Serialize ``obj`` to a blob file; returns bytes written to disk."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = encode(obj)
    crc = zlib.crc32(payload)
    raw_len = len(payload)
    flags = 0
    if compress:
        payload = zlib.compress(payload, level)
        flags |= _FLAG_COMPRESSED
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack("<I", BLOB_VERSION))
        fh.write(struct.pack("<B", flags))
        fh.write(struct.pack("<Q", len(payload)))
        fh.write(struct.pack("<Q", raw_len))
        fh.write(struct.pack("<I", crc))
        fh.write(payload)
        fh.flush()
    tmp.replace(path)
    return path.stat().st_size


def read_blob(path: str | Path) -> Any:
    """Read and fully deserialize a blob file (inherently non-lazy)."""
    path = Path(path)
    if not path.exists():
        raise CheckpointFormatError(f"blob file not found: {path}")
    with path.open("rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise CheckpointFormatError(f"{path}: bad magic {magic!r} (not a repro blob)")
        (version,) = struct.unpack("<I", fh.read(4))
        if version != BLOB_VERSION:
            raise CheckpointFormatError(f"{path}: unsupported blob version {version}")
        (flags,) = struct.unpack("<B", fh.read(1))
        (payload_len,) = struct.unpack("<Q", fh.read(8))
        (raw_len,) = struct.unpack("<Q", fh.read(8))
        (crc,) = struct.unpack("<I", fh.read(4))
        payload = fh.read(payload_len)
    if len(payload) != payload_len:
        raise CheckpointFormatError(f"{path}: truncated blob payload")
    if flags & _FLAG_COMPRESSED:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise CheckpointFormatError(f"{path}: decompression failed: {exc}") from exc
    if len(payload) != raw_len:
        raise CheckpointFormatError(
            f"{path}: payload length mismatch ({len(payload)} vs {raw_len})"
        )
    if zlib.crc32(payload) != crc:
        raise CheckpointFormatError(f"{path}: CRC mismatch (corrupt blob)")
    return decode(payload)
