"""Checkpoint I/O substrate: formats, layout, storage cost model."""

from .blobfile import BLOB_VERSION, read_blob, write_blob
from .layout import (
    CheckpointPaths,
    checkpoint_dir,
    list_checkpoint_steps,
    read_latest,
    write_latest,
)
from .reader import LoadedCheckpoint, describe_checkpoint, load_checkpoint
from .retention import (
    coverage_map,
    latest_complete_step,
    prunable_steps,
    prune_checkpoints,
)
from .storage import LUSTRE_DEFAULT, IOStats, Storage, StorageCostModel
from .tensorfile import TENSORFILE_VERSION, TensorFile, write_tensorfile
from .writer import save_checkpoint

__all__ = [
    "BLOB_VERSION",
    "CheckpointPaths",
    "IOStats",
    "LUSTRE_DEFAULT",
    "LoadedCheckpoint",
    "Storage",
    "StorageCostModel",
    "TENSORFILE_VERSION",
    "TensorFile",
    "checkpoint_dir",
    "coverage_map",
    "latest_complete_step",
    "describe_checkpoint",
    "prunable_steps",
    "prune_checkpoints",
    "list_checkpoint_steps",
    "load_checkpoint",
    "read_blob",
    "read_latest",
    "save_checkpoint",
    "write_blob",
    "write_latest",
    "write_tensorfile",
]
