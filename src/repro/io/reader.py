"""Checkpoint reader: restore model + optimizer + trainer metadata.

Only *complete* checkpoints are resumable — a partial checkpoint must
first be merged into a Frankenstein checkpoint by LLMTailor.  The reader
enforces this via the manifest and gives an actionable error otherwise.

Resume is *elastic*: a checkpoint written at world size N loads into an
engine running at world size M — the reader reshards the optimizer
payloads N→M in memory (:mod:`repro.dist.reshard`) before handing them
to the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..dist.zero import ZeroStage3Engine
from ..nn.config import ModelConfig
from ..nn.module import Module
from ..util.errors import CheckpointError
from ..util.jsonio import read_json
from .blobfile import read_blob
from .layout import CheckpointPaths
from .storage import Storage
from .tensorfile import TensorFile

__all__ = ["LoadedCheckpoint", "load_checkpoint", "describe_checkpoint"]


@dataclass
class LoadedCheckpoint:
    """Metadata recovered alongside the weights/optimizer state."""

    step: int
    trainer_state: dict[str, Any]
    training_args: dict[str, Any]
    scheduler_state: dict[str, Any]
    rng_state: dict[str, Any]
    manifest: dict[str, Any]


def load_checkpoint(
    paths: CheckpointPaths,
    *,
    model: Module,
    config: ModelConfig,
    engine: ZeroStage3Engine,
    storage: Storage | None = None,
) -> LoadedCheckpoint:
    """Restore a complete checkpoint into ``model`` and ``engine``."""
    if not paths.exists():
        raise CheckpointError(f"checkpoint directory not found: {paths.dir}")
    manifest = paths.read_manifest()
    if not manifest.get("complete", False):
        missing = sorted(set(manifest.get("all_slots", [])) - set(manifest.get("slots", [])))
        raise CheckpointError(
            f"{paths.dir} is a partial checkpoint (missing slots {missing[:6]}"
            f"{'...' if len(missing) > 6 else ''}); assemble a complete one with "
            "LLMTailor.merge() before resuming"
        )
    if manifest.get("model_config") != config.name:
        raise CheckpointError(
            f"checkpoint was written for model {manifest.get('model_config')!r}, "
            f"attempting to load into {config.name!r}"
        )
    if "world_size" not in manifest:
        raise CheckpointError(
            f"{paths.dir} manifest carries no world_size; the checkpoint "
            "cannot be validated against the engine"
        )
    source_world = int(manifest["world_size"])

    # Model weights (informational only for training — the fp32 masters in
    # the shards are authoritative — but loaded for inference parity).
    weights = TensorFile(paths.weights)
    model.load_state_dict(weights.read_all(), strict=True)
    if storage is not None:
        storage.charge_read(weights.total_nbytes(), files=1, category="checkpoint_read.weights")

    # Optimizer shards: full files, one per rank (no lazy load).  When
    # the checkpoint's world size differs from the engine's, reshard the
    # payloads in memory first (elastic resume).
    shard_bytes = 0
    if source_world != engine.world_size:
        from ..dist.reshard import reshard_state_dicts  # avoid import cycle

        sources = []
        for rank in range(source_world):
            shard_path = paths.shard(rank)
            sources.append(read_blob(shard_path))
            shard_bytes += shard_path.stat().st_size
        # consume=True drains the source arrays as they are re-sliced,
        # so peak memory stays near one optimizer state, not two.
        shards = iter(reshard_state_dicts(sources, engine.world_size, consume=True))
        del sources
    else:
        def _read_shards():
            nonlocal shard_bytes
            for rank in range(engine.world_size):
                shard_path = paths.shard(rank)
                shard = read_blob(shard_path)  # one shard resident at a time
                shard_bytes += shard_path.stat().st_size
                yield shard

        shards = _read_shards()
    for rank, shard in enumerate(shards):
        # Re-materializing weights gathers every rank's shard, so defer
        # it until the last rank is in place instead of doing it N times.
        engine.load_rank_state_dict(
            rank, shard, require_full=True,
            materialize=rank == engine.world_size - 1,
        )
    if storage is not None:
        storage.charge_read(
            shard_bytes,
            files=source_world,
            parallel=source_world,
            decompress=True,
            category="checkpoint_read.optimizer",
        )

    return LoadedCheckpoint(
        step=manifest["step"],
        trainer_state=read_json(paths.trainer_state),
        training_args=read_json(paths.training_args),
        scheduler_state=read_json(paths.scheduler),
        rng_state=read_json(paths.rng_state),
        manifest=manifest,
    )


def describe_checkpoint(directory: str | Path) -> dict[str, Any]:
    """Summarize a checkpoint directory (sizes, coverage) for tooling."""
    paths = CheckpointPaths(directory)
    if not paths.exists():
        raise CheckpointError(f"no checkpoint at {directory}")
    manifest = paths.read_manifest()
    weights = TensorFile(paths.weights)
    shards = sorted(paths.optim_dir.glob("zero_pp_rank_*_optim_states.blob"))
    return {
        "step": manifest["step"],
        "model_config": manifest.get("model_config"),
        "strategy": manifest.get("strategy"),
        "complete": manifest.get("complete"),
        "slots": manifest.get("slots", []),
        "num_weight_tensors": len(weights),
        "weight_nbytes": weights.total_nbytes(),
        "num_shards": len(shards),
        "shard_nbytes": sum(p.stat().st_size for p in shards),
        "total_nbytes": paths.nbytes(),
    }
