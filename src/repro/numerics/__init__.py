"""Numeric precision simulation (fp32 / bf16 / fp16)."""

from .dtypes import DType, bf16_rne, pack_bits, quantize, unpack_bits

__all__ = ["DType", "bf16_rne", "pack_bits", "quantize", "unpack_bits"]
