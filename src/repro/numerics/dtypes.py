"""Simulated low-precision dtypes on top of NumPy float32.

Mixed-precision LLM training (paper §2.2) keeps bf16/fp16 compute weights
plus fp32 master weights and fp32 Adam moments; a checkpoint is therefore
at least 7x the bf16 model size (2 B/param weights + 4+4+4 B/param
optimizer state).  NumPy has no bfloat16, so we simulate it bit-exactly:

* ``BF16`` values are float32 numbers whose low 16 mantissa bits are zero.
  :func:`quantize` rounds to nearest-even exactly as hardware bf16 does,
  and :func:`pack_bits`/:func:`unpack_bits` store only the upper 16 bits,
  so serialized tensors genuinely occupy 2 bytes per element.
* ``FP16`` uses NumPy's native float16 for quantization and packing.
* ``FP32`` is a passthrough.

All arithmetic in the library happens in float32; dtypes only control
quantization points (after optimizer steps) and serialized width.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["DType", "quantize", "pack_bits", "unpack_bits", "bf16_rne"]


class DType(enum.Enum):
    """Serialized/storage precision of a tensor."""

    FP32 = "fp32"
    BF16 = "bf16"
    FP16 = "fp16"

    @property
    def itemsize(self) -> int:
        """Bytes per element in storage form."""
        return {DType.FP32: 4, DType.BF16: 2, DType.FP16: 2}[self]

    @property
    def packed_numpy(self) -> np.dtype:
        """The dtype of the serialized buffer."""
        return {
            DType.FP32: np.dtype("<f4"),
            DType.BF16: np.dtype("<u2"),
            DType.FP16: np.dtype("<f2"),
        }[self]

    @classmethod
    def parse(cls, value: "DType | str") -> "DType":
        """Look up a dtype by name (``bf16``/``fp16``/``fp32``...)."""
        if isinstance(value, DType):
            return value
        try:
            return cls(value.lower())
        except ValueError as exc:
            valid = ", ".join(d.value for d in cls)
            raise ValueError(f"unknown dtype {value!r}; expected one of: {valid}") from exc


def bf16_rne(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Round float32 to bfloat16 (round-to-nearest-even), as float32.

    Works on the raw bit pattern: bf16 keeps the top 16 bits of the fp32
    representation.  RNE adds ``0x7FFF + lsb`` before truncation, which is
    exactly the rounding hardware performs.  NaNs are preserved (quiet).

    With ``out`` the rounded values are written into the caller's float32
    buffer (same number of elements as ``x``) and ``out`` is returned —
    the buffer-donating path the fused training step uses to re-quantize
    a whole parameter group without allocating a result per parameter.
    ``out`` may alias ``x``.
    """
    x = np.ascontiguousarray(x, dtype=np.float32)
    bits = x.view(np.uint32)
    nan_mask = np.isnan(x)
    lsb = (bits >> np.uint32(16)) & np.uint32(1)
    rounded = bits + np.uint32(0x7FFF) + lsb
    rounded &= np.uint32(0xFFFF0000)
    result = rounded.view(np.float32)  # fresh buffer, never aliases x/out
    if nan_mask.any():
        result[nan_mask] = np.float32(np.nan)
    if out is None:
        return result.reshape(x.shape)
    if out.dtype != np.float32 or out.size != x.size:
        raise ValueError(
            f"bf16_rne out= must be float32 with {x.size} elements, "
            f"got {out.dtype} with {out.size}"
        )
    # Elementwise assignment works for any out layout — reshaping a
    # non-contiguous out would silently write into a throwaway copy.
    out[...] = result.reshape(out.shape)
    return out


def quantize(
    x: np.ndarray, dtype: DType, out: np.ndarray | None = None
) -> np.ndarray:
    """Quantize a float32 array to the storage dtype, returned as float32.

    The result is the value that would survive a serialize/deserialize
    round trip at the given precision.  With ``out`` (a float32 buffer of
    the same number of elements) the result is written in place and
    ``out`` is returned, allocating nothing.
    """
    x = np.asarray(x, dtype=np.float32)
    if dtype is DType.FP32:
        if out is None:
            return x.copy()
        out[...] = x.reshape(out.shape)
        return out
    if dtype is DType.BF16:
        return bf16_rne(x, out=out)
    if dtype is DType.FP16:
        result = x.astype(np.float16).astype(np.float32)
        if out is None:
            return result
        out[...] = result.reshape(out.shape)
        return out
    raise AssertionError(f"unhandled dtype {dtype}")


def pack_bits(x: np.ndarray, dtype: DType) -> np.ndarray:
    """Convert float32 values into their serialized buffer representation.

    For BF16 the result is a uint16 array of the upper halves of the fp32
    bit patterns (after RNE rounding), i.e. a real 2-byte encoding.
    """
    x = np.ascontiguousarray(x, dtype=np.float32)
    if dtype is DType.FP32:
        return x.astype("<f4", copy=True)
    if dtype is DType.FP16:
        with np.errstate(over="ignore"):  # overflow to inf is fp16 semantics
            return x.astype("<f2")
    if dtype is DType.BF16:
        rounded = bf16_rne(x)
        return (rounded.view(np.uint32) >> np.uint32(16)).astype("<u2")
    raise AssertionError(f"unhandled dtype {dtype}")


def unpack_bits(buffer: np.ndarray, dtype: DType) -> np.ndarray:
    """Inverse of :func:`pack_bits`; always returns float32."""
    if dtype is DType.FP32:
        return np.asarray(buffer, dtype="<f4").astype(np.float32)
    if dtype is DType.FP16:
        return np.asarray(buffer, dtype="<f2").astype(np.float32)
    if dtype is DType.BF16:
        as_u16 = np.ascontiguousarray(buffer, dtype="<u2")
        expanded = as_u16.astype(np.uint32) << np.uint32(16)
        return expanded.view(np.float32).copy()
    raise AssertionError(f"unhandled dtype {dtype}")
