"""Selective checkpoint strategies: which slots to save at which step.

A strategy answers one question per training step: *"should we
checkpoint now, and if so, which layer slots?"* (``None`` = no
checkpoint, a list of slots = write a partial checkpoint with exactly
those).  Every decision is appended to a JSON decision log — the file
the paper's T1 workflow emits and T2 consumes to auto-generate a merge
recipe.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..nn.config import ModelConfig
from ..nn.module import Module
from ..util.errors import ConfigError
from ..util.jsonio import read_json, write_json_atomic

__all__ = ["CheckpointStrategy", "DecisionLog", "register_strategy", "build_strategy"]


@dataclass
class DecisionLog:
    """Append-only record of (step, slots) checkpoint decisions."""

    strategy: str
    records: list[dict[str, Any]] = field(default_factory=list)

    def add(self, step: int, slots: list[str]) -> None:
        """Record one checkpoint decision (step + slots saved)."""
        self.records.append({"step": int(step), "slots": list(slots)})

    def save(self, path: str | Path) -> None:
        """Write the decisions as JSON (atomic)."""
        write_json_atomic(path, {"strategy": self.strategy, "records": self.records})

    @classmethod
    def load(cls, path: str | Path) -> "DecisionLog":
        """Read a decision log written by :meth:`save`."""
        data = read_json(path)
        return cls(strategy=data.get("strategy", "?"), records=list(data.get("records", [])))

    def slots_saved_before(self, step: int) -> dict[str, int]:
        """Latest save step per slot at or before ``step``."""
        coverage: dict[str, int] = {}
        for record in sorted(self.records, key=lambda r: r["step"]):
            if record["step"] > step:
                break
            for slot in record["slots"]:
                coverage[slot] = record["step"]
        return coverage


class CheckpointStrategy(abc.ABC):
    """Base class; subclasses implement :meth:`slots_for_step`."""

    name: str = "base"

    def __init__(self, config: ModelConfig, interval: int) -> None:
        if interval < 1:
            raise ConfigError(f"checkpoint interval must be >= 1, got {interval}")
        self.config = config
        self.interval = interval
        self.log = DecisionLog(strategy=self.name)
        self._events_fired = 0

    # -- the decision ---------------------------------------------------------

    def is_checkpoint_step(self, step: int) -> bool:
        """Default cadence: every ``interval`` optimizer steps."""
        return step > 0 and step % self.interval == 0

    @abc.abstractmethod
    def slots_for_event(self, event_index: int, step: int, *, model: Module | None = None) -> list[str]:
        """Slots to save at the ``event_index``-th checkpoint event."""

    def plan_step(self, step: int, *, model: Module | None = None) -> list[str] | None:
        """Main entry: called once per optimizer step by the trainer."""
        if not self.is_checkpoint_step(step):
            return None
        slots = self.slots_for_event(self._events_fired, step, model=model)
        self._events_fired += 1
        self.log.add(step, slots)
        return slots

    # -- bookkeeping ------------------------------------------------------------

    def reset(self) -> None:
        """Clear decision state so a plan replay starts fresh."""
        self._events_fired = 0
        self.log = DecisionLog(strategy=self.name)

    def describe(self) -> dict[str, Any]:
        """Serializable description of the strategy and its knobs."""
        return {"strategy": self.name, "interval": self.interval}

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(interval={self.interval})"


_STRATEGIES: dict[str, type] = {}


def register_strategy(cls: type) -> type:
    """Class decorator: register a strategy under its ``name`` attribute."""
    name = getattr(cls, "name", None)
    if not name or name == "base":
        raise ConfigError(f"strategy class {cls.__name__} must define a unique 'name'")
    if name in _STRATEGIES:
        raise ConfigError(f"strategy {name!r} already registered")
    _STRATEGIES[name] = cls
    return cls


def build_strategy(name: str, config: ModelConfig, interval: int, **kwargs) -> CheckpointStrategy:
    """Construct a registered strategy by name with its kwargs."""
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown strategy {name!r}; available: {sorted(_STRATEGIES)}"
        ) from None
    return cls(config, interval, **kwargs)
