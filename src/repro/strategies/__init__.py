"""Selective checkpoint strategies and the analytic overhead planner."""

from .async_model import AsyncCheckpointModel, plan_strategy_async
from .base import CheckpointStrategy, DecisionLog, build_strategy, register_strategy
from .filtered import FilteredStrategy
from .full import FullStrategy
from .magnitude import UpdateMagnitudeStrategy
from .parity import ParityStrategy
from .planner import (
    OPTIMIZER_BYTES_PER_PARAM,
    ComputeCostModel,
    FaultCostPlan,
    MergeCostPlan,
    ReshardCostPlan,
    ServeCostPlan,
    StepTrafficPlan,
    StrategyPlan,
    checkpoint_event_nbytes,
    checkpoint_event_seconds,
    plan_fault_cost,
    plan_merge_cost,
    plan_reshard_cost,
    plan_serve_cost,
    plan_step_traffic,
    plan_strategy,
)

__all__ = [
    "AsyncCheckpointModel",
    "CheckpointStrategy",
    "ComputeCostModel",
    "DecisionLog",
    "FaultCostPlan",
    "FilteredStrategy",
    "FullStrategy",
    "MergeCostPlan",
    "OPTIMIZER_BYTES_PER_PARAM",
    "ParityStrategy",
    "ReshardCostPlan",
    "ServeCostPlan",
    "StepTrafficPlan",
    "StrategyPlan",
    "UpdateMagnitudeStrategy",
    "build_strategy",
    "checkpoint_event_nbytes",
    "checkpoint_event_seconds",
    "plan_fault_cost",
    "plan_merge_cost",
    "plan_reshard_cost",
    "plan_serve_cost",
    "plan_step_traffic",
    "plan_strategy",
    "plan_strategy_async",
    "register_strategy",
]
