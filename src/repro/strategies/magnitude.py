"""Update-magnitude checkpointing — the paper's "future work" strategy.

§5.3 closes by suggesting that *dynamic* strategies, which decide what
to checkpoint from observed training behaviour, should beat rule-based
ones.  This strategy implements the obvious candidate: track each
slot's relative weight drift since its last save and checkpoint only
slots whose drift exceeds a threshold (layers that "train faster" —
Zhou et al.'s non-uniform update observation — get saved more often).

A floor (``min_slots``) bounds recovery staleness, and slots that have
not been saved for ``max_staleness`` events are force-included.
"""

from __future__ import annotations

import numpy as np

from ..nn.config import ModelConfig
from ..nn.module import Module
from ..nn.slots import model_slots, slot_of_param
from ..util.errors import ConfigError
from .base import CheckpointStrategy, register_strategy

__all__ = ["UpdateMagnitudeStrategy"]


@register_strategy
class UpdateMagnitudeStrategy(CheckpointStrategy):
    name = "magnitude"

    def __init__(
        self,
        config: ModelConfig,
        interval: int,
        *,
        threshold: float = 0.01,
        min_slots: int = 1,
        max_staleness: int = 4,
    ) -> None:
        super().__init__(config, interval)
        if threshold < 0:
            raise ConfigError(f"threshold must be >= 0, got {threshold}")
        if max_staleness < 1:
            raise ConfigError(f"max_staleness must be >= 1, got {max_staleness}")
        self.threshold = threshold
        self.min_slots = min_slots
        self.max_staleness = max_staleness
        self._reference: dict[str, np.ndarray] = {}  # per-slot flat snapshot
        self._staleness: dict[str, int] = {}

    # -- drift measurement -----------------------------------------------------

    def _slot_vectors(self, model: Module) -> dict[str, np.ndarray]:
        by_slot: dict[str, list[np.ndarray]] = {}
        for name, param in model.named_parameters():
            by_slot.setdefault(slot_of_param(name), []).append(param.data.ravel())
        return {slot: np.concatenate(vs) for slot, vs in by_slot.items()}

    def slot_drift(self, model: Module) -> dict[str, float]:
        """Relative L2 drift of each slot since its last checkpoint."""
        current = self._slot_vectors(model)
        drift: dict[str, float] = {}
        for slot, vec in current.items():
            ref = self._reference.get(slot)
            if ref is None:
                drift[slot] = float("inf")  # never saved
            else:
                denom = float(np.linalg.norm(ref)) + 1e-12
                drift[slot] = float(np.linalg.norm(vec - ref)) / denom
        return drift

    def slots_for_event(self, event_index: int, step: int, *, model: Module | None = None) -> list[str]:
        all_slots = model_slots(self.config)
        if model is None:
            # Without model access the dynamic policy cannot measure
            # drift; degrade to full checkpointing rather than guess.
            return all_slots

        drift = self.slot_drift(model)
        chosen = [s for s in all_slots if drift.get(s, 0.0) > self.threshold]

        # Staleness floor: force slots that haven't been saved recently.
        for slot in all_slots:
            stale = self._staleness.get(slot, self.max_staleness)
            if stale >= self.max_staleness and slot not in chosen:
                chosen.append(slot)

        # Keep at least the min_slots largest drifts.
        if len(chosen) < self.min_slots:
            ranked = sorted(all_slots, key=lambda s: drift.get(s, 0.0), reverse=True)
            for slot in ranked:
                if slot not in chosen:
                    chosen.append(slot)
                if len(chosen) >= self.min_slots:
                    break

        chosen = [s for s in all_slots if s in set(chosen)]  # canonical order

        # Update references and staleness counters.
        current = self._slot_vectors(model)
        for slot in all_slots:
            if slot in chosen:
                self._reference[slot] = current[slot].copy()
                self._staleness[slot] = 0
            else:
                self._staleness[slot] = self._staleness.get(slot, 0) + 1
        return chosen

    def reset(self) -> None:
        """Drop drift references and staleness counters."""
        super().reset()
        self._reference.clear()
        self._staleness.clear()

    def describe(self) -> dict:
        """Base description plus threshold/floor/staleness knobs."""
        out = super().describe()
        out.update(
            threshold=self.threshold,
            min_slots=self.min_slots,
            max_staleness=self.max_staleness,
        )
        return out
