"""Parity checkpointing (paper use case 1, §5.2).

Alternate between two half-model snapshots:

* odd events  — odd transformer layers + ``embed_tokens``,
* even events — even transformer layers + ``lm_head`` (and ``norm``).

Merging the two most recent parity checkpoints reconstructs a complete
state, halving per-checkpoint storage.  The first event saves everything
(``initial_full``) so every slot is recoverable from step one — the
analogue of the pretrained base model being a complete snapshot.
"""

from __future__ import annotations

from ..nn.config import ModelConfig
from ..nn.module import Module
from ..nn.slots import EMBED, LM_HEAD, NORM, layer_slot, model_slots
from .base import CheckpointStrategy, register_strategy

__all__ = ["ParityStrategy"]


@register_strategy
class ParityStrategy(CheckpointStrategy):
    name = "parity"

    def __init__(self, config: ModelConfig, interval: int, *, initial_full: bool = True) -> None:
        super().__init__(config, interval)
        self.initial_full = initial_full

    def odd_set(self) -> list[str]:
        """Odd layers + embedding (saved at odd-numbered events)."""
        slots = [layer_slot(i) for i in range(self.config.num_hidden_layers) if i % 2 == 1]
        slots.append(EMBED)
        return slots

    def even_set(self) -> list[str]:
        """Even layers + lm_head (+ final norm)."""
        slots = [layer_slot(i) for i in range(self.config.num_hidden_layers) if i % 2 == 0]
        slots.append(NORM)
        if not self.config.tie_word_embeddings:
            slots.append(LM_HEAD)
        return slots

    def slots_for_event(self, event_index: int, step: int, *, model: Module | None = None) -> list[str]:
        if self.initial_full and event_index == 0:
            return model_slots(self.config)
        # After the optional full snapshot, alternate odd/even halves.
        phase = event_index - (1 if self.initial_full else 0)
        return self.odd_set() if phase % 2 == 0 else self.even_set()

    def describe(self) -> dict:
        """Base description plus the ``initial_full`` flag."""
        out = super().describe()
        out["initial_full"] = self.initial_full
        return out
