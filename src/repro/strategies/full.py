"""Full checkpointing: the paper's baseline (default HF behaviour).

Every ``interval`` steps, save every slot — the "saving the entire LLM
states" approach whose overhead motivates the paper.
"""

from __future__ import annotations

from ..nn.module import Module
from ..nn.slots import model_slots
from .base import CheckpointStrategy, register_strategy

__all__ = ["FullStrategy"]


@register_strategy
class FullStrategy(CheckpointStrategy):
    name = "full"

    def slots_for_event(self, event_index: int, step: int, *, model: Module | None = None) -> list[str]:
        return model_slots(self.config)
