"""Asynchronous (overlapped) checkpointing cost model.

The paper positions partial checkpointing as *composable* with prior
I/O optimizations — "the approaches are not mutually exclusive" (§5.1),
citing CheckFreq/Gemini/DataStates-style asynchronous writers.  This
module models that composition analytically:

* a blocking **snapshot** copies the step's state to host memory
  (training stalls for ``bytes / snapshot_bandwidth``);
* a background **flush** writes to storage overlapped with subsequent
  compute; if the next checkpoint event arrives before the previous
  flush drained, training stalls until it finishes (single in-flight
  flush, as in CheckFreq).

Combining a selective strategy (fewer bytes) with the async writer
(overlap) multiplies the savings — see the composability ablation
bench and ``plan_strategy_async``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..io.storage import StorageCostModel
from ..nn.config import ModelConfig
from .base import CheckpointStrategy
from .planner import (
    ComputeCostModel,
    StrategyPlan,
    checkpoint_event_nbytes,
    checkpoint_event_seconds,
)

__all__ = ["AsyncCheckpointModel", "plan_strategy_async"]


@dataclass(frozen=True)
class AsyncCheckpointModel:
    """Parameters of the overlapped checkpoint pipeline."""

    snapshot_bandwidth: float = 20.0e9  # bytes/s device->host copy

    def snapshot_seconds(self, nbytes: float) -> float:
        """Time to capture the in-memory snapshot of ``nbytes`` (the stall)."""
        return nbytes / self.snapshot_bandwidth


def plan_strategy_async(
    config: ModelConfig,
    strategy: CheckpointStrategy,
    *,
    total_steps: int,
    world_size: int = 8,
    tokens_per_step_per_gpu: float = 16384.0,
    storage: StorageCostModel | None = None,
    compute: ComputeCostModel | None = None,
    async_model: AsyncCheckpointModel | None = None,
) -> StrategyPlan:
    """Like :func:`plan_strategy` but with an overlapped writer.

    Per event, the charged time is the *stall*: any leftover flush from
    the previous event that didn't drain during the interval's compute
    window, plus the blocking snapshot.  The event's own flush then
    proceeds in the background.
    """
    from ..nn.slots import model_slots, slot_param_counts

    storage = storage or StorageCostModel()
    compute = compute or ComputeCostModel()
    async_model = async_model or AsyncCheckpointModel()
    strategy.reset()

    counts = slot_param_counts(config)
    num_params = sum(counts[s] for s in model_slots(config))
    step_seconds = compute.step_seconds(num_params, tokens_per_step_per_gpu)

    plan = StrategyPlan(
        strategy=f"{strategy.name}+async",
        total_steps=total_steps,
        interval=strategy.interval,
        train_seconds=step_seconds * total_steps,
    )
    pending_flush = 0.0  # background write seconds still outstanding
    last_event_step = 0
    for step in range(1, total_steps + 1):
        slots = strategy.plan_step(step)
        if slots is None:
            continue
        volume = checkpoint_event_nbytes(config, slots)
        write_seconds = checkpoint_event_seconds(
            config, slots, world_size=world_size, storage=storage
        )
        # The previous flush drained during this interval's compute.
        window = step_seconds * (step - last_event_step)
        leftover = max(0.0, pending_flush - window)
        stall = leftover + async_model.snapshot_seconds(volume["total_bytes"])
        pending_flush = write_seconds
        last_event_step = step
        plan.events.append(
            {
                "step": step,
                "slots": list(slots),
                "num_slots": len(slots),
                **volume,
                "seconds": stall,
                "write_seconds_background": write_seconds,
                "flush_leftover_stall": leftover,
            }
        )
    return plan
