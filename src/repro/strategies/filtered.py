"""Filtered checkpointing (paper use case 2, §5.3).

Motivated by the observation that the first few and last two layers
matter most for reasoning (Gromov et al.), each checkpoint event saves
only the first ``head_layers`` and last ``tail_layers`` transformer
layers; the middle layers (plus the large auxiliary layers) are saved
only every ``slow_factor`` events — half of them at a time, alternating
halves so coverage stays bounded.

With the paper's parameters (2+2 boundary layers, slow factor 5) this
yields roughly a 4.3x total-size reduction for Llama-3.1-8B.
"""

from __future__ import annotations

from ..nn.config import ModelConfig
from ..nn.module import Module
from ..nn.slots import EMBED, LM_HEAD, NORM, layer_slot, model_slots
from ..util.errors import ConfigError
from .base import CheckpointStrategy, register_strategy

__all__ = ["FilteredStrategy"]


@register_strategy
class FilteredStrategy(CheckpointStrategy):
    name = "filtered"

    def __init__(
        self,
        config: ModelConfig,
        interval: int,
        *,
        head_layers: int = 2,
        tail_layers: int = 2,
        slow_factor: int = 5,
        initial_full: bool = True,
    ) -> None:
        super().__init__(config, interval)
        L = config.num_hidden_layers
        if head_layers + tail_layers > L:
            raise ConfigError(
                f"head {head_layers} + tail {tail_layers} exceeds layer count {L}"
            )
        if slow_factor < 1:
            raise ConfigError(f"slow_factor must be >= 1, got {slow_factor}")
        self.head_layers = head_layers
        self.tail_layers = tail_layers
        self.slow_factor = slow_factor
        self.initial_full = initial_full

    # -- slot sets -----------------------------------------------------------

    def boundary_set(self) -> list[str]:
        """First ``head`` + last ``tail`` layers — saved every event."""
        L = self.config.num_hidden_layers
        head = [layer_slot(i) for i in range(self.head_layers)]
        tail = [layer_slot(i) for i in range(L - self.tail_layers, L)]
        return head + tail

    def middle_layers(self) -> list[int]:
        """Indices of the slowly-checkpointed middle layers."""
        L = self.config.num_hidden_layers
        return list(range(self.head_layers, L - self.tail_layers))

    def slow_set(self, phase: int) -> list[str]:
        """Alternating half of the middle layers plus the auxiliary slots."""
        middle = self.middle_layers()
        half = (len(middle) + 1) // 2
        chosen = middle[:half] if phase % 2 == 0 else middle[half:]
        slots = [layer_slot(i) for i in chosen]
        slots.append(EMBED)
        slots.append(NORM)
        if not self.config.tie_word_embeddings:
            slots.append(LM_HEAD)
        return slots

    def slots_for_event(self, event_index: int, step: int, *, model: Module | None = None) -> list[str]:
        if self.initial_full and event_index == 0:
            return model_slots(self.config)
        phase = event_index - (1 if self.initial_full else 0)
        slots = list(self.boundary_set())
        if phase % self.slow_factor == 0:
            slow_phase = phase // self.slow_factor
            for s in self.slow_set(slow_phase):
                if s not in slots:
                    slots.append(s)
        return slots

    def describe(self) -> dict:
        """Base description plus the head/tail/slow-factor shape."""
        out = super().describe()
        out.update(
            head_layers=self.head_layers,
            tail_layers=self.tail_layers,
            slow_factor=self.slow_factor,
            initial_full=self.initial_full,
        )
        return out
