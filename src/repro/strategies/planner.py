"""Analytic checkpoint-overhead planner (paper-scale Tables 3 and 6).

Computes, from a model config and a strategy alone (no training), the
byte volume and simulated time of every checkpoint event over a run —
usable for the full-scale published models that are never instantiated.

Cost anatomy per checkpoint (paper §2.2-2.3):

* weights: 2 bytes/param (bf16), consolidated file written serially;
* optimizer: 12 bytes/param (fp32 master + exp_avg + exp_avg_sq),
  sharded over ``world_size`` files written in parallel;
* total ≈ 14 bytes/param ≈ 7x the bf16 model — e.g. Llama-3.1-8B:
  ~112 GiB per full checkpoint, matching the paper's Table 7.

Step time uses the standard 6·P·tokens FLOPs estimate for training a
P-parameter decoder, divided by an effective per-GPU throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..io.storage import StorageCostModel
from ..nn.config import ModelConfig
from ..nn.slots import model_slots, parameter_shapes, slot_param_counts
from ..numerics.dtypes import DType
from .base import CheckpointStrategy

__all__ = [
    "OPTIMIZER_BYTES_PER_PARAM",
    "ComputeCostModel",
    "FaultCostPlan",
    "MergeCostPlan",
    "ReshardCostPlan",
    "ServeCostPlan",
    "StepTrafficPlan",
    "StrategyPlan",
    "checkpoint_event_nbytes",
    "checkpoint_event_seconds",
    "plan_fault_cost",
    "plan_merge_cost",
    "plan_reshard_cost",
    "plan_serve_cost",
    "plan_step_traffic",
    "plan_strategy",
]

# fp32 master + exp_avg + exp_avg_sq.
OPTIMIZER_BYTES_PER_PARAM = 12


@dataclass(frozen=True)
class ComputeCostModel:
    """Per-step training time from FLOPs (for the simulated clock)."""

    flops_per_gpu: float = 1.4e14  # effective bf16 throughput (A100-ish)

    def step_seconds(self, num_params: float, tokens_per_step_per_gpu: float) -> float:
        # Forward + backward of a decoder: ~6 FLOPs per parameter per token.
        """Seconds per optimizer step from the 6·P·tokens FLOPs estimate."""
        return 6.0 * num_params * tokens_per_step_per_gpu / self.flops_per_gpu


def checkpoint_event_nbytes(
    config: ModelConfig, slots: list[str], *, dtype: DType | None = None
) -> dict[str, int]:
    """Bytes written by one checkpoint event saving the given slots."""
    dtype = dtype or config.storage_dtype
    counts = slot_param_counts(config)
    params = sum(counts[s] for s in slots)
    weight_bytes = params * dtype.itemsize
    optim_bytes = params * OPTIMIZER_BYTES_PER_PARAM
    return {
        "params": params,
        "weight_bytes": weight_bytes,
        "optim_bytes": optim_bytes,
        "total_bytes": weight_bytes + optim_bytes,
    }


def checkpoint_event_seconds(
    config: ModelConfig,
    slots: list[str],
    *,
    world_size: int,
    storage: StorageCostModel,
    dtype: DType | None = None,
) -> float:
    """Simulated wall time of one checkpoint event.

    The consolidated weight file is written by rank 0 alone; the
    ``world_size`` optimizer shards are written concurrently — the two
    phases are sequential (weights consolidate after the step, shards
    follow), as in the DeepSpeed save path.
    """
    volume = checkpoint_event_nbytes(config, slots, dtype=dtype)
    t_weights = storage.write_time(volume["weight_bytes"], files=1, parallel=1)
    t_optim = storage.write_time(
        volume["optim_bytes"], files=world_size, parallel=world_size
    )
    return t_weights + t_optim


@dataclass(frozen=True)
class StepTrafficPlan:
    """Per-optimizer-step collective traffic under the ring cost model.

    This is the analytic twin of the live accounting in
    :class:`repro.dist.comm.CommStats`: every training step the ZeRO-3
    engine reduce-scatters each group's padded fp32 gradient and
    all-gathers the updated masters, each moving ``(n-1)/n`` of the
    buffer per rank around the ring.  ``llmtailor plan`` prints it so the
    sharding tax of a world size is visible without running anything.
    """

    world_size: int
    num_groups: int
    padded_numel: int  # sum of per-group padded group sizes
    reduce_scatter_bytes: float  # per step, per rank
    all_gather_bytes: float  # per step, per rank
    #: Topology shape (e.g. ``"2x4"``) for a hierarchical plan, else None.
    topology: str | None = None
    #: ``{op: {"intra": bytes, "inter": bytes}}`` under a topology — the
    #: analytic twin of HierComm's ``<op>/<link_class>`` charges; the
    #: headline per-op fields above are then the class sums.
    link_bytes: dict | None = None

    @property
    def total_bytes(self) -> float:
        """Reduce-scatter plus all-gather bytes per step, per rank."""
        return self.reduce_scatter_bytes + self.all_gather_bytes

    def class_bytes(self, link_class: str) -> float:
        """Per-step bytes on one link class (0.0 for a flat plan)."""
        if not self.link_bytes:
            return 0.0
        return float(sum(split[link_class] for split in self.link_bytes.values()))

    def describe(self) -> dict:
        """Flat dict form (for tables and JSON artifacts)."""
        out = {
            "world_size": self.world_size,
            "num_groups": self.num_groups,
            "padded_numel": self.padded_numel,
            "reduce_scatter_bytes": self.reduce_scatter_bytes,
            "all_gather_bytes": self.all_gather_bytes,
            "total_bytes": self.total_bytes,
        }
        if self.topology is not None:
            out["topology"] = self.topology
            for op, split in (self.link_bytes or {}).items():
                for link_class, value in split.items():
                    out[f"{op}_{link_class}_bytes"] = value
        return out


def plan_step_traffic(
    config: ModelConfig,
    *,
    world_size: int,
    weight_decay: float = 0.01,
    topology=None,
) -> StepTrafficPlan:
    """Ring-model bytes one optimizer step moves at the given world size.

    Derived from the tailored 2L+x group layout analytically (no model
    instantiation): each group's flat fp32 gradient is padded to a
    multiple of ``world_size``, reduce-scattered, and the updated master
    all-gathered — ``2 * (n-1)/n * 4 * padded_numel`` bytes per step in
    total.  At ``world_size == 1`` every collective is local and the
    traffic is zero, matching :class:`repro.dist.comm.SimComm`.

    With ``topology`` (a :class:`~repro.dist.topology.Topology`) the
    same payload is split per link class through
    :meth:`~repro.dist.topology.Topology.collective_bytes` — the exact
    formulas :class:`~repro.dist.topology.HierComm` charges live — and
    the per-op fields become class sums (``link_bytes`` carries the
    breakdown).
    """
    from ..core.groups import tailored_group_specs  # lazy: avoids a cycle

    shapes = parameter_shapes(config)
    specs = tailored_group_specs(config, weight_decay)
    padded_total = 0
    for spec in specs:
        numel = sum(math.prod(shapes[name]) for name in spec.param_names)
        padded_total += -(-numel // world_size) * world_size
    payload = 4.0 * padded_total  # fp32 buffers
    if topology is None:
        per_collective = (world_size - 1) / world_size * payload
        return StepTrafficPlan(
            world_size=world_size,
            num_groups=len(specs),
            padded_numel=padded_total,
            reduce_scatter_bytes=per_collective,
            all_gather_bytes=per_collective,
        )
    scatter = topology.collective_bytes("reduce_scatter", payload, world_size)
    gather = topology.collective_bytes("all_gather", payload, world_size)
    return StepTrafficPlan(
        world_size=world_size,
        num_groups=len(specs),
        padded_numel=padded_total,
        reduce_scatter_bytes=scatter["intra"] + scatter["inter"],
        all_gather_bytes=gather["intra"] + gather["inter"],
        topology=topology.shape,
        link_bytes={"reduce_scatter": scatter, "all_gather": gather},
    )


@dataclass
class MergeCostPlan:
    """Analytic LLMTailor merge cost at paper scale (extends Table 7).

    Mirrors the real engine's knobs: ``cache_mode`` fixes the load
    schedule (one load per checkpoint vs one per layer slot), ``workers``
    fans rank shards across processes, and ``stream`` switches decode
    cost from *every* group of every loaded shard to only the groups the
    plan takes from that load.  I/O is charged through the same
    :class:`StorageCostModel` the checkpoint planner uses.
    """

    model: str
    world_size: int
    num_checkpoints: int
    cache_mode: str
    workers: int
    stream: bool
    loads_per_rank: int
    bytes_loaded: int
    bytes_decoded: int
    bytes_written: int
    seconds: float

    def describe(self) -> dict:
        """Flat dict form (for tables and JSON artifacts)."""
        return dict(self.__dict__)


def plan_merge_cost(
    config: ModelConfig,
    *,
    world_size: int = 8,
    num_checkpoints: int = 2,
    cache_mode: str = "per-checkpoint",
    workers: int = 1,
    stream: bool = False,
    storage: StorageCostModel | None = None,
) -> MergeCostPlan:
    """Estimate the wall time of merging ``num_checkpoints`` sources.

    Works from the config alone (no files), so the published-model
    scales in the paper can be planned without instantiating anything.
    """
    storage = storage or StorageCostModel()
    counts = slot_param_counts(config)
    slots = model_slots(config)
    num_params = sum(counts[s] for s in slots)
    optim_bytes = num_params * OPTIMIZER_BYTES_PER_PARAM
    shard_bytes = optim_bytes // max(1, world_size)

    loads_per_rank = len(slots) if cache_mode == "none" else max(1, num_checkpoints)
    bytes_loaded_rank = loads_per_rank * shard_bytes
    # Serial decode materializes every group of every load; streaming only
    # the groups taken from it — across all loads that sums to one shard.
    bytes_decoded_rank = shard_bytes if stream else bytes_loaded_rank

    read_s = storage.read_time(bytes_loaded_rank, files=loads_per_rank, parallel=1)
    decode_s = bytes_decoded_rank / storage.decompress_bandwidth
    write_s = storage.write_time(shard_bytes, files=1, parallel=1)
    per_rank_s = read_s + decode_s + write_s
    waves = -(-world_size // max(1, workers))  # ceil division
    optim_s = per_rank_s * waves

    # Weight merge: lazy per-tensor copies, read + write of the bf16 file.
    weight_bytes = num_params * config.storage_dtype.itemsize
    weights_s = storage.read_time(weight_bytes, files=num_checkpoints) + storage.write_time(
        weight_bytes, files=1
    )

    return MergeCostPlan(
        model=config.name,
        world_size=world_size,
        num_checkpoints=num_checkpoints,
        cache_mode=cache_mode,
        workers=workers,
        stream=stream,
        loads_per_rank=loads_per_rank,
        bytes_loaded=bytes_loaded_rank * world_size,
        bytes_decoded=bytes_decoded_rank * world_size,
        bytes_written=shard_bytes * world_size + weight_bytes,
        seconds=optim_s + weights_s,
    )


@dataclass
class ReshardCostPlan:
    """Analytic elastic-reshard cost at paper scale.

    Mirrors :func:`repro.dist.reshard.reshard_checkpoint`'s knobs.  The
    streaming engine's load count follows from interval intersections of
    two even partitions — ``N + M - gcd(N, M)`` group-transfer reads —
    plus one metadata pass over source rank 0, fanned over ``workers``
    target-rank transfers.  ``peak_bytes`` is the memory guarantee, not
    a time input: one target shard plus one source shard *per concurrent
    worker* when streaming, the whole optimizer state (plus one
    target-rank copy) when materializing.
    """

    model: str
    source_world_size: int
    target_world_size: int
    stream: bool
    workers: int
    loads: int
    bytes_loaded: int
    bytes_written: int
    peak_bytes: int
    seconds: float
    #: Topology shape (e.g. ``"2x4"``) for a placement-aware plan, else None.
    topology: str | None = None
    #: Logical shard-move bytes per link class (12 bytes per overlapped
    #: element; exactly the live ``ReshardReport`` counters).
    intra_bytes: int = 0
    inter_bytes: int = 0
    #: Network-transfer seconds per link class at the topology's
    #: bandwidths (a fabric view of the same move; the storage-model
    #: ``seconds`` above remains the wall-time estimate).
    intra_seconds: float = 0.0
    inter_seconds: float = 0.0

    def describe(self) -> dict:
        """Flat dict form (for tables and JSON artifacts)."""
        return dict(self.__dict__)


def plan_reshard_cost(
    config: ModelConfig,
    *,
    source_world_size: int = 8,
    target_world_size: int = 1,
    workers: int = 1,
    stream: bool = True,
    storage: StorageCostModel | None = None,
    topology=None,
    weight_decay: float = 0.01,
) -> ReshardCostPlan:
    """Estimate the wall time and peak memory of an N→M reshard.

    Works from the config alone (no files), like :func:`plan_merge_cost`,
    so published-model scales can be planned without instantiating
    anything.  Weights are not charged: the consolidated weight file is
    world-size independent and carried over verbatim.

    With ``topology`` (a :class:`~repro.dist.topology.Topology`) the plan
    gains per-link-class byte and transfer-second breakdowns, computed by
    the same :func:`repro.dist.reshard.placement_transfer_bytes` the live
    :class:`~repro.dist.reshard.ReshardReport` counts — the two match
    exactly, byte for byte.  ``weight_decay`` only affects the tailored
    group split the interval math runs over (pass the training run's
    value; the default matches :class:`~repro.train.config.TrainConfig`).
    """
    if source_world_size < 1 or target_world_size < 1:
        raise ValueError("world sizes must be >= 1")
    storage = storage or StorageCostModel()
    counts = slot_param_counts(config)
    num_params = sum(counts[s] for s in model_slots(config))
    optim_bytes = num_params * OPTIMIZER_BYTES_PER_PARAM
    N, M = int(source_world_size), int(target_world_size)
    src_shard = optim_bytes // N
    dst_shard = optim_bytes // M

    parallel = min(workers, M)
    if stream:
        # One selective read per intersecting (target, source) rank
        # pair, plus the headers/hyperparams metadata pass over rank 0.
        loads = N + M - math.gcd(N, M) + 1
        # Each concurrent target-rank transfer holds its own target
        # shard plus one source shard's selected groups.
        peak_bytes = parallel * (dst_shard + src_shard)
    else:
        loads = N
        peak_bytes = optim_bytes + dst_shard
    bytes_loaded = loads * src_shard
    read_s = storage.read_time(
        bytes_loaded, files=loads, parallel=parallel, decompress=True
    )
    write_s = storage.write_time(optim_bytes, files=M, parallel=parallel)
    intra_bytes = inter_bytes = 0
    intra_s = inter_s = 0.0
    if topology is not None:
        # Lazy: repro.dist.reshard pulls in repro.io at import time.
        from ..core.groups import tailored_group_specs
        from ..dist.reshard import placement_transfer_bytes

        shapes = parameter_shapes(config)
        numels = [
            sum(math.prod(shapes[name]) for name in spec.param_names)
            for spec in tailored_group_specs(config, weight_decay)
        ]
        intra_bytes, inter_bytes = placement_transfer_bytes(numels, N, M, topology)
        intra_s = intra_bytes / topology.intra_bandwidth
        inter_s = inter_bytes / topology.inter_bandwidth
    return ReshardCostPlan(
        model=config.name,
        source_world_size=N,
        target_world_size=M,
        stream=bool(stream),
        workers=int(workers),
        loads=loads,
        bytes_loaded=bytes_loaded,
        bytes_written=dst_shard * M,
        peak_bytes=peak_bytes,
        seconds=read_s + write_s,
        topology=None if topology is None else topology.shape,
        intra_bytes=intra_bytes,
        inter_bytes=inter_bytes,
        intra_seconds=intra_s,
        inter_seconds=inter_s,
    )


@dataclass
class FaultCostPlan:
    """Analytic cost of running a fault plan (expected chaos overhead).

    The executable twin of a :class:`~repro.train.trainer.ChaosSupervisor`
    run over a *full*-strategy checkpoint cadence: the executed-step
    trace (including replays after each failure and elastic grows at
    each join) is reconstructed from the schedule, so ``lost_steps``,
    ``reshard_loads``, and the straggler/degraded-link clock charges
    match a live run exactly — ``tests/test_faults.py`` validates them
    against the live :class:`~repro.dist.faults.FaultTimeline` and
    simulated clock — and so does the predicted goodput
    (:meth:`goodput_report`), whose denominator is built from those
    exact quantities.  ``reshard_bytes`` is an *uncompressed* estimate
    (12 bytes/param per elastic load); live shard files are compressed,
    so only the analytic side is byte-exact.  The recovery I/O seconds
    (``recovery_read_seconds``, ``sync_write_seconds``) are estimates
    for the same reason, which is why :class:`GoodputReport
    <repro.dist.faults.GoodputReport>` keeps them out of the goodput
    denominator.
    """

    model: str
    world_size: int
    final_world_size: int
    total_steps: int
    checkpoint_interval: int
    num_failures: int
    num_joins: int
    executed_steps: int
    lost_steps: int
    reshard_loads: int
    reshard_bytes: int
    straggler_seconds: float
    comm_seconds: float
    replay_seconds: float
    recovery_read_seconds: float
    sync_write_seconds: float
    sim_step_seconds: float
    #: Topology shape (e.g. ``"2x4"``) for a hierarchical plan, else None.
    topology: str | None = None

    @property
    def useful_steps(self) -> int:
        """Executed steps that survive into the final state."""
        return self.executed_steps - self.lost_steps

    @property
    def overhead_seconds(self) -> float:
        """Extra simulated time the faults cost vs a clean run."""
        return (
            self.straggler_seconds
            + self.replay_seconds
            + self.recovery_read_seconds
            + self.sync_write_seconds
        )

    def goodput_report(self):
        """Predicted :class:`~repro.dist.faults.GoodputReport`.

        Built from the replayed trace the same way the supervisor
        builds the live one, so goodput inherits the exactness
        contract: step counts exact, stall seconds to the comm model's
        1e-6, recovery I/O an estimate kept out of the denominator.
        """
        from ..dist.faults import GoodputReport

        return GoodputReport(
            useful_steps=self.useful_steps,
            lost_steps=self.lost_steps,
            useful_seconds=self.useful_steps * self.sim_step_seconds,
            lost_seconds=self.replay_seconds,
            stall_seconds=self.straggler_seconds + self.comm_seconds,
            recovery_seconds=self.recovery_read_seconds + self.sync_write_seconds,
        )

    @property
    def goodput(self) -> float:
        """Predicted useful steps per simulated stepping second."""
        return self.goodput_report().goodput

    def describe(self) -> dict:
        """Flat dict form (for tables and JSON artifacts)."""
        out = dict(self.__dict__)
        out["overhead_seconds"] = self.overhead_seconds
        out["useful_steps"] = self.useful_steps
        out["goodput"] = self.goodput
        return out


def plan_fault_cost(
    config: ModelConfig,
    plan,
    *,
    world_size: int,
    total_steps: int,
    checkpoint_interval: int,
    sim_step_seconds: float = 1.0,
    link_bandwidth: float | None = None,
    storage: StorageCostModel | None = None,
    topology=None,
) -> FaultCostPlan:
    """Expected lost steps, reshard traffic, and slowdown cost of a plan.

    Replays the fault schedule analytically over a full-strategy run
    (failures, joins, and preemptions expanded via
    :meth:`~repro.dist.faults.FaultPlan.world_events`):

    * each ``rank_failure`` at step *k* rolls back to the newest
      checkpoint at or before *k* — a cadence write or a join-sync —
      replaying the difference and shrinking the world by one;
    * each ``rank_join`` at step *k* syncs a complete checkpoint at *k*
      (free when the cadence just wrote one), grows the world by one,
      and resumes through the elastic reshard path losing no steps;
    * resuming a checkpoint written at a different world size charges
      one elastic-reshard load per source shard;
    * stragglers charge ``(slowdown - 1) * sim_step_seconds`` on every
      *executed* step in their window (replayed steps pay again, as
      they do live);
    * collectives charge ring-model bytes over ``link_bandwidth``,
      scaled by the worst active straggler/degraded-link factor.

    With ``topology`` (a :class:`~repro.dist.topology.Topology`) the
    replay prices the hierarchical model instead: per-link-class step
    bytes (:func:`plan_step_traffic` with ``topology=``) over that
    class's bandwidth, each scaled by only the faults that touch links
    of that class — exactly how a live
    :class:`~repro.dist.faults.ChaosComm` over a hierarchical
    communicator advances the clock, so predicted and live comm seconds
    agree to 1e-6.  ``node_failure`` events expand through the same
    :meth:`~repro.dist.faults.FaultPlan.world_events` the supervisor
    consumes; ``link_bandwidth`` is ignored when a topology is given
    (the topology's per-class bandwidths take over).

    Works from the config alone, like the other planners, so paper-scale
    fleets can be planned without instantiating anything.
    """
    from ..dist.faults import DEFAULT_LINK_BANDWIDTH

    if checkpoint_interval < 1:
        raise ValueError(f"checkpoint_interval must be >= 1, got {checkpoint_interval}")
    plan.validate(world_size, total_steps, topology=topology)
    storage = storage or StorageCostModel()
    bandwidth = link_bandwidth if link_bandwidth is not None else DEFAULT_LINK_BANDWIDTH

    counts = slot_param_counts(config)
    num_params = sum(counts[s] for s in model_slots(config))
    optim_bytes = num_params * OPTIMIZER_BYTES_PER_PARAM
    weight_bytes = num_params * config.storage_dtype.itemsize

    # Reconstruct the executed-step trace: segments of (start, end, ws),
    # end inclusive, with the on-disk world size of every checkpoint
    # (cadence writes and join-sync writes alike).
    segments: list[tuple[int, int, int]] = []
    ckpt_ws: dict[int, int] = {}
    ws = world_size
    start = 1
    lost = 0
    num_failures = 0
    num_joins = 0
    reshard_loads = 0
    reshard_bytes = 0
    recovery_read_s = 0.0
    sync_write_s = 0.0
    for ev in plan.world_events(topology):
        # A pending event whose slot was passed during a replay fires at
        # the first step of the new leg, exactly as the callback does; an
        # event pushed past the horizon (or a restore scheduled beyond
        # it) never fires at all.
        k = max(ev.step, start)
        if k > total_steps:
            continue
        segments.append((start, k, ws))
        for s in range(-(-start // checkpoint_interval) * checkpoint_interval,
                       k + 1, checkpoint_interval):
            ckpt_ws[s] = ws
        if ev.kind == "rank_join":
            num_joins += 1
            if ckpt_ws.get(k) != ws:
                # The supervisor writes a full sync checkpoint at the
                # join step unless the leg just wrote a complete one.
                ckpt_ws[k] = ws
                sync_write_s += storage.write_time(
                    optim_bytes, files=ws, parallel=ws
                ) + storage.write_time(weight_bytes, files=1)
            recovery_read_s += storage.read_time(
                optim_bytes, files=ws, parallel=ws, decompress=True
            ) + storage.read_time(weight_bytes, files=1)
            reshard_loads += ws
            reshard_bytes += optim_bytes
            ws += 1
            start = k + 1
            continue
        num_failures += 1
        j = max((s for s in ckpt_ws if s <= k), default=0)
        lost += k - j
        ws -= 1
        if j > 0:
            source_world = ckpt_ws[j]
            recovery_read_s += storage.read_time(
                optim_bytes, files=source_world, parallel=source_world,
                decompress=True,
            ) + storage.read_time(weight_bytes, files=1)
            if source_world != ws:
                reshard_loads += source_world
                reshard_bytes += optim_bytes
        start = j + 1
    if start <= total_steps:
        segments.append((start, total_steps, ws))

    # Per-step penalties over the executed trace.
    executed = 0
    straggler_s = 0.0
    comm_s = 0.0
    traffic_by_ws: dict[int, StepTrafficPlan] = {}
    for seg_start, seg_end, seg_ws in segments:
        if seg_ws not in traffic_by_ws:
            traffic_by_ws[seg_ws] = plan_step_traffic(
                config, world_size=seg_ws, topology=topology
            )
        traffic = traffic_by_ws[seg_ws]
        for step in range(seg_start, seg_end + 1):
            executed += 1
            slowdown = plan.compute_slowdown(step, seg_ws)
            if slowdown > 1.0:
                straggler_s += (slowdown - 1.0) * sim_step_seconds
            if topology is None:
                comm_s += (
                    traffic.total_bytes / bandwidth
                    * plan.comm_slowdown(step, seg_ws)
                )
            else:
                for link_class in ("intra", "inter"):
                    comm_s += (
                        traffic.class_bytes(link_class)
                        / topology.bandwidth(link_class)
                        * plan.comm_slowdown(
                            step, seg_ws,
                            topology=topology, link_class=link_class,
                        )
                    )

    return FaultCostPlan(
        model=config.name,
        world_size=world_size,
        final_world_size=ws,
        total_steps=total_steps,
        checkpoint_interval=checkpoint_interval,
        num_failures=num_failures,
        num_joins=num_joins,
        executed_steps=executed,
        lost_steps=lost,
        reshard_loads=reshard_loads,
        reshard_bytes=reshard_bytes,
        straggler_seconds=straggler_s,
        comm_seconds=comm_s,
        replay_seconds=lost * sim_step_seconds,
        recovery_read_seconds=recovery_read_s,
        sync_write_seconds=sync_write_s,
        sim_step_seconds=sim_step_seconds,
        topology=None if topology is None else topology.shape,
    )


@dataclass
class StrategyPlan:
    """Outcome of simulating a strategy over a training run."""

    strategy: str
    total_steps: int
    interval: int
    events: list[dict] = field(default_factory=list)  # step, slots, bytes, seconds
    train_seconds: float = 0.0

    @property
    def num_events(self) -> int:
        """Number of checkpoint events over the planned run."""
        return len(self.events)

    @property
    def total_bytes(self) -> int:
        """Total bytes written across all checkpoint events."""
        return sum(e["total_bytes"] for e in self.events)

    @property
    def checkpoint_seconds(self) -> float:
        """Total simulated seconds spent writing checkpoints."""
        return sum(e["seconds"] for e in self.events)

    @property
    def checkpoint_time_fraction(self) -> float:
        """The paper's "proportion of checkpoint time" metric."""
        total = self.train_seconds + self.checkpoint_seconds
        return self.checkpoint_seconds / total if total else 0.0


def plan_strategy(
    config: ModelConfig,
    strategy: CheckpointStrategy,
    *,
    total_steps: int,
    world_size: int = 8,
    tokens_per_step_per_gpu: float = 16384.0,
    storage: StorageCostModel | None = None,
    compute: ComputeCostModel | None = None,
) -> StrategyPlan:
    """Replay a strategy's decisions analytically over ``total_steps``.

    The strategy is reset first so the plan is deterministic; dynamic
    strategies degrade to their model-free behaviour (documented as full
    checkpointing) since no weights exist here.
    """
    storage = storage or StorageCostModel()
    compute = compute or ComputeCostModel()
    strategy.reset()

    counts = slot_param_counts(config)
    num_params = sum(counts[s] for s in model_slots(config))
    step_seconds = compute.step_seconds(num_params, tokens_per_step_per_gpu)

    plan = StrategyPlan(
        strategy=strategy.name,
        total_steps=total_steps,
        interval=strategy.interval,
        train_seconds=step_seconds * total_steps,
    )
    for step in range(1, total_steps + 1):
        slots = strategy.plan_step(step)
        if slots is None:
            continue
        volume = checkpoint_event_nbytes(config, slots)
        seconds = checkpoint_event_seconds(
            config, slots, world_size=world_size, storage=storage
        )
        plan.events.append(
            {
                "step": step,
                "slots": list(slots),
                "num_slots": len(slots),
                **volume,
                "seconds": seconds,
            }
        )
    return plan


@dataclass(frozen=True)
class ServeCostPlan:
    """Admission-control accounting for a serve job file, job by job.

    The offline twin of the merge service's admission pass: each entry
    is exactly the :class:`~repro.serve.admission.JobCost` the live
    daemon would charge for that job (same estimator, same storage
    model), so ``llmtailor plan --serve JOBFILE`` predicts byte-for-byte
    what submitting the file will cost each tenant — the job-file
    analogue of :func:`plan_step_traffic` and :func:`plan_fault_cost`.
    """

    job_file: str
    entries: tuple[dict, ...]  # {tenant, kind, priority, cost: {...}}

    @property
    def total_bytes(self) -> int:
        """Summed byte footprint charged against tenant quotas."""
        return sum(e["cost"]["total_bytes"] for e in self.entries)

    @property
    def total_seconds(self) -> float:
        """Summed estimated seconds across all jobs."""
        return sum(e["cost"]["est_seconds"] for e in self.entries)

    def per_tenant(self) -> dict[str, dict]:
        """Aggregate {jobs, total_bytes, est_seconds} per tenant."""
        out: dict[str, dict] = {}
        for e in self.entries:
            t = out.setdefault(
                e["tenant"], {"jobs": 0, "total_bytes": 0, "est_seconds": 0.0}
            )
            t["jobs"] += 1
            t["total_bytes"] += e["cost"]["total_bytes"]
            t["est_seconds"] += e["cost"]["est_seconds"]
        return out


def plan_serve_cost(
    job_file, *, storage: StorageCostModel | None = None
) -> ServeCostPlan:
    """Estimate what admission control will charge for a job file.

    Loads the jobs and prices each through
    :func:`~repro.serve.admission.estimate_job_cost` — the *same*
    function the live server calls on submit, with the same default
    storage model — so the printed numbers match the server's
    accounting exactly.
    """
    # Lazy: repro.serve imports this module at package import time.
    from ..serve.admission import estimate_job_cost
    from ..serve.protocol import load_job_file

    entries = []
    for spec in load_job_file(job_file):
        cost = estimate_job_cost(spec, storage=storage)
        entries.append(
            {
                "tenant": spec.tenant,
                "kind": spec.kind,
                "priority": spec.priority,
                "cost": cost.describe(),
            }
        )
    return ServeCostPlan(job_file=str(job_file), entries=tuple(entries))
