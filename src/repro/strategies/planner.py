"""Analytic checkpoint-overhead planner (paper-scale Tables 3 and 6).

Computes, from a model config and a strategy alone (no training), the
byte volume and simulated time of every checkpoint event over a run —
usable for the full-scale published models that are never instantiated.

Cost anatomy per checkpoint (paper §2.2-2.3):

* weights: 2 bytes/param (bf16), consolidated file written serially;
* optimizer: 12 bytes/param (fp32 master + exp_avg + exp_avg_sq),
  sharded over ``world_size`` files written in parallel;
* total ≈ 14 bytes/param ≈ 7x the bf16 model — e.g. Llama-3.1-8B:
  ~112 GiB per full checkpoint, matching the paper's Table 7.

Step time uses the standard 6·P·tokens FLOPs estimate for training a
P-parameter decoder, divided by an effective per-GPU throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..io.storage import StorageCostModel
from ..nn.config import ModelConfig
from ..nn.slots import model_slots, slot_param_counts
from ..numerics.dtypes import DType
from .base import CheckpointStrategy

__all__ = [
    "OPTIMIZER_BYTES_PER_PARAM",
    "ComputeCostModel",
    "StrategyPlan",
    "checkpoint_event_nbytes",
    "checkpoint_event_seconds",
    "plan_strategy",
]

# fp32 master + exp_avg + exp_avg_sq.
OPTIMIZER_BYTES_PER_PARAM = 12


@dataclass(frozen=True)
class ComputeCostModel:
    """Per-step training time from FLOPs (for the simulated clock)."""

    flops_per_gpu: float = 1.4e14  # effective bf16 throughput (A100-ish)

    def step_seconds(self, num_params: float, tokens_per_step_per_gpu: float) -> float:
        # Forward + backward of a decoder: ~6 FLOPs per parameter per token.
        return 6.0 * num_params * tokens_per_step_per_gpu / self.flops_per_gpu


def checkpoint_event_nbytes(
    config: ModelConfig, slots: list[str], *, dtype: DType | None = None
) -> dict[str, int]:
    """Bytes written by one checkpoint event saving the given slots."""
    dtype = dtype or config.storage_dtype
    counts = slot_param_counts(config)
    params = sum(counts[s] for s in slots)
    weight_bytes = params * dtype.itemsize
    optim_bytes = params * OPTIMIZER_BYTES_PER_PARAM
    return {
        "params": params,
        "weight_bytes": weight_bytes,
        "optim_bytes": optim_bytes,
        "total_bytes": weight_bytes + optim_bytes,
    }


def checkpoint_event_seconds(
    config: ModelConfig,
    slots: list[str],
    *,
    world_size: int,
    storage: StorageCostModel,
    dtype: DType | None = None,
) -> float:
    """Simulated wall time of one checkpoint event.

    The consolidated weight file is written by rank 0 alone; the
    ``world_size`` optimizer shards are written concurrently — the two
    phases are sequential (weights consolidate after the step, shards
    follow), as in the DeepSpeed save path.
    """
    volume = checkpoint_event_nbytes(config, slots, dtype=dtype)
    t_weights = storage.write_time(volume["weight_bytes"], files=1, parallel=1)
    t_optim = storage.write_time(
        volume["optim_bytes"], files=world_size, parallel=world_size
    )
    return t_weights + t_optim


@dataclass
class StrategyPlan:
    """Outcome of simulating a strategy over a training run."""

    strategy: str
    total_steps: int
    interval: int
    events: list[dict] = field(default_factory=list)  # step, slots, bytes, seconds
    train_seconds: float = 0.0

    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def total_bytes(self) -> int:
        return sum(e["total_bytes"] for e in self.events)

    @property
    def checkpoint_seconds(self) -> float:
        return sum(e["seconds"] for e in self.events)

    @property
    def checkpoint_time_fraction(self) -> float:
        """The paper's "proportion of checkpoint time" metric."""
        total = self.train_seconds + self.checkpoint_seconds
        return self.checkpoint_seconds / total if total else 0.0


def plan_strategy(
    config: ModelConfig,
    strategy: CheckpointStrategy,
    *,
    total_steps: int,
    world_size: int = 8,
    tokens_per_step_per_gpu: float = 16384.0,
    storage: StorageCostModel | None = None,
    compute: ComputeCostModel | None = None,
) -> StrategyPlan:
    """Replay a strategy's decisions analytically over ``total_steps``.

    The strategy is reset first so the plan is deterministic; dynamic
    strategies degrade to their model-free behaviour (documented as full
    checkpointing) since no weights exist here.
    """
    storage = storage or StorageCostModel()
    compute = compute or ComputeCostModel()
    strategy.reset()

    counts = slot_param_counts(config)
    num_params = sum(counts[s] for s in model_slots(config))
    step_seconds = compute.step_seconds(num_params, tokens_per_step_per_gpu)

    plan = StrategyPlan(
        strategy=strategy.name,
        total_steps=total_steps,
        interval=strategy.interval,
        train_seconds=step_seconds * total_steps,
    )
    for step in range(1, total_steps + 1):
        slots = strategy.plan_step(step)
        if slots is None:
            continue
        volume = checkpoint_event_nbytes(config, slots)
        seconds = checkpoint_event_seconds(
            config, slots, world_size=world_size, storage=storage
        )
        plan.events.append(
            {
                "step": step,
                "slots": list(slots),
                "num_slots": len(slots),
                **volume,
                "seconds": seconds,
            }
        )
    return plan
