"""SwiGLU feed-forward network (Llama/Qwen MLP block).

``down_proj(silu(gate_proj(x)) * up_proj(x))`` — expands the hidden
dimension, gates it with SiLU, and projects back (paper §2.1).
"""

from __future__ import annotations

import numpy as np

from ..autograd import functional as F
from ..autograd.tensor import Tensor
from .config import ModelConfig
from .layers import Linear
from .module import Module

__all__ = ["SwiGLUMLP"]


class SwiGLUMLP(Module):
    def __init__(self, config: ModelConfig, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        std = config.initializer_range
        hidden, inter = config.hidden_size, config.intermediate_size
        self.gate_proj = Linear(hidden, inter, bias=False, rng=rng, init_std=std)
        self.up_proj = Linear(hidden, inter, bias=False, rng=rng, init_std=std)
        self.down_proj = Linear(inter, hidden, bias=False, rng=rng, init_std=std)

    def forward(self, x: Tensor) -> Tensor:
        """SwiGLU feed-forward: ``down(silu(gate(x)) * up(x))``."""
        return self.down_proj(F.silu(self.gate_proj(x)) * self.up_proj(x))
