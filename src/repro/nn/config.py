"""Model configuration and registry.

Two scales of config exist for each evaluated model:

* ``*-sim`` — real layer count and tying, small hidden dimensions; these
  train in seconds and drive every end-to-end experiment.
* full-scale entries (``llama3.2-1b``, ``llama3.1-8b``, ``qwen2.5-7b``) —
  the published hyper-parameters; never instantiated as arrays, used only
  by the analytic size calculators for the paper-scale rows of
  Tables 3/6/7.

The group arithmetic LLMTailor depends on (``2L + x`` parameter groups)
is a function of ``num_hidden_layers`` and ``tie_word_embeddings`` only,
so both scales exercise identical merge logic.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from ..numerics.dtypes import DType
from ..util.errors import ConfigError

__all__ = ["ModelConfig", "register_config", "get_config", "list_configs"]


@dataclass(frozen=True)
class ModelConfig:
    """Llama/Qwen-style decoder-only transformer configuration."""

    name: str
    vocab_size: int
    hidden_size: int
    intermediate_size: int
    num_hidden_layers: int
    num_attention_heads: int
    num_key_value_heads: int
    max_position_embeddings: int = 2048
    rope_base: float = 10000.0
    rms_norm_eps: float = 1e-6
    tie_word_embeddings: bool = False
    attention_bias: bool = False
    initializer_range: float = 0.02
    torch_dtype: str = "bf16"
    architecture: str = "LlamaForCausalLM"

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_attention_heads:
            raise ConfigError(
                f"{self.name}: hidden_size {self.hidden_size} not divisible by "
                f"num_attention_heads {self.num_attention_heads}"
            )
        if self.num_attention_heads % self.num_key_value_heads:
            raise ConfigError(
                f"{self.name}: attention heads {self.num_attention_heads} not divisible by "
                f"key/value heads {self.num_key_value_heads}"
            )
        if self.num_hidden_layers < 1:
            raise ConfigError(f"{self.name}: need at least one transformer layer")

    @property
    def head_dim(self) -> int:
        """Per-head hidden width (``hidden_size / num_attention_heads``)."""
        return self.hidden_size // self.num_attention_heads

    @property
    def storage_dtype(self) -> DType:
        """The checkpoint storage precision as a :class:`~repro.numerics.dtypes.DType`."""
        return DType.parse(self.torch_dtype)

    @property
    def num_model_slots(self) -> int:
        """Layer slots as counted by the paper's Table 7 "Total layers".

        Transformer layers + embed_tokens + final norm + (lm_head if untied):
        Llama-3.2-1B → 18, Llama-3.1-8B → 35.
        """
        return self.num_hidden_layers + 2 + (0 if self.tie_word_embeddings else 1)

    @property
    def num_param_groups_tailored(self) -> int:
        """Parameter groups after LLMTailor's regrouping (paper §4.1): 2L + x."""
        return 2 * self.num_hidden_layers + 2 + (0 if self.tie_word_embeddings else 1)

    def to_dict(self) -> dict[str, Any]:
        """Serializable form (round-trips :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModelConfig":
        """Rebuild a config from :meth:`to_dict` output (unknown keys rejected)."""
        known = {f.name for f in dataclasses.fields(cls)}
        filtered = {k: v for k, v in data.items() if k in known}
        extra = set(data) - known
        if extra:
            raise ConfigError(f"unknown model config keys: {sorted(extra)}")
        return cls(**filtered)

    def replace(self, **kwargs) -> "ModelConfig":
        """A copy with the given fields replaced (frozen-dataclass update)."""
        return dataclasses.replace(self, **kwargs)


_REGISTRY: dict[str, ModelConfig] = {}


def register_config(config: ModelConfig) -> ModelConfig:
    """Register a config under its name (decorator-friendly)."""
    if config.name in _REGISTRY:
        raise ConfigError(f"config {config.name!r} already registered")
    _REGISTRY[config.name] = config
    return config


def get_config(name: str) -> ModelConfig:
    """Look up a registered model config by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY))
        raise ConfigError(f"unknown model config {name!r}; available: {available}") from None


def list_configs() -> list[str]:
    """Names of every registered model config, sorted."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Full-scale published configurations (for analytic size computations only).
# ---------------------------------------------------------------------------

register_config(
    ModelConfig(
        name="llama3.2-1b",
        vocab_size=128_256,
        hidden_size=2048,
        intermediate_size=8192,
        num_hidden_layers=16,
        num_attention_heads=32,
        num_key_value_heads=8,
        max_position_embeddings=131_072,
        rope_base=500_000.0,
        rms_norm_eps=1e-5,
        tie_word_embeddings=True,
    )
)

register_config(
    ModelConfig(
        name="llama3.1-8b",
        vocab_size=128_256,
        hidden_size=4096,
        intermediate_size=14_336,
        num_hidden_layers=32,
        num_attention_heads=32,
        num_key_value_heads=8,
        max_position_embeddings=131_072,
        rope_base=500_000.0,
        rms_norm_eps=1e-5,
        tie_word_embeddings=False,
    )
)

register_config(
    ModelConfig(
        name="qwen2.5-7b",
        vocab_size=152_064,
        hidden_size=3584,
        intermediate_size=18_944,
        num_hidden_layers=28,
        num_attention_heads=28,
        num_key_value_heads=4,
        max_position_embeddings=131_072,
        rope_base=1_000_000.0,
        rms_norm_eps=1e-6,
        tie_word_embeddings=False,
        attention_bias=True,
        architecture="Qwen2ForCausalLM",
    )
)


# ---------------------------------------------------------------------------
# Simulation-scale configurations: identical topology, small width.
# These are the models the experiments actually train.
# ---------------------------------------------------------------------------

register_config(
    ModelConfig(
        name="llama3.2-1b-sim",
        vocab_size=512,
        hidden_size=64,
        intermediate_size=176,
        num_hidden_layers=16,
        num_attention_heads=4,
        num_key_value_heads=2,
        max_position_embeddings=256,
        tie_word_embeddings=True,
    )
)

register_config(
    ModelConfig(
        name="llama3.1-8b-sim",
        vocab_size=512,
        hidden_size=64,
        intermediate_size=176,
        num_hidden_layers=32,
        num_attention_heads=4,
        num_key_value_heads=2,
        max_position_embeddings=256,
        tie_word_embeddings=False,
    )
)

register_config(
    ModelConfig(
        name="qwen2.5-7b-sim",
        vocab_size=512,
        hidden_size=64,
        intermediate_size=176,
        num_hidden_layers=28,
        num_attention_heads=4,
        num_key_value_heads=2,
        max_position_embeddings=256,
        tie_word_embeddings=False,
        attention_bias=True,
        architecture="Qwen2ForCausalLM",
    )
)


# Tiny configs for unit tests: a handful of layers, very small width.

register_config(
    ModelConfig(
        name="tiny-untied",
        vocab_size=128,
        hidden_size=32,
        intermediate_size=64,
        num_hidden_layers=4,
        num_attention_heads=2,
        num_key_value_heads=2,
        max_position_embeddings=64,
        tie_word_embeddings=False,
    )
)

register_config(
    ModelConfig(
        name="tiny-tied",
        vocab_size=128,
        hidden_size=32,
        intermediate_size=64,
        num_hidden_layers=4,
        num_attention_heads=2,
        num_key_value_heads=1,
        max_position_embeddings=64,
        tie_word_embeddings=True,
    )
)

register_config(
    ModelConfig(
        name="tiny-qwen",
        vocab_size=128,
        hidden_size=32,
        intermediate_size=64,
        num_hidden_layers=3,
        num_attention_heads=2,
        num_key_value_heads=1,
        max_position_embeddings=64,
        tie_word_embeddings=False,
        attention_bias=True,
        architecture="Qwen2ForCausalLM",
    )
)
