"""Module / Parameter hierarchy (the ``torch.nn`` substitute).

Modules own named :class:`Parameter` leaves and named submodules;
``state_dict``/``load_state_dict`` use dotted names identical to the
HuggingFace transformers convention (``model.layers.3.self_attn.q_proj.weight``)
because LLMTailor's whole job is manipulating those names.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..autograd.tensor import Tensor
from ..util.errors import ConfigError, ShapeError

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A trainable tensor; always requires grad."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with parameter registration and state-dict plumbing."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # -- registration -------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        else:
            # Re-assigning a former parameter/module slot to a plain value
            # must unregister it (e.g. ``self.lm_head = None`` when tied).
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    # -- traversal ------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, tensor)`` for every parameter, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        """Every parameter tensor, depth-first."""
        for _, p in self.named_parameters():
            yield p

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` for this module and every descendant."""
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total parameter count over all children."""
        return sum(p.size for p in self.parameters())

    # -- train/eval mode ----------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        """Switch this module (and children) to training mode."""
        object.__setattr__(self, "training", mode)
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch this module (and children) to inference mode."""
        return self.train(False)

    # -- gradient helpers ------------------------------------------------------------

    def zero_grad(self) -> None:
        """Reset every parameter's gradient to ``None``."""
        for p in self.parameters():
            p.zero_grad()

    # -- state dict -------------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter's fp32 data, keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> list[str]:
        """Load parameter values in place; returns the list of missing keys.

        With ``strict=True`` (default) missing or unexpected keys raise
        :class:`ConfigError`.  Shape mismatches always raise.
        """
        own = dict(self.named_parameters())
        missing = [k for k in own if k not in state]
        unexpected = [k for k in state if k not in own]
        if strict and (missing or unexpected):
            raise ConfigError(
                f"state dict mismatch: missing={missing[:5]}{'...' if len(missing) > 5 else ''} "
                f"unexpected={unexpected[:5]}{'...' if len(unexpected) > 5 else ''}"
            )
        for key, value in state.items():
            if key not in own:
                continue
            param = own[key]
            value = np.asarray(value, dtype=np.float32)
            if value.shape != param.data.shape:
                raise ShapeError(
                    f"shape mismatch for {key}: checkpoint {value.shape} vs model {param.data.shape}"
                )
            param.data[...] = value
        return missing

    # -- call protocol -----------------------------------------------------------------

    def forward(self, *args, **kwargs):
        """Compute the module's output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, module in self._modules.items():
            sub = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {sub}")
        for name, p in self._parameters.items():
            lines.append(f"  ({name}): Parameter{p.shape}")
        lines.append(")")
        return "\n".join(lines)


class ModuleList(Module):
    """Indexed container of submodules, named ``0``, ``1``, ... like PyTorch."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: list[Module] = []
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> "ModuleList":
        """Add a child module, registered under its list index."""
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        return self

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)
