"""Elementary layers: Linear, Embedding, RMSNorm.

Weight layouts follow PyTorch conventions (``Linear.weight`` is
``(out_features, in_features)``) so state-dict shapes match what the
checkpoint tooling expects from HF models.
"""

from __future__ import annotations

import numpy as np

from ..autograd import functional as F
from ..autograd.tensor import Tensor
from .module import Module, Parameter

__all__ = ["Linear", "Embedding", "RMSNorm"]


class Linear(Module):
    """Affine map ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = False,
        *,
        rng: np.random.Generator | None = None,
        init_std: float = 0.02,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(
            rng.normal(0.0, init_std, size=(out_features, in_features)).astype(np.float32)
        )
        if bias:
            self.bias = Parameter(np.zeros(out_features, dtype=np.float32))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        """Affine map ``x @ W.T (+ b)`` over the last axis."""
        out = x @ self.weight.transpose(1, 0)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class Embedding(Module):
    """Token-id → vector lookup table."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        *,
        rng: np.random.Generator | None = None,
        init_std: float = 0.02,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(
            rng.normal(0.0, init_std, size=(num_embeddings, embedding_dim)).astype(np.float32)
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        """Row lookup: token ids (B, T) -> embeddings (B, T, C)."""
        return F.embedding(self.weight, ids)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class RMSNorm(Module):
    """Root-mean-square normalization with a learned scale (Llama-style)."""

    def __init__(self, hidden_size: int, eps: float = 1e-6) -> None:
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(hidden_size, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        """Root-mean-square normalization with learned scale."""
        return F.rms_norm(x, self.weight, eps=self.eps)

    def __repr__(self) -> str:
        return f"RMSNorm({self.weight.shape[0]}, eps={self.eps})"
