"""Causal self-attention with rotary position embeddings and GQA.

Mirrors the Llama/Qwen attention block: separate q/k/v/o projections
(optional biases for Qwen), grouped-query attention when
``num_key_value_heads < num_attention_heads``, RoPE applied to q and k,
and a causal mask realised as an additive ``-1e9`` upper triangle (kept
finite so gradients stay NaN-free).
"""

from __future__ import annotations

import numpy as np

from ..autograd import functional as F
from ..autograd.tensor import Tensor
from ..util.errors import ShapeError
from .config import ModelConfig
from .layers import Linear
from .module import Module

__all__ = ["CausalSelfAttention", "causal_mask"]

_MASK_VALUE = -1e9


def causal_mask(seq_len: int, dtype=np.float32) -> np.ndarray:
    """Additive causal mask of shape (1, 1, T, T)."""
    mask = np.triu(np.full((seq_len, seq_len), _MASK_VALUE, dtype=dtype), k=1)
    return mask[None, None, :, :]


class CausalSelfAttention(Module):
    def __init__(self, config: ModelConfig, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.num_heads = config.num_attention_heads
        self.num_kv_heads = config.num_key_value_heads
        self.head_dim = config.head_dim
        self.hidden_size = config.hidden_size
        self.n_rep = self.num_heads // self.num_kv_heads
        rng = rng or np.random.default_rng(0)
        std = config.initializer_range
        bias = config.attention_bias
        kv_dim = self.num_kv_heads * self.head_dim
        self.q_proj = Linear(self.hidden_size, self.hidden_size, bias=bias, rng=rng, init_std=std)
        self.k_proj = Linear(self.hidden_size, kv_dim, bias=bias, rng=rng, init_std=std)
        self.v_proj = Linear(self.hidden_size, kv_dim, bias=bias, rng=rng, init_std=std)
        self.o_proj = Linear(self.hidden_size, self.hidden_size, bias=False, rng=rng, init_std=std)

    def _split_heads(self, x: Tensor, num_heads: int) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _repeat_kv(self, x: Tensor, batch: int, seq: int) -> Tensor:
        """Expand KV heads for grouped-query attention.

        Implemented as broadcast-add of a zero tensor so the backward pass
        (sum over the repeat axis) falls out of the standard unbroadcast
        rule — no bespoke gradient needed.
        """
        if self.n_rep == 1:
            return x
        expanded = x.reshape(batch, self.num_kv_heads, 1, seq, self.head_dim) + Tensor(
            np.zeros((1, 1, self.n_rep, 1, 1), dtype=x.data.dtype)
        )
        return expanded.reshape(batch, self.num_heads, seq, self.head_dim)

    def forward(self, x: Tensor, cos: np.ndarray, sin: np.ndarray, mask: np.ndarray) -> Tensor:
        """Causal multi-head attention over ``hidden`` (B, T, C) -> (B, T, C)."""
        batch, seq, hidden = x.shape
        if hidden != self.hidden_size:
            raise ShapeError(f"attention expected hidden {self.hidden_size}, got {hidden}")

        q = self._split_heads(self.q_proj(x), self.num_heads)  # (B, h, T, d)
        k = self._split_heads(self.k_proj(x), self.num_kv_heads)  # (B, kv, T, d)
        v = self._split_heads(self.v_proj(x), self.num_kv_heads)

        # RoPE broadcast over batch/head dims: cos/sin are (T, d).
        q = F.apply_rope(q, cos[None, None, :seq, :], sin[None, None, :seq, :])
        k = F.apply_rope(k, cos[None, None, :seq, :], sin[None, None, :seq, :])

        k = self._repeat_kv(k, batch, seq)
        v = self._repeat_kv(v, batch, seq)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.swapaxes(-1, -2)) * scale + Tensor(mask[..., :seq, :seq])
        attn = F.softmax(scores, axis=-1)
        context = attn @ v  # (B, h, T, d)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.hidden_size)
        return self.o_proj(merged)
