"""The decoder-only causal language model (Llama/Qwen architecture).

Parameter names replicate the HuggingFace layout exactly:

* ``model.embed_tokens.weight``
* ``model.layers.{i}.input_layernorm.weight`` / ``.self_attn.{q,k,v,o}_proj.*``
  / ``.post_attention_layernorm.weight`` / ``.mlp.{gate,up,down}_proj.weight``
* ``model.norm.weight``
* ``lm_head.weight`` — only when ``tie_word_embeddings`` is false; tied
  models reuse ``embed_tokens.weight`` for the output projection (§2.1).

This naming is the contract LLMTailor (and the checkpoint layout) relies
on when slicing checkpoints layer-by-layer.
"""

from __future__ import annotations

import numpy as np

from ..autograd import functional as F
from ..autograd.tensor import Tensor
from ..util.errors import ShapeError
from ..util.rng import RngTree
from .attention import causal_mask
from .block import DecoderLayer
from .config import ModelConfig, get_config
from .layers import Embedding, Linear, RMSNorm
from .module import Module, ModuleList

__all__ = ["DecoderModel", "CausalLM", "build_model"]


class DecoderModel(Module):
    """The ``model.*`` trunk: embeddings, decoder layers, final norm."""

    def __init__(self, config: ModelConfig, *, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.embed_tokens = Embedding(
            config.vocab_size, config.hidden_size, rng=rng, init_std=config.initializer_range
        )
        self.layers = ModuleList(
            DecoderLayer(config, rng=rng) for _ in range(config.num_hidden_layers)
        )
        self.norm = RMSNorm(config.hidden_size, eps=config.rms_norm_eps)

    def forward(self, input_ids: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> Tensor:
        """Token ids (B, T) -> final hidden states (B, T, C)."""
        seq_len = input_ids.shape[1]
        mask = causal_mask(seq_len)
        x = self.embed_tokens(input_ids)
        for layer in self.layers:
            x = layer(x, cos, sin, mask)
        return self.norm(x)


class CausalLM(Module):
    """Causal LM head over :class:`DecoderModel`; handles weight tying."""

    def __init__(self, config: ModelConfig, *, seed: int = 0) -> None:
        super().__init__()
        self.config = config
        rng = RngTree(seed, "model-init", config.name).generator("weights")
        self.model = DecoderModel(config, rng=rng)
        if config.tie_word_embeddings:
            self.lm_head = None
        else:
            self.lm_head = Linear(
                config.hidden_size,
                config.vocab_size,
                bias=False,
                rng=rng,
                init_std=config.initializer_range,
            )
        self._rope_cos, self._rope_sin = F.rope_cache(
            config.max_position_embeddings, config.head_dim, base=config.rope_base
        )

    def forward(self, input_ids: np.ndarray) -> Tensor:
        """Token ids ``(B, T)`` → logits ``(B, T, V)``."""
        input_ids = np.asarray(input_ids)
        if input_ids.ndim != 2:
            raise ShapeError(f"input_ids must be (batch, seq), got shape {input_ids.shape}")
        if input_ids.shape[1] > self.config.max_position_embeddings:
            raise ShapeError(
                f"sequence length {input_ids.shape[1]} exceeds max position "
                f"{self.config.max_position_embeddings}"
            )
        hidden = self.model(input_ids, self._rope_cos, self._rope_sin)
        if self.lm_head is not None:
            return self.lm_head(hidden)
        # Weight tying: output projection is the embedding matrix.
        return hidden @ self.model.embed_tokens.weight.transpose(1, 0)

    def loss(self, input_ids: np.ndarray, labels: np.ndarray) -> Tensor:
        """Next-token cross entropy; labels use -100 for ignored positions."""
        logits = self.forward(input_ids)
        return F.cross_entropy(logits, labels)

    # -- structural description (paper Fig. 1) -----------------------------------

    def structure_tree(self) -> str:
        """Render the layer-wise structure, reproducing paper Figure 1."""
        cfg = self.config
        lines = [f"{cfg.name} ({cfg.architecture})"]
        lines.append(f"├─ model.embed_tokens  Embedding({cfg.vocab_size}, {cfg.hidden_size})")
        lines.append(f"├─ model.layers  x{cfg.num_hidden_layers} DecoderLayer")
        lines.append(f"│   ├─ input_layernorm          RMSNorm({cfg.hidden_size})")
        lines.append(
            f"│   ├─ self_attn                q/k/v/o_proj "
            f"(heads={cfg.num_attention_heads}, kv={cfg.num_key_value_heads}, "
            f"bias={cfg.attention_bias})"
        )
        lines.append(f"│   ├─ post_attention_layernorm RMSNorm({cfg.hidden_size})")
        lines.append(
            f"│   └─ mlp                      SwiGLU({cfg.hidden_size} -> "
            f"{cfg.intermediate_size} -> {cfg.hidden_size})"
        )
        lines.append(f"├─ model.norm          RMSNorm({cfg.hidden_size})")
        if cfg.tie_word_embeddings:
            lines.append("└─ lm_head             (weight-tied to embed_tokens)")
        else:
            lines.append(
                f"└─ lm_head             Linear({cfg.hidden_size}, {cfg.vocab_size}, bias=False)"
            )
        return "\n".join(lines)


def build_model(config_or_name: ModelConfig | str, *, seed: int = 0) -> CausalLM:
    """Instantiate a model from a config object or registry name."""
    config = (
        config_or_name
        if isinstance(config_or_name, ModelConfig)
        else get_config(config_or_name)
    )
    return CausalLM(config, seed=seed)
