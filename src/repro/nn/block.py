"""A transformer decoder layer: two RMSNorms, attention, SwiGLU MLP.

Pre-norm residual structure (paper Fig. 1): each sub-module normalises
its input, and its output is added back to the residual stream.
"""

from __future__ import annotations

import numpy as np

from ..autograd.tensor import Tensor
from .attention import CausalSelfAttention
from .config import ModelConfig
from .layers import RMSNorm
from .mlp import SwiGLUMLP
from .module import Module

__all__ = ["DecoderLayer"]


class DecoderLayer(Module):
    def __init__(self, config: ModelConfig, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.input_layernorm = RMSNorm(config.hidden_size, eps=config.rms_norm_eps)
        self.self_attn = CausalSelfAttention(config, rng=rng)
        self.post_attention_layernorm = RMSNorm(config.hidden_size, eps=config.rms_norm_eps)
        self.mlp = SwiGLUMLP(config, rng=rng)

    def forward(self, x: Tensor, cos: np.ndarray, sin: np.ndarray, mask: np.ndarray) -> Tensor:
        """Pre-norm attention + MLP with residual connections."""
        x = x + self.self_attn(self.input_layernorm(x), cos, sin, mask)
        x = x + self.mlp(self.post_attention_layernorm(x))
        return x
