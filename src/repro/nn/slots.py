"""Layer slots: the unit of layer-wise checkpointing.

A *slot* is what the paper calls a "layer" when tailoring checkpoints:
each transformer block plus the auxiliary layers (token embedding, final
norm, and the untied lm_head).  Slots are the vocabulary shared by
checkpoint manifests, selective strategies, and merge recipes.

Slot names: ``embed_tokens``, ``layers.0`` ... ``layers.{L-1}``,
``norm``, ``lm_head``.
"""

from __future__ import annotations

from ..numerics.dtypes import DType
from ..util.errors import ConfigError
from .config import ModelConfig

__all__ = [
    "EMBED",
    "NORM",
    "LM_HEAD",
    "AUX_SLOTS",
    "layer_slot",
    "model_slots",
    "aux_slots",
    "transformer_slots",
    "slot_of_param",
    "parameter_shapes",
    "slot_parameter_shapes",
    "slot_param_counts",
    "slot_nbytes",
    "model_nbytes",
]

EMBED = "embed_tokens"
NORM = "norm"
LM_HEAD = "lm_head"
AUX_SLOTS = (EMBED, NORM, LM_HEAD)


def layer_slot(index: int) -> str:
    """The slot name of transformer layer ``index`` (``layers.<index>``)."""
    return f"layers.{index}"


def transformer_slots(config: ModelConfig) -> list[str]:
    """Slot names of all transformer layers, in depth order."""
    return [layer_slot(i) for i in range(config.num_hidden_layers)]


def aux_slots(config: ModelConfig) -> list[str]:
    """Auxiliary slots present in this model (lm_head only when untied)."""
    slots = [EMBED, NORM]
    if not config.tie_word_embeddings:
        slots.append(LM_HEAD)
    return slots


def model_slots(config: ModelConfig) -> list[str]:
    """All slots in canonical (model traversal) order.

    Length equals the paper's Table 7 "Total layers" column
    (18 for Llama-3.2-1B, 35 for Llama-3.1-8B).
    """
    slots = [EMBED]
    slots.extend(transformer_slots(config))
    slots.append(NORM)
    if not config.tie_word_embeddings:
        slots.append(LM_HEAD)
    return slots


def slot_of_param(param_name: str) -> str:
    """Map a dotted parameter name to its slot.

    >>> slot_of_param("model.layers.3.self_attn.q_proj.weight")
    'layers.3'
    """
    if param_name.startswith("model.layers."):
        index = param_name.split(".")[2]
        if not index.isdigit():
            raise ConfigError(f"malformed layer parameter name: {param_name}")
        return f"layers.{index}"
    if param_name.startswith("model.embed_tokens."):
        return EMBED
    if param_name.startswith("model.norm."):
        return NORM
    if param_name.startswith("lm_head."):
        return LM_HEAD
    raise ConfigError(f"parameter {param_name!r} does not belong to any slot")


def _layer_param_shapes(config: ModelConfig, index: int) -> dict[str, tuple[int, ...]]:
    h = config.hidden_size
    kv = config.num_key_value_heads * config.head_dim
    inter = config.intermediate_size
    prefix = f"model.layers.{index}"
    shapes: dict[str, tuple[int, ...]] = {}
    shapes[f"{prefix}.input_layernorm.weight"] = (h,)
    shapes[f"{prefix}.self_attn.q_proj.weight"] = (h, h)
    if config.attention_bias:
        shapes[f"{prefix}.self_attn.q_proj.bias"] = (h,)
    shapes[f"{prefix}.self_attn.k_proj.weight"] = (kv, h)
    if config.attention_bias:
        shapes[f"{prefix}.self_attn.k_proj.bias"] = (kv,)
    shapes[f"{prefix}.self_attn.v_proj.weight"] = (kv, h)
    if config.attention_bias:
        shapes[f"{prefix}.self_attn.v_proj.bias"] = (kv,)
    shapes[f"{prefix}.self_attn.o_proj.weight"] = (h, h)
    shapes[f"{prefix}.post_attention_layernorm.weight"] = (h,)
    shapes[f"{prefix}.mlp.gate_proj.weight"] = (inter, h)
    shapes[f"{prefix}.mlp.up_proj.weight"] = (inter, h)
    shapes[f"{prefix}.mlp.down_proj.weight"] = (h, inter)
    return shapes


def parameter_shapes(config: ModelConfig) -> dict[str, tuple[int, ...]]:
    """Analytic parameter table for a config, in model traversal order.

    Matches ``CausalLM(config).state_dict()`` key-for-key and
    shape-for-shape (asserted by the test suite); usable for full-scale
    configs that are never instantiated.
    """
    shapes: dict[str, tuple[int, ...]] = {}
    shapes["model.embed_tokens.weight"] = (config.vocab_size, config.hidden_size)
    for i in range(config.num_hidden_layers):
        shapes.update(_layer_param_shapes(config, i))
    shapes["model.norm.weight"] = (config.hidden_size,)
    if not config.tie_word_embeddings:
        shapes["lm_head.weight"] = (config.vocab_size, config.hidden_size)
    return shapes


def slot_parameter_shapes(config: ModelConfig) -> dict[str, dict[str, tuple[int, ...]]]:
    """Parameter shapes grouped by slot."""
    by_slot: dict[str, dict[str, tuple[int, ...]]] = {s: {} for s in model_slots(config)}
    for name, shape in parameter_shapes(config).items():
        by_slot[slot_of_param(name)][name] = shape
    return by_slot


def slot_param_counts(config: ModelConfig) -> dict[str, int]:
    """Number of scalar parameters per slot."""
    counts: dict[str, int] = {}
    for slot, shapes in slot_parameter_shapes(config).items():
        total = 0
        for shape in shapes.values():
            n = 1
            for dim in shape:
                n *= dim
            total += n
        counts[slot] = total
    return counts


def slot_nbytes(config: ModelConfig, dtype: DType | None = None) -> dict[str, int]:
    """Serialized weight bytes per slot at the given storage precision."""
    dtype = dtype or config.storage_dtype
    return {slot: n * dtype.itemsize for slot, n in slot_param_counts(config).items()}


def model_nbytes(config: ModelConfig, dtype: DType | None = None) -> int:
    """Total serialized weight bytes of the model."""
    return sum(slot_nbytes(config, dtype).values())
