"""Neural-network substrate: modules, layers, and the causal LM."""

from .attention import CausalSelfAttention, causal_mask
from .block import DecoderLayer
from .config import ModelConfig, get_config, list_configs, register_config
from .layers import Embedding, Linear, RMSNorm
from .mlp import SwiGLUMLP
from .model import CausalLM, DecoderModel, build_model
from .module import Module, ModuleList, Parameter
from .slots import (
    AUX_SLOTS,
    EMBED,
    LM_HEAD,
    NORM,
    aux_slots,
    layer_slot,
    model_nbytes,
    model_slots,
    parameter_shapes,
    slot_nbytes,
    slot_of_param,
    slot_param_counts,
    slot_parameter_shapes,
    transformer_slots,
)

__all__ = [
    "AUX_SLOTS",
    "EMBED",
    "LM_HEAD",
    "NORM",
    "CausalLM",
    "CausalSelfAttention",
    "DecoderLayer",
    "DecoderModel",
    "Embedding",
    "Linear",
    "ModelConfig",
    "Module",
    "ModuleList",
    "Parameter",
    "RMSNorm",
    "SwiGLUMLP",
    "aux_slots",
    "build_model",
    "causal_mask",
    "get_config",
    "layer_slot",
    "list_configs",
    "model_nbytes",
    "model_slots",
    "parameter_shapes",
    "register_config",
    "slot_nbytes",
    "slot_of_param",
    "slot_param_counts",
    "slot_parameter_shapes",
    "transformer_slots",
]
