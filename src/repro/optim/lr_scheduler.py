"""Learning-rate schedules with checkpointable state.

The trainer records the current learning rate in ``trainer_state.json``
and ``scheduler.json`` (paper §4.4: config files carry the current LR so
resuming preserves the schedule).
"""

from __future__ import annotations

import math
from typing import Any

from ..util.errors import ConfigError
from .optimizer import Optimizer

__all__ = ["LRScheduler", "ConstantLR", "WarmupLinear", "WarmupCosine", "build_scheduler"]


class LRScheduler:
    """Base: multiplies each group's base LR by a step-dependent factor."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lrs = [group["lr"] for group in optimizer.param_groups]
        self.last_step = 0
        self._apply()

    def factor(self, step: int) -> float:
        """The LR multiplier at a global step; subclasses must override."""
        raise NotImplementedError

    def _apply(self) -> None:
        f = self.factor(self.last_step)
        for group, base in zip(self.optimizer.param_groups, self.base_lrs):
            group["lr"] = base * f

    def step(self) -> None:
        """Advance one step and re-apply the schedule to the optimizer."""
        self.last_step += 1
        self._apply()

    def get_last_lr(self) -> list[float]:
        """The most recently applied LR of every parameter group."""
        return [group["lr"] for group in self.optimizer.param_groups]

    def state_dict(self) -> dict[str, Any]:
        """Serializable scheduler state (type, step, base LRs)."""
        return {
            "type": self.__class__.__name__,
            "last_step": self.last_step,
            "base_lrs": list(self.base_lrs),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore position and base LRs from :meth:`state_dict` output."""
        if state.get("type") != self.__class__.__name__:
            raise ConfigError(
                f"scheduler type mismatch: checkpoint {state.get('type')!r} "
                f"vs current {self.__class__.__name__!r}"
            )
        self.last_step = int(state["last_step"])
        self.base_lrs = [float(x) for x in state["base_lrs"]]
        self._apply()


class ConstantLR(LRScheduler):
    def factor(self, step: int) -> float:
        """Always 1.0 (no schedule)."""
        return 1.0


class WarmupLinear(LRScheduler):
    """Linear warmup then linear decay to ``min_factor`` at ``total_steps``."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int,
        total_steps: int,
        min_factor: float = 0.0,
    ) -> None:
        if total_steps <= 0:
            raise ConfigError("total_steps must be positive")
        self.warmup_steps = max(0, int(warmup_steps))
        self.total_steps = int(total_steps)
        self.min_factor = float(min_factor)
        super().__init__(optimizer)

    def factor(self, step: int) -> float:
        """Linear warmup, then linear decay to ``min_factor``."""
        if self.warmup_steps and step < self.warmup_steps:
            return step / self.warmup_steps
        span = max(1, self.total_steps - self.warmup_steps)
        progress = min(1.0, (step - self.warmup_steps) / span)
        return self.min_factor + (1.0 - self.min_factor) * (1.0 - progress)

    def state_dict(self) -> dict[str, Any]:
        """Base state plus warmup/total-step shape."""
        state = super().state_dict()
        state.update(
            warmup_steps=self.warmup_steps,
            total_steps=self.total_steps,
            min_factor=self.min_factor,
        )
        return state


class WarmupCosine(WarmupLinear):
    """Linear warmup then cosine decay to ``min_factor``."""

    def factor(self, step: int) -> float:
        """Linear warmup, then cosine decay to ``min_factor``."""
        if self.warmup_steps and step < self.warmup_steps:
            return step / self.warmup_steps
        span = max(1, self.total_steps - self.warmup_steps)
        progress = min(1.0, (step - self.warmup_steps) / span)
        cos = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_factor + (1.0 - self.min_factor) * cos


_SCHEDULERS = {
    "constant": ConstantLR,
    "warmup_linear": WarmupLinear,
    "warmup_cosine": WarmupCosine,
}


def build_scheduler(
    name: str,
    optimizer: Optimizer,
    *,
    warmup_steps: int = 0,
    total_steps: int = 1,
    min_factor: float = 0.0,
) -> LRScheduler:
    """Construct a scheduler by name (``constant``/``warmup_linear``/``warmup_cosine``)."""
    try:
        cls = _SCHEDULERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheduler {name!r}; available: {sorted(_SCHEDULERS)}"
        ) from None
    if cls is ConstantLR:
        return ConstantLR(optimizer)
    return cls(optimizer, warmup_steps=warmup_steps, total_steps=total_steps, min_factor=min_factor)
