"""The default 2-group weight-decay split (paper §2.2, Fig. 2).

Standard AdamW practice: one parameter group for everything that should
*not* be decayed (biases and normalization scales — shrinking them harms
stability without regularizing), one group for the remaining weights.
LLMTailor's regrouping (``repro.core.groups``) refines this split
layer-by-layer while preserving the decay assignment.
"""

from __future__ import annotations

from ..nn.module import Module, Parameter
from .optimizer import ParamGroup

__all__ = ["is_no_decay_param", "default_param_groups", "named_decay_split"]

DECAY_GROUP = "decay"
NO_DECAY_GROUP = "no_decay"


def is_no_decay_param(name: str) -> bool:
    """True for parameters exempt from weight decay.

    Biases and every normalization scale (``input_layernorm``,
    ``post_attention_layernorm``, the final ``model.norm``).
    """
    if name.endswith(".bias"):
        return True
    last_module = name.rsplit(".", 2)
    if len(last_module) >= 2 and "norm" in last_module[-2]:
        return True
    return False


def named_decay_split(model: Module) -> tuple[list[tuple[str, Parameter]], list[tuple[str, Parameter]]]:
    """Partition named parameters into (no_decay, decay) lists."""
    no_decay: list[tuple[str, Parameter]] = []
    decay: list[tuple[str, Parameter]] = []
    for name, param in model.named_parameters():
        (no_decay if is_no_decay_param(name) else decay).append((name, param))
    return no_decay, decay


def default_param_groups(model: Module, weight_decay: float) -> list[ParamGroup]:
    """The stock 2-group layout used before LLMTailor's regrouping.

    Group 0: biases + norms, ``weight_decay=0``.
    Group 1: remaining weights, ``weight_decay=weight_decay``.
    Each group carries ``name`` and the ordered ``param_names`` so the
    checkpoint layer can serialize a self-describing optimizer file.
    """
    no_decay, decay = named_decay_split(model)
    return [
        {
            "params": [p for _, p in no_decay],
            "param_names": [n for n, _ in no_decay],
            "weight_decay": 0.0,
            "name": NO_DECAY_GROUP,
        },
        {
            "params": [p for _, p in decay],
            "param_names": [n for n, _ in decay],
            "weight_decay": weight_decay,
            "name": DECAY_GROUP,
        },
    ]
