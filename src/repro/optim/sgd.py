"""SGD with optional momentum (baseline optimizer; §2.2 mentions both)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..util.errors import ConfigError
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    def __init__(
        self,
        params: Iterable,
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        if lr < 0:
            raise ConfigError(f"invalid learning rate {lr}")
        if nesterov and momentum <= 0:
            raise ConfigError("nesterov momentum requires momentum > 0")
        defaults = dict(lr=lr, momentum=momentum, weight_decay=weight_decay, nesterov=nesterov)
        super().__init__(params, defaults)

    def step(self) -> None:
        """Apply one SGD (momentum/Nesterov-capable) update."""
        for group in self.param_groups:
            lr = group["lr"]
            momentum = group["momentum"]
            wd = group["weight_decay"]
            nesterov = group["nesterov"]
            for p in group["params"]:
                if p.grad is None:
                    continue
                grad = p.grad
                if wd != 0:
                    grad = grad + wd * p.data
                if momentum != 0:
                    state = self._get_state(p)
                    buf = state.get("momentum_buffer")
                    if buf is None:
                        buf = grad.copy()
                        state["momentum_buffer"] = buf
                    else:
                        buf *= momentum
                        buf += grad
                    grad = grad + momentum * buf if nesterov else buf
                p.data -= lr * np.asarray(grad)
