"""Optimizers with PyTorch-style param groups and packed state dicts."""

from .adam import Adam, AdamW
from .grouping import default_param_groups, is_no_decay_param, named_decay_split
from .lr_scheduler import (
    ConstantLR,
    LRScheduler,
    WarmupCosine,
    WarmupLinear,
    build_scheduler,
)
from .optimizer import Optimizer, ParamGroup, clip_grad_norm_
from .sgd import SGD

__all__ = [
    "Adam",
    "AdamW",
    "ConstantLR",
    "LRScheduler",
    "Optimizer",
    "ParamGroup",
    "SGD",
    "WarmupCosine",
    "WarmupLinear",
    "build_scheduler",
    "clip_grad_norm_",
    "default_param_groups",
    "is_no_decay_param",
    "named_decay_split",
]
