"""Optimizer base class with PyTorch-compatible packed state dicts.

The packed format is the structure LLMTailor manipulates (paper §2.2,
Fig. 2): ``param_groups`` hold hyper-parameters plus *indices* into a
flat parameter enumeration, and ``state`` maps those indices to per-
parameter tensors (``step``, ``exp_avg``, ``exp_avg_sq``).  Group entries
carry arbitrary extra metadata (notably ``name``), which the tailored
2L+x grouping relies on.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from ..autograd.tensor import Tensor
from ..util.errors import ConfigError

__all__ = ["Optimizer", "ParamGroup"]

ParamGroup = dict[str, Any]


class Optimizer:
    """Base optimizer over :class:`Tensor` parameters.

    ``params`` may be an iterable of tensors (a single group with default
    hyper-parameters) or an iterable of group dicts, each with a
    ``params`` list plus per-group overrides — exactly PyTorch's
    convention.
    """

    def __init__(self, params: Iterable, defaults: dict[str, Any]) -> None:
        self.defaults = dict(defaults)
        self.param_groups: list[ParamGroup] = []
        # State is keyed by parameter object identity (like PyTorch); the
        # packed state_dict() converts to stable integer indices.
        self.state: dict[int, dict[str, Any]] = {}
        self._params_by_id: dict[int, Tensor] = {}

        params = list(params)
        if not params:
            raise ConfigError("optimizer got an empty parameter list")
        if isinstance(params[0], dict):
            for group in params:
                self.add_param_group(dict(group))
        else:
            self.add_param_group({"params": params})

    # -- group management ----------------------------------------------------

    def add_param_group(self, group: ParamGroup) -> None:
        """Validate and append one parameter group, filling in defaults."""
        if "params" not in group:
            raise ConfigError("param group missing 'params' key")
        group_params = list(group["params"])
        if not all(isinstance(p, Tensor) for p in group_params):
            raise ConfigError("param group 'params' must contain tensors")
        merged: ParamGroup = dict(self.defaults)
        merged.update(group)
        merged["params"] = group_params
        for p in group_params:
            if id(p) in self._params_by_id:
                raise ConfigError("a parameter appears in more than one group")
            self._params_by_id[id(p)] = p
        self.param_groups.append(merged)

    def _all_params(self) -> list[Tensor]:
        out: list[Tensor] = []
        for group in self.param_groups:
            out.extend(group["params"])
        return out

    # -- gradient management --------------------------------------------------

    def zero_grad(self) -> None:
        """Reset every managed parameter's gradient to ``None``."""
        for p in self._all_params():
            p.grad = None

    # -- the update -------------------------------------------------------------

    def step(self) -> None:
        """Apply one update to every parameter; subclasses must override."""
        raise NotImplementedError

    def _get_state(self, param: Tensor) -> dict[str, Any]:
        return self.state.setdefault(id(param), {})

    # -- serialization -----------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Packed state: groups reference parameters by global index.

        Matches PyTorch's layout::

            {"state": {idx: {...}}, "param_groups": [{..., "params": [idx]}]}

        Arrays are copied so the snapshot is stable across further steps.
        """
        packed_groups: list[dict[str, Any]] = []
        index_of: dict[int, int] = {}
        next_index = 0
        for group in self.param_groups:
            entry = {k: _copy_value(v) for k, v in group.items() if k != "params"}
            indices = []
            for p in group["params"]:
                index_of[id(p)] = next_index
                indices.append(next_index)
                next_index += 1
            entry["params"] = indices
            packed_groups.append(entry)

        packed_state: dict[int, dict[str, Any]] = {}
        for pid, st in self.state.items():
            if pid not in index_of:
                continue
            packed_state[index_of[pid]] = {k: _copy_value(v) for k, v in st.items()}
        return {"state": packed_state, "param_groups": packed_groups}

    def load_state_dict(self, state_dict: dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict`; validates group/parameter counts."""
        groups = state_dict.get("param_groups")
        state = state_dict.get("state", {})
        if groups is None:
            raise ConfigError("optimizer state dict missing 'param_groups'")
        if len(groups) != len(self.param_groups):
            raise ConfigError(
                f"optimizer group count mismatch: checkpoint has {len(groups)}, "
                f"optimizer has {len(self.param_groups)}"
            )
        # Rebuild the flat index -> parameter mapping in our group order.
        flat_params = self._all_params()
        total_saved = sum(len(g["params"]) for g in groups)
        if total_saved != len(flat_params):
            raise ConfigError(
                f"optimizer parameter count mismatch: checkpoint has {total_saved}, "
                f"optimizer has {len(flat_params)}"
            )
        cursor = 0
        self.state.clear()
        for group, saved in zip(self.param_groups, groups):
            if len(group["params"]) != len(saved["params"]):
                raise ConfigError(
                    "per-group parameter count mismatch while loading optimizer state"
                )
            for key, value in saved.items():
                if key == "params":
                    continue
                group[key] = _copy_value(value)
            for p, saved_idx in zip(group["params"], saved["params"]):
                entry = state.get(saved_idx, state.get(str(saved_idx)))
                if entry is not None:
                    restored: dict[str, Any] = {}
                    for k, v in entry.items():
                        if isinstance(v, np.ndarray):
                            if v.shape != p.data.shape:
                                raise ConfigError(
                                    f"optimizer state shape mismatch for param {cursor}: "
                                    f"{v.shape} vs {p.data.shape}"
                                )
                            restored[k] = v.astype(np.float32, copy=True)
                        else:
                            restored[k] = v
                    self.state[id(p)] = restored
                cursor += 1

    def __repr__(self) -> str:
        lines = [f"{self.__class__.__name__}("]
        for i, group in enumerate(self.param_groups):
            meta = {k: v for k, v in group.items() if k != "params"}
            lines.append(f"  group {i}: {len(group['params'])} params, {meta}")
        lines.append(")")
        return "\n".join(lines)


def _copy_value(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, (list, tuple)):
        return type(value)(_copy_value(v) for v in value)
    return value


# Reused float64 staging buffer for clip_grad_norm_: the norm must be
# accumulated in double precision (bitwise-pinned behaviour), but casting
# every gradient to a fresh float64 copy each step is two full-model
# allocations per step.  Only the trainer's step loop calls this, so a
# module-level scratch is safe; it grows to the largest gradient seen.
_clip_scratch = np.zeros(0, dtype=np.float64)


def clip_grad_norm_(params: Sequence[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm."""
    global _clip_scratch
    total_sq = 0.0
    grads = [p.grad for p in params if p.grad is not None]
    for g in grads:
        # Same values and summation order as np.sum(g.astype(f64) ** 2):
        # the cast lands in the scratch, the square happens in place, and
        # np.sum over a C-contiguous buffer pairwise-sums identically
        # whether the array is 1-D or the original n-D.
        n = g.size
        if _clip_scratch.size < n:
            _clip_scratch = np.zeros(n, dtype=np.float64)
        buf = _clip_scratch[:n]
        np.copyto(buf, g.reshape(-1))
        np.square(buf, out=buf)
        total_sq += float(np.sum(buf))
    total = float(np.sqrt(total_sq))
    if max_norm > 0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total
