"""Adam and AdamW (decoupled weight decay) optimizers.

AdamW is the paper's default (via DeepSpeed); it keeps two fp32 moment
tensors per parameter (``exp_avg``, ``exp_avg_sq``) plus a step counter —
the state that makes optimizer files dominate checkpoint size (§2.2).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..util.errors import ConfigError
from .optimizer import Optimizer

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Classic Adam: L2 penalty folded into the gradient."""

    DECOUPLED_DECAY = False

    def __init__(
        self,
        params: Iterable,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr < 0:
            raise ConfigError(f"invalid learning rate {lr}")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ConfigError(f"invalid betas {betas}")
        if eps <= 0:
            raise ConfigError(f"invalid eps {eps}")
        defaults = dict(lr=lr, betas=tuple(betas), eps=eps, weight_decay=weight_decay)
        super().__init__(params, defaults)

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            beta1, beta2 = group["betas"]
            eps = group["eps"]
            wd = group["weight_decay"]
            for p in group["params"]:
                if p.grad is None:
                    continue
                grad = p.grad
                state = self._get_state(p)
                if not state:
                    state["step"] = 0
                    state["exp_avg"] = np.zeros_like(p.data)
                    state["exp_avg_sq"] = np.zeros_like(p.data)
                state["step"] += 1
                step = state["step"]
                m, v = state["exp_avg"], state["exp_avg_sq"]

                if wd != 0 and not self.DECOUPLED_DECAY:
                    grad = grad + wd * p.data

                # In-place exponential moving averages (guide: avoid copies).
                m *= beta1
                m += (1.0 - beta1) * grad
                v *= beta2
                v += (1.0 - beta2) * grad * grad

                bias1 = 1.0 - beta1**step
                bias2 = 1.0 - beta2**step
                denom = np.sqrt(v / bias2) + eps

                if wd != 0 and self.DECOUPLED_DECAY:
                    p.data *= 1.0 - lr * wd

                p.data -= lr * (m / bias1) / denom


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    Decay multiplies the weights directly instead of entering the moment
    estimates — which is why biases/norms are placed in a zero-decay
    parameter group (§2.2) and why LLMTailor must preserve per-group decay
    settings when regrouping.
    """

    DECOUPLED_DECAY = True

    def __init__(
        self,
        params: Iterable,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=weight_decay)
