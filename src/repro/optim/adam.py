"""Adam and AdamW (decoupled weight decay) optimizers.

AdamW is the paper's default (via DeepSpeed); it keeps two fp32 moment
tensors per parameter (``exp_avg``, ``exp_avg_sq``) plus a step counter —
the state that makes optimizer files dominate checkpoint size (§2.2).

The update runs in one of two bitwise-identical modes:

* ``fused=True`` (default): every elementwise operation writes through
  ``out=`` into either the moment buffers, the parameter, or one of two
  persistent scratch buffers, so a step allocates nothing proportional
  to the parameter count.  The operation order is exactly the reference
  mode's, which is what keeps the two modes bit-for-bit equal (pinned by
  ``tests/test_step_fused.py``).
* ``fused=False``: the original expression-per-line implementation, kept
  as the executable reference the fused path is tested against.

Bias corrections ``1 - beta**step`` are served from a one-entry-per-beta
cache keyed by ``(beta, step)``: within a step every parameter group at
the same step shares one ``pow`` call instead of recomputing it per
group.  The cache *recomputes* the closed form rather than maintaining a
running product ``bias *= beta`` because the running product is NOT
bitwise-equal to ``beta**step`` (it drifts from the closed form within a
handful of steps — see the divergence canary in the test suite), and
bitwise stability of the training trajectory is a repo invariant.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..util.errors import ConfigError
from .optimizer import Optimizer

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Classic Adam: L2 penalty folded into the gradient."""

    DECOUPLED_DECAY = False

    def __init__(
        self,
        params: Iterable,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        *,
        fused: bool = True,
    ) -> None:
        if lr < 0:
            raise ConfigError(f"invalid learning rate {lr}")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ConfigError(f"invalid betas {betas}")
        if eps <= 0:
            raise ConfigError(f"invalid eps {eps}")
        defaults = dict(lr=lr, betas=tuple(betas), eps=eps, weight_decay=weight_decay)
        super().__init__(params, defaults)
        self.fused = bool(fused)
        # Two persistent scratch buffers, grown to the largest parameter
        # ever stepped; views of their prefixes serve every parameter.
        self._scratch1: np.ndarray | None = None
        self._scratch2: np.ndarray | None = None
        # beta -> (step, beta**step); one pow per (beta, step) per step.
        self._pow_cache: dict[float, tuple[int, float]] = {}

    # -- bias-correction cache ---------------------------------------------

    def _beta_pow(self, beta: float, step: int) -> float:
        """``beta**step``, computed once per (beta, step).

        Parameters step in lockstep in steady state, so this turns
        ``2 * num_groups`` pow calls per step into 2 — while staying
        bitwise-identical to the closed form (a running ``p *= beta``
        product would not be).
        """
        cached = self._pow_cache.get(beta)
        if cached is not None and cached[0] == step:
            return cached[1]
        value = beta**step
        self._pow_cache[beta] = (step, value)
        return value

    # -- scratch management ------------------------------------------------

    def _scratches(self, numel: int, dtype, shape) -> tuple[np.ndarray, np.ndarray]:
        if (
            self._scratch1 is None
            or self._scratch1.size < numel
            or self._scratch1.dtype != dtype
        ):
            self._scratch1 = np.empty(numel, dtype=dtype)
            self._scratch2 = np.empty(numel, dtype=dtype)
        return (
            self._scratch1[:numel].reshape(shape),
            self._scratch2[:numel].reshape(shape),
        )

    # -- the update --------------------------------------------------------

    def step(self) -> None:
        """Apply one Adam update to every parameter with a gradient."""
        for group in self.param_groups:
            lr = group["lr"]
            beta1, beta2 = group["betas"]
            eps = group["eps"]
            wd = group["weight_decay"]
            for p in group["params"]:
                if p.grad is None:
                    continue
                grad = p.grad
                state = self._get_state(p)
                if not state:
                    state["step"] = 0
                    state["exp_avg"] = np.zeros_like(p.data)
                    state["exp_avg_sq"] = np.zeros_like(p.data)
                state["step"] += 1
                step = state["step"]
                m, v = state["exp_avg"], state["exp_avg_sq"]

                bias1 = 1.0 - self._beta_pow(beta1, step)
                bias2 = 1.0 - self._beta_pow(beta2, step)

                if (
                    self.fused
                    and grad.dtype == p.data.dtype
                    and m.dtype == p.data.dtype
                ):
                    self._step_fused(p, grad, m, v, lr, beta1, beta2, eps, wd,
                                     bias1, bias2)
                    continue

                # Reference path (also the mixed-dtype fallback, where the
                # fused cast points would differ from these expressions).
                if wd != 0 and not self.DECOUPLED_DECAY:
                    grad = grad + wd * p.data

                # In-place exponential moving averages (guide: avoid copies).
                m *= beta1
                m += (1.0 - beta1) * grad
                v *= beta2
                v += (1.0 - beta2) * grad * grad

                denom = np.sqrt(v / bias2) + eps

                if wd != 0 and self.DECOUPLED_DECAY:
                    p.data *= 1.0 - lr * wd

                p.data -= lr * (m / bias1) / denom

    def _step_fused(self, p, grad, m, v, lr, beta1, beta2, eps, wd,
                    bias1, bias2) -> None:
        """Allocation-free update, operation-for-operation identical to the
        reference path (same ufuncs, same operand order, same rounding
        points) — only the destinations changed from fresh arrays to the
        two scratch buffers."""
        s1, s2 = self._scratches(p.data.size, p.data.dtype, p.data.shape)

        if wd != 0 and not self.DECOUPLED_DECAY:
            # grad_eff = grad + wd * p.data, parked in s2 (kept live
            # through both moment updates; s1 serves as the temporary).
            np.multiply(p.data, wd, out=s2)
            np.add(grad, s2, out=s2)
            grad = s2

        np.multiply(m, beta1, out=m)
        np.multiply(grad, 1.0 - beta1, out=s1)
        np.add(m, s1, out=m)
        np.multiply(grad, 1.0 - beta2, out=s1)
        np.multiply(s1, grad, out=s1)
        np.multiply(v, beta2, out=v)
        np.add(v, s1, out=v)

        # denom = sqrt(v / bias2) + eps, in s1 (grad_eff in s2 is dead now).
        np.divide(v, bias2, out=s1)
        np.sqrt(s1, out=s1)
        np.add(s1, eps, out=s1)

        if wd != 0 and self.DECOUPLED_DECAY:
            np.multiply(p.data, 1.0 - lr * wd, out=p.data)

        # p -= lr * (m / bias1) / denom
        np.divide(m, bias1, out=s2)
        np.multiply(s2, lr, out=s2)
        np.divide(s2, s1, out=s2)
        np.subtract(p.data, s2, out=p.data)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    Decay multiplies the weights directly instead of entering the moment
    estimates — which is why biases/norms are placed in a zero-decay
    parameter group (§2.2) and why LLMTailor must preserve per-group decay
    settings when regrouping.
    """

    DECOUPLED_DECAY = True

    def __init__(
        self,
        params: Iterable,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
        *,
        fused: bool = True,
    ) -> None:
        super().__init__(params, lr=lr, betas=betas, eps=eps,
                         weight_decay=weight_decay, fused=fused)
