"""``llmtailor`` command-line interface.

Mirrors the paper artifact's workflow:

* ``llmtailor train -o RUN_DIR [--faults plan.yaml]`` — run a simulated
  ZeRO-3 training experiment; with a fault plan, the chaos supervisor
  injects the scheduled failures and recovers (shrink/grow + elastic
  resume), reporting goodput; add ``--resume`` to continue a soak;
* ``llmtailor faults -o trace.yaml --seed S`` — sample a seeded
  spot-instance preemption trace to feed ``train --faults``;
* ``llmtailor merge -r recipe.yaml [-o OUT]`` — assemble a Frankenstein
  checkpoint from a YAML recipe;
* ``llmtailor auto-merge RUN_DIR --failure-step N -o OUT`` — scan a
  partial-checkpoint trail and merge automatically (workflow T2);
* ``llmtailor reshard CKPT_DIR -o OUT -w M`` — elastically re-partition
  a complete checkpoint's optimizer shards to a new world size (N→M,
  streaming by default);
* ``llmtailor verify CKPT_DIR`` — structural verification;
* ``llmtailor describe CKPT_DIR`` — sizes and slot coverage;
* ``llmtailor groups MODEL`` — print the tailored 2L+x group layout
  (paper Fig. 3);
* ``llmtailor plan MODEL STRATEGY`` — analytic size/time plan for a
  strategy (paper Tables 3/6 methodology), plus ``--merge-checkpoints``
  for the analytic merge-cost estimate;
* ``llmtailor bench ...`` — forwards to :mod:`repro.bench.runner` (run
  the benchmark suite, emit/gate ``BENCH_*.json`` artifacts);
* ``llmtailor serve --socket PATH`` — run the multi-tenant merge
  service daemon (priority queue, per-tenant quotas, cross-request
  group cache, content-addressed dedup; see docs/serve.md);
* ``llmtailor client JOBFILE --socket PATH`` — submit a job file to a
  running service and wait for the results.

``merge``/``auto-merge`` take ``--workers``/``--stream`` to drive the
parallel streaming merge engine.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import __version__
from .core import LLMTailor, group_layout_table, verify_checkpoint
from .core.autorecipe import recipe_from_run
from .io.reader import describe_checkpoint
from .nn.config import get_config, list_configs
from .strategies import build_strategy, plan_strategy
from .util.humanize import format_bytes, format_pct
from .util.tables import Table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``llmtailor`` argument parser (one subparser per command)."""
    parser = argparse.ArgumentParser(
        prog="llmtailor",
        description="Layer-wise checkpoint tailoring (LLMTailor reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"llmtailor {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser(
        "train", help="run a training experiment (optionally under a fault plan)"
    )
    p_train.add_argument("-o", "--output-dir", required=True,
                         help="run directory (checkpoints land here)")
    p_train.add_argument("--model", default="tiny-untied",
                         help=f"model config ({', '.join(list_configs())})")
    p_train.add_argument("--task", choices=("cpt", "sft"), default="cpt")
    p_train.add_argument("--steps", type=int, default=40, help="total optimizer steps")
    p_train.add_argument("--world-size", type=int, default=2,
                         help="simulated data-parallel ranks")
    p_train.add_argument("--strategy",
                         choices=("full", "parity", "filtered", "magnitude"),
                         default="full", help="checkpoint strategy")
    p_train.add_argument("--interval", type=int, default=10,
                         help="checkpoint interval (steps)")
    p_train.add_argument("--seq-len", type=int, default=32)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--max-checkpoints", type=int, default=None,
                         help="coverage-aware retention limit")
    p_train.add_argument("--faults", default=None, metavar="PLAN_YAML",
                         help="fault-injection plan (see docs/faults.md); the "
                              "chaos supervisor shrinks on rank failures, grows "
                              "on joins/preemption restores, and resumes "
                              "elastically")
    p_train.add_argument("--resume", action="store_true",
                         help="resume from the run's latest checkpoint first; "
                              "with --faults, continue a chaos soak from its "
                              "last leg's checkpoint with the remaining "
                              "fault schedule")
    p_train.add_argument("--compile", action="store_true",
                         help="record the backward pass once and replay it "
                              "(bitwise-identical; see docs/autograd.md)")
    p_train.add_argument("--topology", default=None, metavar="CLUSTER_YAML",
                         help="cluster topology YAML (see docs/topology.md); "
                              "runs the hierarchical communicator with "
                              "per-link-class byte accounting — results are "
                              "bitwise-identical to the flat ring")
    p_train.add_argument("--comm-backend", choices=("auto", "sim", "mp"),
                         default="auto",
                         help="rank execution backend: 'sim' runs ranks "
                              "sequentially in-process, 'mp' forks one worker "
                              "per rank over shared memory (bitwise-identical, "
                              "multi-core); 'auto' defers to $REPRO_COMM_BACKEND")

    p_merge = sub.add_parser("merge", help="merge checkpoints from a YAML recipe")
    p_merge.add_argument("-r", "--recipe", required=True, help="recipe YAML path")
    p_merge.add_argument("-o", "--output", help="output checkpoint directory")
    p_merge.add_argument("--workers", type=int, default=None,
                         help="override recipe options.workers (parallel fan-out)")
    p_merge.add_argument("--stream", action="store_true", default=None,
                         help="use the streaming engine (bounded peak memory)")
    p_merge.add_argument("--cache-mode", choices=("per-checkpoint", "none"),
                         default=None, help="override recipe options.cache_mode")

    p_auto = sub.add_parser("auto-merge", help="auto-merge a partial checkpoint trail")
    p_auto.add_argument("run_dir", help="training run directory with checkpoint-*/")
    p_auto.add_argument("--failure-step", type=int, default=None)
    p_auto.add_argument("-o", "--output", required=True)
    p_auto.add_argument("--workers", type=int, default=1)
    p_auto.add_argument("--stream", action="store_true",
                        help="use the streaming engine (bounded peak memory)")
    p_auto.add_argument(
        "--cache-mode", choices=("per-checkpoint", "none"), default="per-checkpoint"
    )

    p_reshard = sub.add_parser(
        "reshard", help="reshard a complete checkpoint to a new world size (N -> M)"
    )
    p_reshard.add_argument("checkpoint", help="source checkpoint directory")
    p_reshard.add_argument("-o", "--output", required=True,
                           help="output checkpoint directory")
    p_reshard.add_argument("-w", "--target-world-size", type=int, required=True,
                           help="number of ranks the output should have")
    p_reshard.add_argument("--workers", type=int, default=1,
                           help="parallel target-rank transfers")
    p_reshard.add_argument("--stream", action=argparse.BooleanOptionalAction,
                           default=True,
                           help="streaming engine (bounded peak memory; default on)")

    p_verify = sub.add_parser("verify", help="verify a checkpoint structurally")
    p_verify.add_argument("checkpoint", help="checkpoint directory")

    p_desc = sub.add_parser("describe", help="describe a checkpoint")
    p_desc.add_argument("checkpoint", help="checkpoint directory")

    p_groups = sub.add_parser("groups", help="print the tailored parameter-group layout")
    p_groups.add_argument("model", help=f"model config ({', '.join(list_configs())})")

    p_plan = sub.add_parser("plan", help="analytic strategy overhead plan")
    p_plan.add_argument("model", nargs="?", default=None)
    p_plan.add_argument("strategy", nargs="?", default=None,
                        choices=("full", "parity", "filtered", "magnitude"))
    p_plan.add_argument("--interval", type=int, default=100)
    p_plan.add_argument("--steps", type=int, default=1600)
    p_plan.add_argument("--world-size", type=int, default=8)
    p_plan.add_argument("--async-writer", action="store_true",
                        help="model an overlapped (CheckFreq-style) writer")
    p_plan.add_argument("--merge-checkpoints", type=int, default=None, metavar="N",
                        help="also estimate merging N source checkpoints")
    p_plan.add_argument("--reshard-to", type=int, default=None, metavar="M",
                        help="also estimate resharding a --world-size checkpoint "
                             "to M ranks")
    p_plan.add_argument("--workers", type=int, default=1,
                        help="merge/reshard estimate: parallel workers")
    # Default None so each estimate can apply its engine's own default:
    # merge is serial unless --stream, reshard streams unless --no-stream
    # (matching the `merge` and `reshard` commands themselves).
    p_plan.add_argument("--stream", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="merge/reshard estimate: streaming engine")
    p_plan.add_argument("--cache-mode", choices=("per-checkpoint", "none"),
                        default="per-checkpoint", help="merge estimate: load policy")
    p_plan.add_argument("--faults", default=None, metavar="PLAN_YAML",
                        help="also estimate the cost of a fault-injection plan "
                             "(expected lost steps, reshard traffic, slowdown)")
    p_plan.add_argument("--topology", default=None, metavar="CLUSTER_YAML",
                        help="cluster topology YAML: split the traffic, "
                             "reshard, and fault estimates into intra-node "
                             "and inter-node link classes (docs/topology.md)")
    p_plan.add_argument("--serve", default=None, metavar="JOB_YAML",
                        help="print the admission-control cost estimate for a "
                             "serve job file (matches the live server's "
                             "accounting exactly); model/strategy optional")

    p_faults = sub.add_parser(
        "faults",
        help="generate a seeded fault plan (spot-instance preemption trace)",
    )
    p_faults.add_argument("-o", "--output", required=True, metavar="PLAN_YAML",
                          help="where to write the plan (feed to train --faults)")
    p_faults.add_argument("--seed", type=int, default=0)
    p_faults.add_argument("--world-size", type=int, default=4,
                          help="starting (and maximum) fleet size")
    p_faults.add_argument("--steps", type=int, default=2000,
                          help="run horizon the trace is sampled over")
    p_faults.add_argument("--mean-interarrival", type=float, default=None,
                          help="mean steps between preemptions "
                               "(exponential; default steps/8)")
    p_faults.add_argument("--mean-restore", type=float, default=None,
                          help="mean steps until reclaimed capacity rejoins "
                               "(exponential; default interarrival/2)")
    p_faults.add_argument("--min-world-size", type=int, default=1,
                          help="preemptions that would shrink below this floor "
                               "are skipped")

    p_bench = sub.add_parser(
        "bench", help="benchmark runner (discover/run/compare BENCH_*.json artifacts)"
    )
    p_bench.add_argument("bench_args", nargs=argparse.REMAINDER,
                         help="arguments forwarded to repro.bench.runner")

    p_diff = sub.add_parser("diff", help="layer-wise drift between two checkpoints")
    p_diff.add_argument("checkpoint_a")
    p_diff.add_argument("checkpoint_b")
    p_diff.add_argument("--momentum", action="store_true",
                        help="also compare optimizer first moments")

    p_prune = sub.add_parser("prune", help="coverage-aware checkpoint retention")
    p_prune.add_argument("run_dir")
    p_prune.add_argument("--keep-last", type=int, required=True)
    p_prune.add_argument("--dry-run", action="store_true")

    p_serve = sub.add_parser(
        "serve", help="run the multi-tenant merge service daemon"
    )
    p_serve.add_argument("--socket", default=None, metavar="PATH",
                         help="unix socket path to listen on")
    p_serve.add_argument("--host", default=None,
                         help="TCP host to listen on (alternative to --socket)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 picks a free one)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="service-wide engine worker budget")
    p_serve.add_argument("--max-inflight", type=int, default=4,
                         help="per-tenant concurrent job quota")
    p_serve.add_argument("--max-queued-bytes", type=int, default=1 << 30,
                         help="per-tenant outstanding byte-footprint quota")
    p_serve.add_argument("--cache-bytes", type=int, default=256 << 20,
                         help="cross-request group cache capacity")
    p_serve.add_argument("--blob-root", default=None, metavar="DIR",
                         help="content-addressed blob store root (enables "
                              "cross-tenant dedup)")
    p_serve.add_argument("--journal", default=None, metavar="PATH",
                         help="crash-safe job journal (JSONL; unfinished jobs "
                              "replay on restart)")
    p_serve.add_argument("--max-jobs", type=int, default=None, metavar="N",
                         help="soak flag: drain and exit after N jobs complete")
    p_serve.add_argument("--keep-finished", type=int, default=1024, metavar="N",
                         help="terminal jobs retained for status/wait before "
                              "eviction (default 1024)")

    p_client = sub.add_parser(
        "client", help="submit jobs to a running merge service"
    )
    p_client.add_argument("job_file", nargs="?", default=None,
                          help="YAML/JSON job file (single job or {jobs: [...]})")
    p_client.add_argument("--socket", default=None, metavar="PATH",
                          help="unix socket the service listens on")
    p_client.add_argument("--host", default=None, help="TCP host of the service")
    p_client.add_argument("--port", type=int, default=None, help="TCP port")
    p_client.add_argument("--tenant", default=None,
                          help="override the tenant on every submitted job")
    p_client.add_argument("--ping", action="store_true", help="liveness check only")
    p_client.add_argument("--stats", action="store_true",
                          help="print service stats as JSON")
    p_client.add_argument("--shutdown", action="store_true",
                          help="ask the service to drain and stop")
    p_client.add_argument("--timeout", type=float, default=None,
                          help="per-job wait timeout in seconds")
    return parser


def _cmd_train(args) -> int:
    from .dist.faults import FaultPlan
    from .train import ChaosSupervisor, TrainConfig, Trainer

    topology = None
    if args.topology:
        from .dist.topology import Topology

        topology = Topology.from_yaml(args.topology).to_dict()
    config = TrainConfig(
        model=args.model,
        task=args.task,
        output_dir=args.output_dir,
        seed=args.seed,
        world_size=args.world_size,
        seq_len=args.seq_len,
        total_steps=args.steps,
        checkpoint_strategy=args.strategy,
        checkpoint_interval=args.interval,
        max_checkpoints=args.max_checkpoints,
        compile=args.compile,
        comm_backend=args.comm_backend,
        topology=topology,
    )
    if args.faults:
        plan = FaultPlan.from_yaml(args.faults)
        # With --resume this is a soak continuation: the supervisor
        # restarts from the last leg's newest complete checkpoint with
        # the remaining fault schedule (events at or before that step
        # are treated as already applied by the previous run).
        supervisor = ChaosSupervisor(config, plan, resume=args.resume)
        result = supervisor.run()
        print(result.summary())
        if result.fault_timeline is not None:
            print(result.fault_timeline.summary())
        if result.goodput is not None:
            print(result.goodput.summary())
    else:
        trainer = Trainer(config)
        try:
            if args.resume:
                step = trainer.resume_latest()
                print(f"resumed from step {step}")
            result = trainer.train()
        finally:
            trainer.close()
        print(result.summary())
    return 0 if result.interrupted_at is None else 1


def _cmd_merge(args) -> int:
    import dataclasses

    tailor = LLMTailor.from_yaml(args.recipe)
    overrides = {}
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.stream is not None:
        overrides["stream"] = args.stream
    if args.cache_mode is not None:
        overrides["cache_mode"] = args.cache_mode
    if overrides:
        tailor.recipe.options = dataclasses.replace(tailor.recipe.options, **overrides)
    result = tailor.merge(output=args.output)
    print(result.summary())
    return 0


def _cmd_auto_merge(args) -> int:
    recipe = recipe_from_run(
        args.run_dir,
        failure_step=args.failure_step,
        workers=args.workers,
        cache_mode=args.cache_mode,
        stream=args.stream,
    )
    result = LLMTailor(recipe).merge(output=args.output)
    print(result.summary())
    return 0


def _cmd_reshard(args) -> int:
    from .dist.reshard import reshard_checkpoint

    report = reshard_checkpoint(
        args.checkpoint,
        args.output,
        args.target_world_size,
        stream=args.stream,
        workers=args.workers,
    )
    print(report.summary())
    return 0


def _cmd_verify(args) -> int:
    report = verify_checkpoint(args.checkpoint)
    print(report)
    for issue in report.issues:
        print(f"  ISSUE: {issue}")
    return 0 if report.ok else 1


def _cmd_describe(args) -> int:
    info = describe_checkpoint(args.checkpoint)
    info["weight_nbytes_h"] = format_bytes(info["weight_nbytes"])
    info["shard_nbytes_h"] = format_bytes(info["shard_nbytes"])
    info["total_nbytes_h"] = format_bytes(info["total_nbytes"])
    print(json.dumps(info, indent=2, default=str))
    return 0


def _cmd_groups(args) -> int:
    config = get_config(args.model)
    table = Table(
        ["Index", "Group", "Slot", "Weight decay", "#Params"],
        title=f"Tailored parameter groups for {config.name} "
        f"(2L+x = {config.num_param_groups_tailored})",
    )
    for row in group_layout_table(config):
        table.add_row(
            [row["index"], row["group"], row["slot"], row["weight_decay"], row["num_params"]]
        )
    print(table.render())
    return 0


def _print_serve_plan(job_file) -> None:
    from .strategies import plan_serve_cost

    plan = plan_serve_cost(job_file)
    print(f"serve admission estimate for {plan.job_file} "
          f"({len(plan.entries)} job(s)):")
    for i, entry in enumerate(plan.entries):
        cost = entry["cost"]
        print(f"  [{i}] tenant={entry['tenant']} kind={entry['kind']} "
              f"priority={entry['priority']}: "
              f"{format_bytes(cost['total_bytes'])} "
              f"(read {format_bytes(cost['bytes_read'])}, "
              f"write {format_bytes(cost['bytes_written'])}), "
              f"{cost['est_seconds']:.3f}s simulated")
    for tenant, agg in sorted(plan.per_tenant().items()):
        print(f"  tenant {tenant}: {agg['jobs']} job(s), "
              f"{format_bytes(agg['total_bytes'])} charged, "
              f"{agg['est_seconds']:.3f}s simulated")
    print(f"  total                  : {format_bytes(plan.total_bytes)}, "
          f"{plan.total_seconds:.3f}s simulated")


def _cmd_plan(args) -> int:
    if args.model is None or args.strategy is None:
        if args.serve is None:
            print("error: plan needs MODEL and STRATEGY (or --serve JOB_YAML)",
                  file=sys.stderr)
            return 2
        _print_serve_plan(args.serve)
        return 0
    config = get_config(args.model)
    strategy = build_strategy(args.strategy, config, args.interval)
    topology = None
    if args.topology is not None:
        from .dist.topology import Topology

        topology = Topology.from_yaml(args.topology)
    if args.async_writer:
        from .strategies import plan_strategy_async

        plan = plan_strategy_async(
            config, strategy, total_steps=args.steps, world_size=args.world_size
        )
    else:
        plan = plan_strategy(
            config, strategy, total_steps=args.steps, world_size=args.world_size
        )
    print(f"model {config.name}, strategy {plan.strategy}, interval {args.interval}")
    print(f"  checkpoint events      : {plan.num_events}")
    print(f"  total checkpoint bytes : {format_bytes(plan.total_bytes)}")
    print(f"  checkpoint time        : {plan.checkpoint_seconds:.1f}s simulated")
    print(f"  ckpt time proportion   : {format_pct(plan.checkpoint_time_fraction)}%")
    from .strategies import plan_step_traffic

    traffic = plan_step_traffic(config, world_size=args.world_size, topology=topology)
    model_name = "ring model" if topology is None else f"topology {topology.shape}"
    print(
        f"step traffic ({model_name}, {traffic.num_groups} groups, "
        f"world size {traffic.world_size}):"
    )
    print(f"  reduce-scatter / step  : {format_bytes(traffic.reduce_scatter_bytes)}")
    print(f"  all-gather / step      : {format_bytes(traffic.all_gather_bytes)}")
    print(f"  total / step           : {format_bytes(traffic.total_bytes)}")
    if topology is not None:
        print(f"  intra-node / step      : {format_bytes(traffic.class_bytes('intra'))}")
        print(f"  inter-node / step      : {format_bytes(traffic.class_bytes('inter'))}")
    print(f"  {f'over {args.steps} steps':<23s}: {format_bytes(traffic.total_bytes * args.steps)}")
    if args.merge_checkpoints is not None:
        from .strategies import plan_merge_cost

        merge = plan_merge_cost(
            config,
            world_size=args.world_size,
            num_checkpoints=args.merge_checkpoints,
            cache_mode=args.cache_mode,
            workers=args.workers,
            stream=bool(args.stream),
        )
        mode = "stream" if merge.stream else "serial"
        print(
            f"merge estimate ({merge.num_checkpoints} ckpts, {merge.cache_mode}, "
            f"{mode}, workers={merge.workers}):"
        )
        print(f"  loads per rank         : {merge.loads_per_rank}")
        print(f"  bytes loaded           : {format_bytes(merge.bytes_loaded)}")
        print(f"  bytes decoded          : {format_bytes(merge.bytes_decoded)}")
        print(f"  merge time             : {merge.seconds:.1f}s simulated")
    if args.reshard_to is not None:
        from .strategies import plan_reshard_cost

        reshard = plan_reshard_cost(
            config,
            source_world_size=args.world_size,
            target_world_size=args.reshard_to,
            workers=args.workers,
            stream=args.stream if args.stream is not None else True,
            topology=topology,
        )
        mode = "stream" if reshard.stream else "materialize"
        print(
            f"reshard estimate ({reshard.source_world_size} -> "
            f"{reshard.target_world_size} ranks, {mode}, workers={reshard.workers}):"
        )
        print(f"  shard loads            : {reshard.loads}")
        print(f"  bytes loaded           : {format_bytes(reshard.bytes_loaded)}")
        print(f"  bytes written          : {format_bytes(reshard.bytes_written)}")
        print(f"  peak memory            : {format_bytes(reshard.peak_bytes)}")
        print(f"  reshard time           : {reshard.seconds:.1f}s simulated")
        if topology is not None:
            print(f"  intra-node moves       : {format_bytes(reshard.intra_bytes)} "
                  f"({reshard.intra_seconds:.3f}s)")
            print(f"  inter-node moves       : {format_bytes(reshard.inter_bytes)} "
                  f"({reshard.inter_seconds:.3f}s)")
    if args.faults is not None:
        from .dist.faults import FaultPlan
        from .strategies import plan_fault_cost

        fault_plan = FaultPlan.from_yaml(args.faults)
        faults = plan_fault_cost(
            config, fault_plan, world_size=args.world_size,
            total_steps=args.steps, checkpoint_interval=args.interval,
            topology=topology,
        )
        print(
            f"fault-plan estimate ({faults.num_failures} failure(s), "
            f"{faults.num_joins} join(s), "
            f"world {faults.world_size} -> {faults.final_world_size}):"
        )
        print(f"  lost (replayed) steps  : {faults.lost_steps}")
        print(f"  executed steps         : {faults.executed_steps} "
              f"(of {faults.total_steps})")
        print(f"  elastic reshard loads  : {faults.reshard_loads} "
              f"({format_bytes(faults.reshard_bytes)})")
        print(f"  straggler time         : {faults.straggler_seconds:.1f}s simulated")
        print(f"  collective time        : {faults.comm_seconds:.3f}s simulated")
        print(f"  recovery read time     : {faults.recovery_read_seconds:.3f}s simulated")
        print(f"  join sync-write time   : {faults.sync_write_seconds:.3f}s simulated")
        print(f"  total fault overhead   : {faults.overhead_seconds:.1f}s simulated")
        print(f"  predicted goodput      : {faults.goodput:.4f} useful steps/sim-s")
    if args.serve is not None:
        _print_serve_plan(args.serve)
    return 0


def _cmd_faults(args) -> int:
    from .dist.faults import FaultPlan

    plan = FaultPlan.sample_preemption_trace(
        seed=args.seed,
        world_size=args.world_size,
        total_steps=args.steps,
        mean_interarrival=args.mean_interarrival,
        mean_restore=args.mean_restore,
        min_world_size=args.min_world_size,
    )
    plan.to_yaml(args.output)
    n = len(plan.preemptions)
    deferred = sum(1 for e in plan.rank_joins if e.step > args.steps)
    print(
        f"sampled preemption trace (seed {args.seed}): {n} preemption(s) over "
        f"{args.steps} steps, world {args.world_size} "
        f"(floor {args.min_world_size}); {deferred} restore(s) beyond the "
        f"horizon never fire"
    )
    print(f"wrote {args.output}")
    return 0


# NOTE: `bench` is forwarded by the argv intercept at the top of main()
# (argparse's REMAINDER cannot pass through leading-dash arguments); the
# p_bench subparser exists only so `llmtailor --help` lists the command.


def _cmd_diff(args) -> int:
    from .core.diffstat import diff_checkpoints, nonuniformity_index

    drifts = diff_checkpoints(args.checkpoint_a, args.checkpoint_b,
                              include_momentum=args.momentum)
    table = Table(
        ["Slot", "Weight drift (rel L2)", "Max |dw|", "Momentum drift", "#Params"],
        title=f"Layer-wise drift: {args.checkpoint_a} -> {args.checkpoint_b}",
    )
    for d in drifts:
        table.add_row([d.slot, round(d.weight_l2, 6), round(d.weight_max, 6),
                       round(d.momentum_l2, 6), d.params])
    print(table.render())
    print(f"non-uniformity index (max/median drift): {nonuniformity_index(drifts):.2f}")
    return 0


def _cmd_prune(args) -> int:
    from .io.retention import prune_checkpoints

    removed = prune_checkpoints(args.run_dir, args.keep_last, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(f"{verb} {len(removed)} checkpoint(s): {removed}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import MergeService, ServeConfig, TenantQuota

    config = ServeConfig(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        workers=args.workers,
        quota=TenantQuota(
            max_inflight=args.max_inflight,
            max_queued_bytes=args.max_queued_bytes,
        ),
        cache_bytes=args.cache_bytes,
        blob_root=args.blob_root,
        journal_path=args.journal,
        max_jobs=args.max_jobs,
        keep_finished=args.keep_finished,
    )
    service = MergeService(config)
    try:
        asyncio.run(service.run())
    except KeyboardInterrupt:
        pass
    stats = service.stats()
    print(f"served {stats['jobs']['completed']} job(s), "
          f"{stats['jobs']['failed']} failed, "
          f"cache hit rate {stats['cache']['hit_rate']:.2%}")
    return 0


def _cmd_client(args) -> int:
    from .serve import ServeClient, load_job_file

    client = ServeClient(args.socket, host=args.host, port=args.port)
    try:
        if args.ping:
            ok = client.ping()
            print("pong" if ok else "no response")
            return 0 if ok else 1
        if args.stats:
            print(json.dumps(client.stats(), indent=2, default=str))
            return 0
        if args.shutdown:
            response = client.shutdown()
            print("draining" if response.get("ok") else f"error: {response}")
            return 0 if response.get("ok") else 1
        if args.job_file is None:
            print("error: client needs a job file (or --ping/--stats/--shutdown)",
                  file=sys.stderr)
            return 2
        failed = 0
        for spec in load_job_file(args.job_file):
            doc = spec.to_dict()
            if args.tenant is not None:
                doc["tenant"] = args.tenant
            job = client.submit_and_wait(doc, timeout=args.timeout)
            cost = job["cost"]
            line = (f"{job['id']} [{job['tenant']}/{job['kind']}] {job['status']}"
                    f" ({format_bytes(cost['total_bytes'])} charged)")
            if job["status"] != "done":
                failed += 1
                line += f": {job.get('error')}"
            print(line)
        return 1 if failed else 0
    finally:
        client.close()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: dispatch ``argv`` to the matching subcommand handler."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        # Forward verbatim: argparse's REMAINDER mishandles leading-dash
        # arguments (e.g. `bench --quick run`), so bypass it entirely.
        from .bench.runner import main as bench_main

        return bench_main(argv[1:])
    args = build_parser().parse_args(argv)
    handlers = {
        "train": _cmd_train,
        "merge": _cmd_merge,
        "auto-merge": _cmd_auto_merge,
        "reshard": _cmd_reshard,
        "verify": _cmd_verify,
        "describe": _cmd_describe,
        "groups": _cmd_groups,
        "plan": _cmd_plan,
        "faults": _cmd_faults,
        "diff": _cmd_diff,
        "prune": _cmd_prune,
        "serve": _cmd_serve,
        "client": _cmd_client,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # e.g. `llmtailor describe ... | head`: not an error
        return 0


if __name__ == "__main__":
    sys.exit(main())
