"""Elastic N→M resharding of ZeRO-3 optimizer checkpoints.

Real fleets rarely resume on the world size they checkpointed with: a
training job that saved on N data-parallel ranks comes back on M
(shrunk after a hardware loss, grown after a quota bump).  DeepSpeed's
monolithic per-rank shard files make that a full
gather-everything-then-rescatter operation; this module does it as a
*streaming* transformation instead, built from the same primitives the
merge engine uses (paper §4.2, §5.4):

* per-group shard math — :class:`~repro.dist.partition.GroupPartition`
  makes the N→M mapping a set of interval intersections in master
  coordinates (``N + M - gcd(N, M)`` transfers per group);
* selective TLV reads — :func:`~repro.io.blobfile.read_blob_selected`
  materializes only the groups a target rank needs from each source
  shard, with each group checked against its header ``crc32``;
* the merge engine's worker budget — independent target-rank transfers
  fan across a thread pool clamped by
  :func:`repro.core.optimizer_merge.worker_budget`.

Peak memory is bounded by one *target* shard plus one source shard's
selected groups per concurrent worker — never the full master state —
so N→M stays cheap even when neither N nor M is 1.  ``N→1`` degenerates to a merge-style full
consolidation and ``1→M`` to a scatter; both fall out of the same
interval math.

The output is bitwise round-trippable: resharding N→M→N reproduces the
original shard files exactly, because group padding is canonically zero
(gradients, moments, and AdamW updates all vanish on the padded tail)
and every other byte is carried or recomputed deterministically.
"""

from __future__ import annotations

import re
import shutil
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from ..io.blobfile import read_blob, read_blob_selected, write_blob
from ..io.layout import CheckpointPaths, shard_filename
from ..util.errors import ReshardError
from ..util.timer import WallTimer
from .partition import GroupPartition
from .zero import SHARD_FORMAT_VERSION, group_payload_crc

__all__ = [
    "ReshardReport",
    "placement_transfer_bytes",
    "reshard_checkpoint",
    "reshard_rank_state_dict",
    "reshard_state_dicts",
]

# Top-level shard payload keys in canonical write order.  Everything
# else — e.g. ``global_step``, ``merged_by`` — is carried through in
# source order, *from source rank 0* (rank-0-wins: the engine writes
# identical extras into every shard, so divergence only arises from
# hand-assembled files; the semantically critical per-group step
# counters are validated across ranks separately).
_CANONICAL_KEYS = (
    "format_version",
    "zero_stage",
    "world_size",
    "rank",
    "num_total_groups",
    "groups",
    "hyperparams",
    "fp32_flat_groups",
    "state",
)
@dataclass
class ReshardReport:
    """Accounting for one N→M reshard."""

    source: Path
    output: Path
    source_world_size: int
    target_world_size: int
    stream: bool
    workers: int
    num_groups: int
    files_loaded: int = 0
    bytes_loaded: int = 0
    bytes_written: int = 0
    total_seconds: float = 0.0
    rank_seconds: list[float] = field(default_factory=list)
    #: Topology shape string (e.g. ``"2x4"``) when the reshard was
    #: placement-aware, else ``None``.
    topology: str | None = None
    #: Logical bytes moved between ranks on the same node / different
    #: nodes (fp32 + both moments per overlapped element; uncompressed,
    #: so :func:`repro.strategies.plan_reshard_cost` predicts them
    #: exactly).  Zero when no topology was given.
    intra_bytes: int = 0
    inter_bytes: int = 0

    def summary(self) -> str:
        """Multi-line human-readable recap (world sizes, loads, bytes, time)."""
        mode = "stream" if self.stream else "materialize"
        lines = [
            f"resharded checkpoint: {self.output}",
            f"  world size           : {self.source_world_size} -> "
            f"{self.target_world_size}",
            f"  engine               : {mode}, workers={self.workers}",
            f"  groups per shard     : {self.num_groups}",
            f"  shard files loaded   : {self.files_loaded} "
            f"({self.bytes_loaded} bytes)",
            f"  shard bytes written  : {self.bytes_written}",
            f"  total time           : {self.total_seconds:.3f}s",
        ]
        if self.topology is not None:
            lines.insert(
                3,
                f"  topology             : {self.topology} "
                f"(intra {self.intra_bytes} B, inter {self.inter_bytes} B)",
            )
        return "\n".join(lines)


def placement_transfer_bytes(
    numels: Sequence[int], source_world: int, target_world: int, topology
) -> tuple[int, int]:
    """Per-link-class logical bytes an N→M reshard moves under a topology.

    For every parameter group (given by its master numel) and every
    (target rank, source rank) pair with overlapping master intervals,
    the overlap moves ``12`` bytes per element (fp32 master + both Adam
    moments); the pair's bytes are classed ``intra`` or ``inter`` by
    block placement on ``topology``.  Returns
    ``(intra_bytes, inter_bytes)``.

    This one function is both the live accounting
    (:func:`reshard_checkpoint` with ``topology=``) and the prediction
    (:func:`repro.strategies.plan_reshard_cost` with ``topology=``) —
    shared, like :meth:`~repro.dist.faults.FaultPlan.world_events`, so
    the two sides cannot drift.
    """
    if max(source_world, target_world) > topology.world_size:
        raise ReshardError(
            f"world sizes {source_world}->{target_world} exceed topology "
            f"capacity {topology.world_size}"
        )
    intra = inter = 0
    for numel in numels:
        src = GroupPartition(int(numel), source_world)
        dst = GroupPartition(int(numel), target_world)
        for m in range(target_world):
            dst_lo, dst_hi = dst.master_bounds(m)
            for r in dst.overlapping_ranks(m, src):
                src_lo, src_hi = src.master_bounds(r)
                lo, hi = max(src_lo, dst_lo), min(src_hi, dst_hi)
                if lo >= hi:
                    continue
                moved = 12 * (hi - lo)
                if topology.link_class(r, m) == "intra":
                    intra += moved
                else:
                    inter += moved
    return intra, inter


# ---------------------------------------------------------------------------
# Validation helpers
# ---------------------------------------------------------------------------

def _validate_payload(shard: Mapping[str, Any], world_size: int, rank: int, origin: str) -> None:
    version = shard.get("format_version")
    if version != SHARD_FORMAT_VERSION:
        raise ReshardError(f"{origin}: unsupported shard format_version {version!r}")
    if int(shard.get("world_size", -1)) != world_size:
        raise ReshardError(
            f"{origin}: shard world_size {shard.get('world_size')} != expected {world_size}"
        )
    if int(shard.get("rank", -1)) != rank:
        raise ReshardError(
            f"{origin}: shard carries rank {shard.get('rank')}, expected rank {rank}"
        )


def _complete_headers(shard: Mapping[str, Any], origin: str) -> dict[int, dict]:
    """The shard's group headers, required to cover every group index."""
    headers = {int(h["index"]): h for h in shard.get("groups", [])}
    num_groups = int(shard.get("num_total_groups", len(headers)))
    missing = sorted(set(range(num_groups)) - set(headers))
    if missing:
        raise ReshardError(
            f"{origin}: shard is partial (missing groups {missing[:8]}"
            f"{'...' if len(missing) > 8 else ''}); merge the trail into a "
            "complete checkpoint before resharding"
        )
    return headers


def _verify_group_crc(
    header: Mapping[str, Any], arrays: Mapping[str, np.ndarray], g: int, origin: str
) -> None:
    if "crc32" not in header:
        return  # pre-CRC shard: container-level checks already applied
    actual = group_payload_crc(arrays["fp32"], arrays["exp_avg"], arrays["exp_avg_sq"])
    if actual != int(header["crc32"]):
        raise ReshardError(
            f"{origin}: CRC mismatch for group {g} (corrupt optimizer state)"
        )


def _group_step(state_entry: Mapping[str, Any] | None, g: int, origin: str) -> int:
    if not state_entry or "step" not in state_entry:
        raise ReshardError(f"{origin}: group {g} state is missing its step counter")
    return int(state_entry["step"])


# ---------------------------------------------------------------------------
# Target payload assembly (shared by both engines)
# ---------------------------------------------------------------------------

def _target_payload(
    rank: int,
    target_world_size: int,
    headers: Mapping[int, dict],
    hyperparams: Sequence[dict],
    extras: Mapping[str, Any],
    fp32: dict[int, np.ndarray],
    state: dict[int, dict],
) -> dict[str, Any]:
    """One target rank's shard payload, in the canonical key order."""
    out_headers = []
    for g in sorted(headers):
        numel = int(headers[g]["numel"])
        dst = GroupPartition(numel, target_world_size)
        header = dict(headers[g])  # replaced keys keep their position
        header["padded_numel"] = dst.padded_numel
        header["crc32"] = group_payload_crc(
            fp32[g], state[g]["exp_avg"], state[g]["exp_avg_sq"]
        )
        out_headers.append(header)
    payload: dict[str, Any] = {
        "format_version": SHARD_FORMAT_VERSION,
        "zero_stage": 3,
        "world_size": int(target_world_size),
        "rank": int(rank),
        "num_total_groups": len(out_headers),
        "groups": out_headers,
        "hyperparams": [dict(h) for h in hyperparams],
        "fp32_flat_groups": {g: fp32[g] for g in sorted(fp32)},
        "state": {g: state[g] for g in sorted(state)},
    }
    for key, value in extras.items():
        payload[key] = value
    return payload


def _extras(shard: Mapping[str, Any]) -> dict[str, Any]:
    return {k: v for k, v in shard.items() if k not in _CANONICAL_KEYS}


# ---------------------------------------------------------------------------
# In-memory core
# ---------------------------------------------------------------------------

def _reshard_payloads(
    shards: Sequence[Mapping[str, Any]],
    target_world_size: int,
    ranks: Sequence[int],
    *,
    consume: bool = False,
) -> list[dict[str, Any]]:
    """Re-partition N complete payloads, materializing only ``ranks``.

    With ``consume`` the source payloads are destructively drained: each
    group's arrays are dropped from every source dict once re-sliced, so
    peak memory stays near one full optimizer state instead of two.
    """
    shards = list(shards)
    if not shards:
        raise ReshardError("reshard needs at least one source shard")
    M = int(target_world_size)
    if M < 1:
        raise ReshardError(f"target world_size must be >= 1, got {target_world_size}")
    N = len(shards)
    headers_by_rank: list[dict[int, dict]] = []
    for rank, shard in enumerate(shards):
        _validate_payload(shard, N, rank, f"source rank {rank}")
        headers_by_rank.append(_complete_headers(shard, f"source rank {rank}"))

    ref = shards[0]
    headers = headers_by_rank[0]
    for rank, other in enumerate(headers_by_rank[1:], start=1):
        if set(other) != set(headers):
            raise ReshardError(
                f"source rank {rank}: group set differs from rank 0 "
                f"({len(other)} vs {len(headers)} groups) — the shards "
                "belong to different checkpoints"
            )
        for g, header in headers.items():
            if int(other[g]["numel"]) != int(header["numel"]) or list(
                other[g].get("param_names", [])
            ) != list(header.get("param_names", [])):
                raise ReshardError(
                    f"source rank {rank}: group {g} geometry differs from rank 0 — "
                    "the shards belong to different checkpoints"
                )

    hyperparams = list(ref.get("hyperparams", []))
    extras = _extras(ref)

    out_fp32: dict[int, dict[int, np.ndarray]] = {m: {} for m in ranks}
    out_state: dict[int, dict[int, dict]] = {m: {} for m in ranks}
    for g in sorted(headers):
        numel = int(headers[g]["numel"])
        src = GroupPartition(numel, N)
        dst = GroupPartition(numel, M)
        arrays_by_rank: list[dict[str, np.ndarray]] = []
        steps = set()
        for rank, shard in enumerate(shards):
            origin = f"source rank {rank}"
            entry = shard.get("state", {}).get(g) or {}
            fp32 = shard.get("fp32_flat_groups", {}).get(g)
            if fp32 is None or entry.get("exp_avg") is None or entry.get("exp_avg_sq") is None:
                raise ReshardError(f"{origin}: group {g} state arrays are missing")
            arrays = {
                "fp32": np.asarray(fp32, dtype=np.float32),
                "exp_avg": np.asarray(entry["exp_avg"], dtype=np.float32),
                "exp_avg_sq": np.asarray(entry["exp_avg_sq"], dtype=np.float32),
            }
            _verify_group_crc(headers_by_rank[rank][g], arrays, g, origin)
            steps.add(_group_step(entry, g, origin))
            arrays_by_rank.append(arrays)
            if consume:
                shard["fp32_flat_groups"].pop(g, None)
                entry.pop("exp_avg", None)
                entry.pop("exp_avg_sq", None)
        if len(steps) != 1:
            raise ReshardError(
                f"group {g}: step counters disagree across source ranks ({sorted(steps)})"
            )
        step = steps.pop()
        for m in ranks:
            out_state[m][g] = {"step": step}
        for key in ("fp32", "exp_avg", "exp_avg_sq"):
            master = src.gather([arrays[key] for arrays in arrays_by_rank])
            for m in ranks:
                lo, hi = dst.master_bounds(m)
                target = np.zeros(dst.shard_numel, dtype=np.float32)
                target[: hi - lo] = master[lo:hi]
                if key == "fp32":
                    out_fp32[m][g] = target
                else:
                    out_state[m][g][key] = target

    return [
        _target_payload(m, M, headers, hyperparams, extras, out_fp32[m], out_state[m])
        for m in ranks
    ]


def reshard_state_dicts(
    shards: Sequence[Mapping[str, Any]],
    target_world_size: int,
    *,
    consume: bool = False,
) -> list[dict[str, Any]]:
    """Re-partition N complete rank payloads into M (fully in memory).

    The inverse-free core of the resharder: gather each group's padded
    source slices, strip the padding, re-pad and re-slice for the target
    world size, recomputing per-group CRCs.  Group padding is canonically
    zero (the engine's gradients and moments vanish on the padded tail),
    which is what makes N→M→N bitwise.

    Hyper-parameters and non-canonical top-level keys (``global_step``,
    ``merged_by``, ...) are taken from source rank 0 and replicated to
    every target rank: the engine writes the scheduler-driven reference
    optimizer's values — and identical extras — into all shards, so the
    ranks agree by construction and rank 0 wins on hand-made divergence.

    This path materializes the full master state — use
    :func:`reshard_checkpoint` with ``stream=True`` for the bounded-
    memory file-to-file version, or :func:`reshard_rank_state_dict` for
    a single target rank's payload.  ``consume`` destructively drains
    the source payloads group by group as they are re-sliced, keeping
    peak memory near one optimizer state instead of two — pass it when
    the sources are not needed afterwards (the elastic reader does).
    """
    return _reshard_payloads(
        shards, target_world_size, range(int(target_world_size)), consume=consume
    )


def reshard_rank_state_dict(
    shards: Sequence[Mapping[str, Any]], target_world_size: int, rank: int
) -> dict[str, Any]:
    """One target rank's resharded payload, without building the other M-1.

    The engine's elastic ``load_rank_state_dict(..., peers=...)`` path
    uses this so a single-rank restore does not allocate every target
    payload.  Callers restoring *all* ranks should call
    :func:`reshard_state_dicts` once instead of this M times.
    """
    M = int(target_world_size)
    if not 0 <= rank < M:
        raise ReshardError(f"target rank {rank} out of range for world_size {M}")
    return _reshard_payloads(shards, M, [rank])[0]


# ---------------------------------------------------------------------------
# Streaming file-based engine
# ---------------------------------------------------------------------------

def _read_shard_metadata(path: Path) -> dict[str, Any]:
    """Everything about a shard except its arrays, in one bounded pass.

    Materializes headers, hyperparams, per-group step counters, and the
    non-canonical top-level keys; the array payloads are skipped in the
    byte stream.  The full payload still flows through the decompressor,
    so the container CRC and length checks apply.
    """

    def want(p: tuple) -> bool:
        if len(p) == 2 and p[0] == "fp32_flat_groups":
            return False
        if len(p) == 3 and p[0] == "state" and p[2] != "step":
            return False
        return True

    doc = read_blob_selected(path, want)
    headers = _complete_headers(doc, str(path))
    steps = {
        g: _group_step(doc.get("state", {}).get(g), g, str(path)) for g in headers
    }
    return {
        "headers": headers,
        "hyperparams": list(doc.get("hyperparams", [])),
        "extras": _extras(doc),
        "steps": steps,
    }


def _selective_group_read(
    shard_path: Path, source_world: int, rank: int, wanted: set[int]
) -> dict[str, Any]:
    """Materialize only ``wanted`` groups from one source shard.

    Mirrors the merge engine's selective extract: early-stop right after
    the last wanted group when every header carries a ``crc32`` (each
    materialized group is then verified individually); fall back to a
    full selective pass — container CRC applies — otherwise.
    """
    if not shard_path.exists():
        raise ReshardError(f"missing optimizer shard for rank {rank}: {shard_path}")

    def want(path: tuple) -> bool:
        if len(path) == 2 and path[0] in ("fp32_flat_groups", "state"):
            return path[1] in wanted
        return True

    def indexed_filter(path: tuple):
        if path in (("groups",), ("hyperparams",)):
            return wanted
        return None

    shard = read_blob_selected(
        shard_path, want,
        indexed_filter=indexed_filter,
        stop_after=("state", max(wanted)),
    )
    headers = {int(h["index"]): h for h in shard.get("groups", [])}
    incomplete = any(
        g not in shard.get("fp32_flat_groups", {}) or g not in shard.get("state", {})
        for g in wanted
    )
    if incomplete or any("crc32" not in h for h in headers.values()):
        shard = read_blob_selected(shard_path, want, indexed_filter=indexed_filter)
        headers = {int(h["index"]): h for h in shard.get("groups", [])}
    _validate_payload(shard, source_world, rank, str(shard_path))
    for g in wanted:
        if g not in headers or g not in shard.get("fp32_flat_groups", {}):
            raise ReshardError(f"{shard_path}: shard lacks group {g}")
        entry = shard["state"].get(g) or {}
        arrays = {
            "fp32": shard["fp32_flat_groups"][g],
            "exp_avg": entry.get("exp_avg"),
            "exp_avg_sq": entry.get("exp_avg_sq"),
        }
        if any(v is None for v in arrays.values()):
            raise ReshardError(f"{shard_path}: group {g} state arrays are missing")
        _verify_group_crc(headers[g], arrays, g, str(shard_path))
    return shard


def _reshard_one_rank(
    paths: CheckpointPaths,
    out_optim_dir: Path,
    meta: dict[str, Any],
    source_world: int,
    target_world: int,
    m: int,
    topology=None,
) -> dict[str, Any]:
    """Stream-build and write target rank ``m``'s shard; returns stats."""
    headers: dict[int, dict] = meta["headers"]
    partitions = {
        g: (GroupPartition(int(h["numel"]), source_world),
            GroupPartition(int(h["numel"]), target_world))
        for g, h in headers.items()
    }

    # Which groups to pull from which source rank: interval intersections
    # in master coordinates.  Proportional partitioning makes the pattern
    # nearly identical across groups, so each target rank touches about
    # (N + M - gcd(N, M)) / M source shards.
    wanted_by_source: dict[int, set[int]] = {}
    for g, (src, dst) in partitions.items():
        for r in dst.overlapping_ranks(m, src):
            wanted_by_source.setdefault(r, set()).add(g)

    fp32: dict[int, np.ndarray] = {}
    state: dict[int, dict] = {}
    for g, (_, dst) in partitions.items():
        fp32[g] = np.zeros(dst.shard_numel, dtype=np.float32)
        state[g] = {
            "step": meta["steps"][g],
            "exp_avg": np.zeros(dst.shard_numel, dtype=np.float32),
            "exp_avg_sq": np.zeros(dst.shard_numel, dtype=np.float32),
        }

    # Placement-aware read order: pull same-node source shards first so
    # the slow inter-node links are touched last (and, on a saturated
    # fabric, overlap with intra-node work).  Each source fills disjoint
    # target intervals, so any order is bitwise-identical.
    read_order = sorted(wanted_by_source)
    if topology is not None:
        read_order.sort(key=lambda r: topology.link_class(r, m) != "intra")

    timer = WallTimer()
    stats = {"rank": m, "files_loaded": 0, "bytes_loaded": 0, "bytes_written": 0}
    with timer:
        for r in read_order:
            wanted = wanted_by_source[r]
            shard_path = paths.shard(r)
            shard = _selective_group_read(shard_path, source_world, r, wanted)
            stats["files_loaded"] += 1
            stats["bytes_loaded"] += shard_path.stat().st_size
            if int(shard.get("num_total_groups", -1)) != len(headers):
                raise ReshardError(
                    f"{shard_path}: shard carries {shard.get('num_total_groups')} "
                    f"groups, rank 0 carries {len(headers)} — the shards belong "
                    "to different checkpoints"
                )
            src_headers = {int(h["index"]): h for h in shard["groups"]}
            for g in sorted(wanted):
                src, dst = partitions[g]
                # Same cross-rank geometry contract as the materializing
                # path: a foreign shard must fail, not interleave.
                if int(src_headers[g]["numel"]) != src.numel or list(
                    src_headers[g].get("param_names", [])
                ) != list(headers[g].get("param_names", [])):
                    raise ReshardError(
                        f"{shard_path}: group {g} geometry differs from rank 0 — "
                        "the shards belong to different checkpoints"
                    )
                step = _group_step(shard["state"].get(g), g, str(shard_path))
                if step != meta["steps"][g]:
                    raise ReshardError(
                        f"{shard_path}: group {g} step {step} disagrees with "
                        f"rank 0's {meta['steps'][g]}"
                    )
                src_lo, src_hi = src.master_bounds(r)
                dst_lo, dst_hi = dst.master_bounds(m)
                lo, hi = max(src_lo, dst_lo), min(src_hi, dst_hi)
                if lo >= hi:
                    continue
                src_base = src.bounds(r)[0]
                dst_base = dst.bounds(m)[0]
                entry = shard["state"][g]
                for key, source_arr in (
                    ("fp32", shard["fp32_flat_groups"][g]),
                    ("exp_avg", entry["exp_avg"]),
                    ("exp_avg_sq", entry["exp_avg_sq"]),
                ):
                    target_arr = fp32[g] if key == "fp32" else state[g][key]
                    target_arr[lo - dst_base : hi - dst_base] = np.asarray(
                        source_arr, dtype=np.float32
                    )[lo - src_base : hi - src_base]

        payload = _target_payload(
            m, target_world, headers, meta["hyperparams"], meta["extras"], fp32, state
        )
        stats["bytes_written"] = write_blob(out_optim_dir / shard_filename(m), payload)
    stats["seconds"] = timer.elapsed
    return stats


def reshard_checkpoint(
    source: "str | Path | CheckpointPaths",
    output: str | Path,
    target_world_size: int,
    *,
    stream: bool = True,
    workers: int = 1,
    topology=None,
) -> ReshardReport:
    """Convert a complete checkpoint from world size N to M on disk.

    Weights and config/metadata files are carried over verbatim (the
    consolidated weight file is world-size independent); the manifest is
    rewritten with the target world size plus reshard provenance; the
    optimizer shards are re-partitioned.

    ``stream=True`` (the default) consumes source shards group-by-group
    through selective reads and writes each target shard as soon as it
    is assembled, bounding peak memory to roughly one target shard plus
    one source shard per concurrent worker — the full master state
    never exists in memory.
    Independent target ranks fan across a thread pool sized by the merge
    engine's worker budget.  ``stream=False`` materializes everything
    through :func:`reshard_state_dicts` (the reference path; bitwise-
    identical output).

    With ``topology`` (a :class:`~repro.dist.topology.Topology`) the
    streaming reads become placement-aware — each target rank pulls
    same-node source shards before cross-node ones (bitwise-identical
    output: sources fill disjoint intervals) — and the report carries
    per-link-class logical byte totals
    (:func:`placement_transfer_bytes`, matched exactly by
    :func:`repro.strategies.plan_reshard_cost`).
    """
    paths = source if isinstance(source, CheckpointPaths) else CheckpointPaths(source)
    if not paths.exists():
        raise ReshardError(f"checkpoint directory not found: {paths.dir}")
    manifest = paths.read_manifest()
    if not manifest.get("complete", False):
        missing = sorted(
            set(manifest.get("all_slots", [])) - set(manifest.get("slots", []))
        )
        raise ReshardError(
            f"{paths.dir} is a partial checkpoint (missing slots {missing[:6]}"
            f"{'...' if len(missing) > 6 else ''}); merge the trail into a "
            "complete checkpoint before resharding"
        )
    N = int(manifest["world_size"])
    M = int(target_world_size)
    if M < 1:
        raise ReshardError(f"target world_size must be >= 1, got {target_world_size}")
    if topology is not None and max(N, M) > topology.world_size:
        raise ReshardError(
            f"reshard {N}->{M} does not fit topology {topology.shape} "
            f"(capacity {topology.world_size})"
        )

    step = int(manifest["step"])
    out_paths = CheckpointPaths(output)
    if out_paths.dir.resolve() == paths.dir.resolve():
        raise ReshardError(
            f"cannot reshard {paths.dir} in place: target shards would "
            "overwrite source shards still being read — use a separate "
            "output directory"
        )
    # The output directory may be arbitrarily named; the optim dir is
    # derived from the source step rather than out_paths.step (which
    # would need the manifest — deliberately written last, see below).
    # One naming trap is rejected outright: a ``checkpoint-<other>``
    # name would make CheckpointPaths.step prefer the directory name
    # over the manifest and resolve shards under the wrong global_step.
    name_match = re.match(r"^checkpoint-(\d+)$", out_paths.dir.name)
    if name_match and int(name_match.group(1)) != step:
        raise ReshardError(
            f"output directory {out_paths.dir.name!r} names step "
            f"{name_match.group(1)} but the checkpoint is at step {step}; "
            f"use checkpoint-{step} or a non-checkpoint-<step> name"
        )
    out_optim_dir = out_paths.dir / f"global_step{step}"
    out_optim_dir.mkdir(parents=True, exist_ok=True)

    total = WallTimer()
    total.start()

    report = ReshardReport(
        source=paths.dir,
        output=out_paths.dir,
        source_world_size=N,
        target_world_size=M,
        stream=bool(stream),
        workers=int(workers),
        num_groups=0,
        topology=None if topology is None else topology.shape,
    )

    if stream:
        meta_path = paths.shard(0)
        meta = _read_shard_metadata(meta_path)
        # The metadata pass decompresses shard 0 once more than the
        # group transfers do — count it, so the report (and the cost
        # model's N + M - gcd + 1) stays honest.
        report.files_loaded += 1
        report.bytes_loaded += meta_path.stat().st_size
        report.num_groups = len(meta["headers"])
        # Local import: optimizer_merge imports repro.dist at module load,
        # so the shared budget helper must be resolved lazily here.
        from ..core.optimizer_merge import worker_budget

        pool_size = worker_budget(workers, M)
        jobs = range(M)
        if pool_size > 1:
            with ThreadPoolExecutor(max_workers=pool_size) as pool:
                results = list(
                    pool.map(
                        lambda m: _reshard_one_rank(
                            paths, out_optim_dir, meta, N, M, m, topology
                        ),
                        jobs,
                    )
                )
        else:
            results = [
                _reshard_one_rank(paths, out_optim_dir, meta, N, M, m, topology)
                for m in jobs
            ]
        for stats in results:
            report.files_loaded += stats["files_loaded"]
            report.bytes_loaded += stats["bytes_loaded"]
            report.bytes_written += stats["bytes_written"]
            report.rank_seconds.append(stats["seconds"])
        if topology is not None:
            numels = [int(h["numel"]) for _, h in sorted(meta["headers"].items())]
            report.intra_bytes, report.inter_bytes = placement_transfer_bytes(
                numels, N, M, topology
            )
    else:
        sources = []
        for r in range(N):
            shard_path = paths.shard(r)
            if not shard_path.exists():
                raise ReshardError(f"missing optimizer shard for rank {r}: {shard_path}")
            sources.append(read_blob(shard_path))
            report.files_loaded += 1
            report.bytes_loaded += shard_path.stat().st_size
        if topology is not None:
            numels = [
                int(h["numel"])
                for h in sorted(sources[0]["groups"], key=lambda h: int(h["index"]))
            ]
            report.intra_bytes, report.inter_bytes = placement_transfer_bytes(
                numels, N, M, topology
            )
        payloads = reshard_state_dicts(sources, M, consume=True)
        report.num_groups = int(payloads[0]["num_total_groups"]) if payloads else 0
        for m, payload in enumerate(payloads):
            report.bytes_written += write_blob(out_optim_dir / shard_filename(m), payload)

    # Re-using an output directory from an earlier, larger-M reshard must
    # not leave stale higher-rank shard files behind the new manifest.
    valid_names = {shard_filename(m) for m in range(M)}
    for stale in out_optim_dir.glob(shard_filename("*")):
        if stale.name not in valid_names:
            stale.unlink()

    # Weights + config files are world-size independent: copy verbatim.
    shutil.copy2(paths.weights, out_paths.dir / paths.weights.name)
    for name in CheckpointPaths.CONFIG_FILES:
        src_file = paths.dir / name
        if src_file.exists():
            shutil.copy2(src_file, out_paths.dir / name)

    # Manifest last (same discipline as save_checkpoint): an aborted
    # reshard must not leave a complete-marked directory that resume
    # tooling would pick up with its shards missing.
    out_manifest = dict(manifest, world_size=M)
    out_manifest["reshard_provenance"] = {
        "source": str(paths.dir),
        "source_world_size": N,
        "stream": bool(stream),
    }
    out_paths.write_manifest(out_manifest)

    report.total_seconds = total.stop()
    return report
