"""Shared-memory process-pool backend for the simulated ZeRO-3 ranks.

:class:`MpComm` graduates the repo's ranks from *simulated* to *real*
parallelism: each rank becomes a long-lived ``multiprocessing`` worker
process (fork start method), and every tensor a collective touches —
the engine's padded fp32 master buffers, the gradient staging buffers,
the per-rank moment buffers and the model's storage-precision weights —
lives in a named ``multiprocessing.shared_memory`` segment, carved out
of a :class:`SharedArena`.  Because workers are *forked* after the
arena is carved, parent and children address the very same pages
through inherited mappings: a collective never serializes an array, it
only synchronizes.

Design contract (the reason this backend can exist at all):

* **Bitwise identity with the sequential path.**  ``MpComm`` subclasses
  :class:`~repro.dist.comm.SimComm` and *inherits its collectives
  verbatim* — the engine's reduce-scatter/all-gather fast paths already
  degenerate to slicing over the shared buffers, so the arithmetic (and
  the ring-model byte accounting that ``plan_step_traffic`` and
  ``ChaosComm`` price against) is exactly the sequential code, run on
  shared pages.  What moves to the workers is the *per-rank compute*
  (forward/backward, AdamW, re-quantize), dispatched over a per-step
  command pipe; every cross-rank reduction is written in a fixed
  fold-left order over the global micro-batch sequence, barrier-
  synchronized, and chunked only *elementwise* across workers — which
  keeps results bit-for-bit equal to the sequential fold no matter how
  the OS schedules the workers.
* **No segment outlives its run.**  Every arena is registered with a
  PID-guarded ``atexit`` hook *and* a ``weakref.finalize`` on its
  communicator, so crashed workers, :class:`ChaosSupervisor` shrinks
  and ``KeyboardInterrupt`` all unlink the ``/dev/shm`` names.  Mapped
  arrays stay valid after the unlink (the pages live until unmapped),
  which is also what makes a closed communicator restartable: a new
  fork re-inherits the same pages.
* **Deadlocks fail loudly.**  Workers enable :mod:`faulthandler`, every
  barrier wait and pipe poll carries a timeout (``REPRO_MP_TIMEOUT``
  seconds, default 120), and a worker that dies mid-step surfaces as a
  :class:`~repro.util.errors.DistError` naming the rank instead of a
  silent hang.

The engine-side attach logic lives in
:class:`~repro.dist.zero.ZeroStage3Engine` (``comm_backend="mp"``); the
per-step worker program for full training lives in
:mod:`repro.train.trainer`.  This module is deliberately generic: a
communicator, an arena allocator, a worker pool and a command pipe.
"""

from __future__ import annotations

import atexit
import faulthandler
import os
import time
import traceback
import weakref
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from ..util.errors import DistError
from .comm import SimComm
from .topology import Topology, _HierAccounting

__all__ = ["HierMpComm", "MpComm", "SharedArena", "mp_available", "mp_unavailable_reason"]

# Shared-memory names are "<prefix>-<pid>-<counter>" so a leak-check can
# attribute /dev/shm entries to this process, and parallel test sessions
# never collide.
SEGMENT_PREFIX = "repro-mp"

# Worker pools spawned by this process, across every MpComm — the CI
# mp leg asserts this moved so an env-gated run cannot silently fall
# back to the sequential backend.
WORKERS_SPAWNED = 0

_DEFAULT_TIMEOUT = float(os.environ.get("REPRO_MP_TIMEOUT", "120"))
_POLL_SECONDS = 0.25

_segment_counter = 0
_availability: tuple[bool, str | None] | None = None

# Live cleanup states, keyed by id; the atexit hook drains whatever the
# finalizers have not already released (KeyboardInterrupt path).
_LIVE: dict[int, "_CleanupState"] = {}
_OWNER_PID = os.getpid()


def _probe_availability() -> tuple[bool, str | None]:
    try:
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            return False, "fork start method unavailable on this platform"
        probe = shared_memory.SharedMemory(create=True, size=1)
        try:
            probe.close()
        finally:
            probe.unlink()
    except (ImportError, OSError) as err:  # pragma: no cover - platform-dependent
        return False, f"shared_memory unusable: {err}"
    return True, None


def mp_available() -> bool:
    """Whether the process-pool backend can run on this platform.

    Requires the ``fork`` start method (workers must inherit the arena
    mappings and the fully-built trainer) and a working
    ``multiprocessing.shared_memory`` (probed once with a 1-byte
    segment).  Callers that cannot use the backend should fall back to
    the sequential :class:`~repro.dist.comm.SimComm` — the two are
    bitwise-identical, so the fallback changes wall-clock only.
    """
    global _availability
    if _availability is None:
        _availability = _probe_availability()
    return _availability[0]


def mp_unavailable_reason() -> str | None:
    """Why :func:`mp_available` is ``False`` (``None`` when available)."""
    mp_available()
    assert _availability is not None
    return _availability[1]


def _next_segment_name(tag: str) -> str:
    global _segment_counter
    _segment_counter += 1
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{_segment_counter}-{tag}"


class SharedArena:
    """One named shared-memory segment, sub-allocated into aligned arrays.

    The parent carves every array *before* forking workers; children
    then see the same arrays through inherited mappings, so no
    re-attachment (and no pickling) ever happens.  Allocation is a bump
    pointer with 64-byte alignment; the segment is zero-initialized by
    the OS, which doubles as the zero-fill of buffer padding tails.
    """

    __slots__ = ("_shm", "nbytes", "_offset", "_unlinked")

    def __init__(self, nbytes: int, *, tag: str = "arena") -> None:
        if nbytes < 1:
            raise DistError(f"arena size must be >= 1 byte, got {nbytes}")
        self._shm = shared_memory.SharedMemory(
            create=True, size=int(nbytes), name=_next_segment_name(tag)
        )
        self.nbytes = int(nbytes)
        self._offset = 0
        self._unlinked = False

    @property
    def name(self) -> str:
        """The segment's name (its ``/dev/shm`` entry on Linux)."""
        return self._shm.name

    @property
    def remaining(self) -> int:
        """Bytes not yet carved out by :meth:`alloc`."""
        return self.nbytes - self._offset

    @staticmethod
    def aligned_nbytes(shape: Sequence[int], dtype: Any = np.float32) -> int:
        """Bytes :meth:`alloc` will consume for ``shape`` (with alignment)."""
        numel = int(np.prod(shape)) if shape else 1
        raw = numel * np.dtype(dtype).itemsize
        return (raw + 63) // 64 * 64

    def alloc(self, shape: Sequence[int], dtype: Any = np.float32) -> np.ndarray:
        """Carve a zeroed, 64-byte-aligned ndarray out of the segment."""
        shape = tuple(int(s) for s in shape)
        nbytes = self.aligned_nbytes(shape, dtype)
        if self._offset + nbytes > self.nbytes:
            raise DistError(
                f"shared arena {self.name} exhausted: need {nbytes} bytes, "
                f"{self.remaining} remaining of {self.nbytes}"
            )
        view = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=self._offset)
        self._offset += nbytes
        return view

    def unlink(self) -> None:
        """Remove the segment's name (idempotent).

        Live numpy views — parent *and* forked children — stay valid:
        the pages are freed only when the last mapping goes away.  Only
        the name dies, which is exactly the leak the ``/dev/shm``
        leak-check test polices.
        """
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass

    def __repr__(self) -> str:
        return (
            f"SharedArena(name={self.name!r}, nbytes={self.nbytes}, "
            f"used={self._offset})"
        )


class _CleanupState:
    """Everything one communicator must release: workers, pipes, arenas."""

    __slots__ = ("pid", "procs", "pipes", "arenas", "released")

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.procs: list[Any] = []
        self.pipes: list[Any] = []
        self.arenas: list[SharedArena] = []
        self.released = False


def _stop_workers(state: _CleanupState, *, join_timeout: float = 5.0) -> None:
    """Stop a generation of workers: ask nicely, then SIGTERM stragglers.

    The graceful path (a ``__close__`` command, then closing the parent
    pipe end so the worker's ``recv`` raises ``EOFError``) lets workers
    run their normal shutdown — which is what lets ``coverage``'s
    multiprocessing tracer save its data file.  SIGTERM (never SIGKILL)
    is the fallback, and the ``sigterm`` coverage option catches that
    path too.
    """
    for conn in state.pipes:
        try:
            conn.send(("__close__", ()))
        except (OSError, ValueError):
            pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    deadline = time.monotonic() + join_timeout
    for proc in state.procs:
        proc.join(timeout=max(0.0, deadline - time.monotonic()))
    for proc in state.procs:
        if proc.is_alive():  # pragma: no cover - deadlocked worker
            proc.terminate()
            proc.join(timeout=join_timeout)
    state.procs.clear()
    state.pipes.clear()


def _release(state: _CleanupState) -> None:
    """Finalizer/atexit body: stop workers and unlink every arena.

    PID-guarded so a forked child that inherited the registry (or a
    finalizer that fires inside one) can never unlink the parent's
    segments out from under it; children exit via ``os._exit`` and do
    not run ``atexit`` hooks anyway, but belt and suspenders.
    """
    if state.released or os.getpid() != state.pid:
        return
    state.released = True
    _stop_workers(state)
    for arena in state.arenas:
        arena.unlink()
    _LIVE.pop(id(state), None)


@atexit.register
def _atexit_release() -> None:
    if os.getpid() != _OWNER_PID:  # pragma: no cover - forked child
        return
    for state in list(_LIVE.values()):
        _release(state)


def _worker_main(
    rank: int,
    conn: Any,
    program_factory: Callable[[int], Any],
    timeout: float,
) -> None:
    """Command loop run inside each forked worker process.

    Builds the rank's program object (a plain instance whose methods are
    the dispatchable commands), then serves ``(method, args)`` tuples
    from the pipe until ``__close__`` or EOF.  Any exception — including
    a broken barrier after a peer died — is reported back as an
    ``("error", traceback)`` reply so the parent can raise a
    :class:`~repro.util.errors.DistError` naming the rank, instead of
    the parent hanging on a reply that never comes.
    """
    try:
        # Best-effort: under pytest's output capture the inherited
        # sys.stderr has no OS-level fd, and faulthandler refuses it.
        # Losing crash stacks there is acceptable; dying at startup and
        # resetting the command pipe is not.
        faulthandler.enable()
    except (ValueError, OSError, AttributeError):
        pass
    program = program_factory(rank)
    while True:
        try:
            if not conn.poll(timeout):
                # Parent went silent past the deadlock budget: dump our
                # stack for the post-mortem and exit instead of hanging.
                try:  # pragma: no cover - deadlock path
                    faulthandler.dump_traceback()
                except (ValueError, OSError, AttributeError):
                    pass
                return  # pragma: no cover
            method, args = conn.recv()
        except (EOFError, OSError):
            return
        if method == "__close__":
            return
        try:
            result = getattr(program, method)(*args)
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except (OSError, ValueError):  # pragma: no cover - parent gone
                return
            continue
        try:
            conn.send(("ok", result))
        except (OSError, ValueError):  # pragma: no cover - parent gone
            return


class MpComm(SimComm):
    """A :class:`~repro.dist.comm.SimComm` whose ranks are real processes.

    The collectives — and their ring-model byte accounting — are
    inherited unchanged: the engine's buffers are shared pages, so the
    sequential reduce-scatter/all-gather code *is* the shared-memory
    implementation (the identity fast paths mean no bytes are copied,
    only charged).  What this class adds is the worker pool: long-lived
    forked processes, one per rank, driven by :meth:`dispatch` over a
    per-step command pipe and synchronized by :meth:`barrier` inside
    commands that reduce across ranks.

    Lifecycle: :meth:`create_arena` carves shared buffers (parent,
    pre-fork) → :meth:`start` forks the pool → :meth:`dispatch` drives
    steps → :meth:`close` stops workers and unlinks segments.  ``close``
    is idempotent, registered with ``atexit`` *and* a ``weakref``
    finalizer, and a closed communicator can :meth:`start` again (the
    unlinked pages survive through inherited mappings).
    """

    backend = "mp"

    def __init__(self, world_size: int, *, timeout: float | None = None) -> None:
        super().__init__(world_size)
        if not mp_available():
            raise DistError(f"mp backend unavailable: {mp_unavailable_reason()}")
        import multiprocessing

        self.timeout = float(timeout if timeout is not None else _DEFAULT_TIMEOUT)
        self._ctx = multiprocessing.get_context("fork")
        self._barrier = self._ctx.Barrier(self.world_size)
        self._state = _CleanupState()
        self._program_factory: Callable[[int, Any], Any] | None = None
        self._dead_ranks: set[int] = set()
        _LIVE[id(self._state)] = self._state
        self._finalizer = weakref.finalize(self, _release, self._state)

    # -- arena management ---------------------------------------------------

    def create_arena(self, nbytes: int, *, tag: str = "arena") -> SharedArena:
        """A new named shared segment, unlinked with this communicator.

        Must be called (and fully carved via :meth:`SharedArena.alloc`)
        before :meth:`start`: workers see arena arrays only through fork
        inheritance.
        """
        if self.started:
            raise DistError("create_arena after start(): workers would not see it")
        arena = SharedArena(nbytes, tag=tag)
        self._state.arenas.append(arena)
        return arena

    @property
    def segment_names(self) -> list[str]:
        """Names of every shared segment this communicator owns."""
        return [a.name for a in self._state.arenas]

    # -- worker pool --------------------------------------------------------

    @property
    def started(self) -> bool:
        """Whether a worker pool is currently running."""
        return bool(self._state.procs)

    def barrier(self) -> Any:
        """The pool-wide barrier (``world_size`` parties, workers only).

        Programs wait on it between the slot-write and fold phases of a
        cross-rank reduction; waits must pass ``timeout=`` (use
        :attr:`timeout`) so a dead peer breaks the barrier loudly.
        """
        return self._barrier

    def start(self, program_factory: Callable[[int, Any], Any] | None = None) -> None:
        """Fork one worker per rank running ``program_factory(rank, barrier)``.

        The factory runs *inside the child*; because the start method is
        ``fork``, it may close over arbitrarily heavy parent state (the
        whole trainer) without pickling, and every ``id()``-keyed lookup
        (optimizer state, donation views) stays valid.  Restarting a
        closed communicator reuses the original factory unless a new one
        is given.
        """
        if self.started:
            return
        if program_factory is not None:
            self._program_factory = program_factory
        if self._program_factory is None:
            raise DistError("start() needs a program factory")
        self._state.released = False
        self._dead_ranks.clear()
        self._barrier = self._ctx.Barrier(self.world_size)
        _LIVE[id(self._state)] = self._state
        factory, barrier = self._program_factory, self._barrier
        for rank in range(self.world_size):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(rank, child_conn, lambda r: factory(r, barrier), self.timeout),
                name=f"repro-mp-rank{rank}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._state.procs.append(proc)
            self._state.pipes.append(parent_conn)
        global WORKERS_SPAWNED
        WORKERS_SPAWNED += self.world_size

    def dispatch(self, method: str, *args: Any) -> list[Any]:
        """Run ``program.<method>(*args)`` on every live rank; gather replies.

        Replies come back in rank order.  A rank that died (crash or
        :meth:`kill_rank`) or exceeds the timeout raises
        :class:`~repro.util.errors.DistError` — per-step commands are
        collective, so a missing rank is a hard error, not a degraded
        mode; elastic shrink happens by building a *new* smaller
        communicator, never by limping on with holes.
        """
        if not self.started:
            raise DistError("dispatch() before start(): no workers to command")
        if self._dead_ranks:
            raise DistError(
                f"dispatch({method!r}): rank(s) {sorted(self._dead_ranks)} are dead"
            )
        for rank, conn in enumerate(self._state.pipes):
            try:
                conn.send((method, args))
            except OSError as err:  # EPIPE: the worker died behind our back
                self._dead_ranks.add(rank)
                raise DistError(
                    f"rank {rank} worker died before {method!r} dispatch ({err})"
                ) from err
        replies: list[Any] = []
        deadline = time.monotonic() + self.timeout
        for rank, conn in enumerate(self._state.pipes):
            while not conn.poll(_POLL_SECONDS):
                if not self._state.procs[rank].is_alive():
                    self._dead_ranks.add(rank)
                    raise DistError(
                        f"rank {rank} worker died during {method!r} "
                        f"(exitcode {self._state.procs[rank].exitcode})"
                    )
                if time.monotonic() > deadline:  # pragma: no cover - deadlock path
                    faulthandler.dump_traceback()
                    raise DistError(
                        f"rank {rank} did not answer {method!r} within "
                        f"{self.timeout:.0f}s (REPRO_MP_TIMEOUT) — likely a "
                        "deadlocked barrier; worker stacks were dumped via "
                        "faulthandler"
                    )
            status, payload = conn.recv()
            if status != "ok":
                raise DistError(f"rank {rank} failed in {method!r}:\n{payload}")
            replies.append(payload)
        return replies

    def kill_rank(self, rank: int) -> None:
        """Terminate one rank's worker (SIGTERM) — the rank-death fault.

        Maps a :class:`~repro.dist.faults.FaultPlan` rank failure onto a
        real process death.  SIGTERM rather than SIGKILL so a coverage
        tracer configured with ``sigterm = true`` still saves the
        worker's data.  Subsequent :meth:`dispatch` calls raise; the
        supervisor's elastic shrink builds a fresh pool at N-1.
        """
        if not 0 <= rank < self.world_size:
            raise DistError(f"rank {rank} out of range for world_size {self.world_size}")
        self._dead_ranks.add(rank)
        if rank < len(self._state.procs):
            proc = self._state.procs[rank]
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=self.timeout)

    def close(self) -> None:
        """Stop the workers and unlink every shared segment (idempotent).

        Parent-side arrays remain readable (checkpoint saves after a
        finished run still work) and :meth:`start` may be called again —
        a re-fork inherits the still-mapped pages even though the
        ``/dev/shm`` names are gone.
        """
        _release(self._state)

    def __repr__(self) -> str:
        return (
            f"MpComm(world_size={self.world_size}, started={self.started}, "
            f"segments={len(self._state.arenas)})"
        )


class HierMpComm(_HierAccounting, MpComm):
    """Topology-aware :class:`MpComm`: real process-pool ranks, 2D accounting.

    Inherits the shared-memory collectives (and therefore bitwise parity
    with the sim backend) verbatim from :class:`MpComm`; only the charge
    hook changes, splitting each collective's bytes across ``intra`` /
    ``inter`` link classes exactly like
    :class:`~repro.dist.topology.HierComm` — the two hierarchical
    backends account identically, just as the flat ones do.
    """

    backend = "mp"

    def __init__(
        self,
        world_size: int,
        topology: Topology,
        *,
        timeout: float | None = None,
    ) -> None:
        super().__init__(world_size, timeout=timeout)
        self._bind_topology(topology)

    def __repr__(self) -> str:
        return (
            f"HierMpComm(world_size={self.world_size}, "
            f"topology={self.topology.shape}, started={self.started})"
        )
