"""Deterministic fault injection for the simulated ZeRO-3 fleet.

Production data-parallel training is defined by its failures: ranks die
mid-step, nodes turn into stragglers, links degrade, and storage flips
bits.  This module is the repo's chaos engine — a *seeded,
schedule-based* :class:`FaultPlan` that drives the same deterministic
machinery the happy path uses, so every failure scenario is exactly
reproducible and every recovery can be pinned bitwise against a
fault-free reference run:

* ``rank_failure(step, rank)`` — the rank dies after the step completes;
  the supervisor loop in :mod:`repro.train.trainer` shrinks the world
  N→N-1 and resumes elastically (PR-3 resharding) from the last
  checkpoint;
* ``straggler(step, rank, slowdown)`` — the rank runs ``slowdown``×
  slower for a window of steps; a synchronous data-parallel step is
  paced by its slowest rank, so the whole world is charged the penalty;
* ``degraded_link(src, dst, bandwidth_scale)`` — one ring link loses
  bandwidth; ring collectives are paced by the slowest link, so every
  collective slows by ``1 / bandwidth_scale``;
* ``bitrot(step, rank, group)`` — a checkpoint shard's group payload is
  corrupted on disk after it is written.  The per-group CRCs introduced
  with the streaming merge engine catch the corruption on the next read
  and recovery re-reads from the surviving replica instead of silently
  resuming from garbage.

:class:`ChaosComm` wraps :class:`~repro.dist.comm.SimComm`: the ring
byte accounting is unchanged (faults do not change how many bytes move)
but each collective additionally charges simulated *seconds* —
``bytes / (link_bandwidth / slowdown)`` — into the trainer's
:class:`~repro.util.timer.SimClock`, which is how straggler and
degraded-link penalties become visible in the run record.

:class:`FaultTimeline` is the chaos engine's flight recorder: every
injected fault and every recovery action lands in it, and the trainer
attaches it to :class:`~repro.train.trainer.TrainResult`.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..util.errors import CheckpointError, ConfigError
from ..util.miniyaml import dump_file, load_file
from .comm import CommStats

__all__ = [
    "DEFAULT_LINK_BANDWIDTH",
    "REPLICA_SUFFIX",
    "ChaosComm",
    "ChaosCommStats",
    "FaultEvent",
    "FaultPlan",
    "FaultTimeline",
    "bitrot",
    "degraded_link",
    "inject_bitrot",
    "rank_failure",
    "repair_from_replicas",
    "straggler",
]

# Ring link bandwidth the time model charges collectives against
# (InfiniBand-ish, matching the Lustre-over-IB storage cost model).
DEFAULT_LINK_BANDWIDTH = 25e9  # bytes/s

# A pristine copy of a shard kept next to the corrupted file — the
# simulated "second storage replica" recovery re-reads from.
REPLICA_SUFFIX = ".replica"

_KINDS = ("rank_failure", "straggler", "degraded_link", "bitrot")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Which fields are meaningful depends on ``kind`` — use the factory
    functions (:func:`rank_failure`, :func:`straggler`,
    :func:`degraded_link`, :func:`bitrot`) instead of constructing
    events directly.  ``step`` is the first global step the event is
    active at (``degraded_link`` defaults to 1: the whole run);
    ``duration`` is the window length in steps, ``None`` meaning "until
    the run ends".
    """

    kind: str
    step: int = 1
    rank: int | None = None
    group: int | None = None
    src: int | None = None
    dst: int | None = None
    slowdown: float | None = None
    bandwidth_scale: float | None = None
    duration: int | None = None

    def active_at(self, step: int) -> bool:
        """Whether this event's window covers the given global step."""
        if step < self.step:
            return False
        return self.duration is None or step < self.step + self.duration

    def to_dict(self) -> dict[str, Any]:
        """Serializable form: ``kind`` plus the fields that are set."""
        out: dict[str, Any] = {"kind": self.kind, "step": self.step}
        for key in ("rank", "group", "src", "dst", "slowdown",
                    "bandwidth_scale", "duration"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        data = dict(data)
        kind = data.pop("kind", None)
        if kind not in _KINDS:
            raise ConfigError(f"fault event kind must be one of {_KINDS}, got {kind!r}")
        known = {"step", "rank", "group", "src", "dst", "slowdown",
                 "bandwidth_scale", "duration"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown fault event keys: {sorted(unknown)}")
        return cls(kind=kind, **data)


def rank_failure(step: int, rank: int) -> FaultEvent:
    """Rank ``rank`` dies after global step ``step`` completes."""
    return FaultEvent(kind="rank_failure", step=int(step), rank=int(rank))


def straggler(
    step: int, rank: int, slowdown: float, *, duration: int | None = 1
) -> FaultEvent:
    """Rank ``rank`` runs ``slowdown``× slower for ``duration`` steps."""
    return FaultEvent(
        kind="straggler", step=int(step), rank=int(rank),
        slowdown=float(slowdown), duration=duration,
    )


def degraded_link(
    src: int, dst: int, bandwidth_scale: float,
    *, step: int = 1, duration: int | None = None,
) -> FaultEvent:
    """The ring link ``src → dst`` keeps only ``bandwidth_scale`` of its
    bandwidth (default: for the whole run)."""
    return FaultEvent(
        kind="degraded_link", step=int(step), src=int(src), dst=int(dst),
        bandwidth_scale=float(bandwidth_scale), duration=duration,
    )


def bitrot(step: int, rank: int, group: int) -> FaultEvent:
    """The first checkpoint written at/after ``step`` gets group
    ``group`` of rank ``rank``'s optimizer shard corrupted on disk."""
    return FaultEvent(kind="bitrot", step=int(step), rank=int(rank), group=int(group))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, schedule-based fault-injection plan.

    The plan is pure data: events plus the seed that generated them (or
    0 for hand-written plans), (de)serializable to the YAML subset the
    recipe format uses, so ``llmtailor train --faults plan.yaml`` can
    replay any scenario exactly.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    # -- queries ------------------------------------------------------------

    @property
    def rank_failures(self) -> list[FaultEvent]:
        """Scheduled rank deaths, ordered by step."""
        return sorted(
            (e for e in self.events if e.kind == "rank_failure"),
            key=lambda e: e.step,
        )

    @property
    def stragglers(self) -> list[FaultEvent]:
        """Scheduled straggler windows, ordered by step."""
        return sorted(
            (e for e in self.events if e.kind == "straggler"), key=lambda e: e.step
        )

    @property
    def degraded_links(self) -> list[FaultEvent]:
        """Scheduled link degradations, ordered by step."""
        return sorted(
            (e for e in self.events if e.kind == "degraded_link"),
            key=lambda e: e.step,
        )

    @property
    def bitrot_events(self) -> list[FaultEvent]:
        """Scheduled checkpoint corruptions, ordered by step."""
        return sorted(
            (e for e in self.events if e.kind == "bitrot"), key=lambda e: e.step
        )

    def compute_slowdown(self, step: int, world_size: int) -> float:
        """Step-time multiplier at ``step``: the slowest active straggler.

        A synchronous data-parallel step is paced by its slowest rank,
        so one straggler slows the whole world.  Events referencing
        ranks the world no longer has (after elastic shrinks) are
        ignored.
        """
        factor = 1.0
        for ev in self.events:
            if (
                ev.kind == "straggler"
                and ev.active_at(step)
                and ev.rank is not None
                and ev.rank < world_size
            ):
                factor = max(factor, float(ev.slowdown))
        return factor

    def comm_slowdown(self, step: int, world_size: int) -> float:
        """Collective-time multiplier at ``step``.

        Ring collectives are paced by the slowest participant *and* the
        slowest link, so this is the max of active straggler slowdowns
        and ``1 / bandwidth_scale`` over active degraded links whose
        endpoints are both in the (possibly shrunk) world.
        """
        factor = self.compute_slowdown(step, world_size)
        for ev in self.events:
            if (
                ev.kind == "degraded_link"
                and ev.active_at(step)
                and ev.src is not None
                and ev.dst is not None
                and ev.src < world_size
                and ev.dst < world_size
            ):
                factor = max(factor, 1.0 / float(ev.bandwidth_scale))
        return factor

    # -- validation ---------------------------------------------------------

    def validate(self, world_size: int, total_steps: int) -> None:
        """Check the plan is executable for a run of this shape.

        Rank failures shrink the world one rank at a time, so the i-th
        failure must name a rank that still exists at that point and
        must leave at least one survivor.
        """
        for ev in self.events:
            if ev.kind not in _KINDS:
                raise ConfigError(f"unknown fault kind {ev.kind!r}")
            if not 1 <= ev.step <= total_steps:
                raise ConfigError(
                    f"{ev.kind} step {ev.step} outside [1, {total_steps}]"
                )
            if ev.duration is not None and ev.duration < 1:
                raise ConfigError(f"{ev.kind} duration must be >= 1, got {ev.duration}")
        failures = self.rank_failures
        if len(failures) >= world_size:
            raise ConfigError(
                f"{len(failures)} rank failures would leave no survivors "
                f"at world_size {world_size}"
            )
        for i, ev in enumerate(failures):
            survivors = world_size - i
            if ev.rank is None or not 0 <= ev.rank < survivors:
                raise ConfigError(
                    f"rank_failure at step {ev.step}: rank {ev.rank} does not "
                    f"exist in the surviving world of {survivors}"
                )
        for ev in self.stragglers:
            if ev.rank is None or not 0 <= ev.rank < world_size:
                raise ConfigError(
                    f"straggler at step {ev.step}: rank {ev.rank} out of range "
                    f"for world_size {world_size}"
                )
            if ev.slowdown is None or ev.slowdown < 1.0:
                raise ConfigError(
                    f"straggler at step {ev.step}: slowdown must be >= 1.0, "
                    f"got {ev.slowdown}"
                )
        for ev in self.degraded_links:
            if (
                ev.src is None or ev.dst is None
                or not 0 <= ev.src < world_size
                or not 0 <= ev.dst < world_size
                or ev.src == ev.dst
            ):
                raise ConfigError(
                    f"degraded_link: ({ev.src}, {ev.dst}) is not a ring link "
                    f"at world_size {world_size}"
                )
            if ev.bandwidth_scale is None or not 0.0 < ev.bandwidth_scale <= 1.0:
                raise ConfigError(
                    f"degraded_link: bandwidth_scale must be in (0, 1], "
                    f"got {ev.bandwidth_scale}"
                )
        for ev in self.bitrot_events:
            if ev.rank is None or ev.rank < 0 or ev.group is None or ev.group < 0:
                raise ConfigError(
                    f"bitrot at step {ev.step}: rank and group must be >= 0"
                )

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serializable plan document (round-trips :meth:`from_dict`)."""
        return {"seed": self.seed, "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from a parsed document (YAML/JSON)."""
        if not isinstance(data, Mapping):
            raise ConfigError(f"fault plan must be a mapping, got {type(data).__name__}")
        unknown = set(data) - {"seed", "events"}
        if unknown:
            raise ConfigError(f"unknown fault plan keys: {sorted(unknown)}")
        events = data.get("events") or []
        if not isinstance(events, (list, tuple)):
            raise ConfigError("fault plan 'events' must be a sequence")
        return cls(
            events=tuple(FaultEvent.from_dict(e) for e in events),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_yaml(cls, path: "str | Path") -> "FaultPlan":
        """Load a plan from a YAML file (the mini-YAML subset)."""
        return cls.from_dict(load_file(path) or {})

    def to_yaml(self, path: "str | Path") -> None:
        """Write the plan as YAML (round-trips :meth:`from_yaml`)."""
        dump_file(path, self.to_dict())

    # -- seeded generation --------------------------------------------------

    @classmethod
    def sample(
        cls,
        *,
        seed: int,
        world_size: int,
        total_steps: int,
        n_failures: int = 1,
        n_stragglers: int = 1,
        n_degraded_links: int = 0,
        n_bitrot: int = 0,
        max_slowdown: float = 4.0,
        max_group: int = 6,
    ) -> "FaultPlan":
        """Generate a random but fully deterministic plan from a seed.

        The generated plan always validates for ``(world_size,
        total_steps)`` — failure ranks respect the shrinking world — so
        seeded sweeps can fuzz the supervisor without hand-writing
        schedules.  Bitrot group ids are drawn from ``[0, max_group)``;
        the smallest model configs have 2L+2 ≥ 6 groups, and an id a
        particular checkpoint does not carry is skipped (recorded, not
        fatal) at injection time.
        """
        if n_failures >= world_size:
            raise ConfigError(
                f"cannot sample {n_failures} failures at world_size {world_size}"
            )
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        if n_failures:
            steps = sorted(
                int(s) for s in rng.choice(
                    np.arange(1, total_steps + 1), size=n_failures, replace=False
                )
            )
            for i, step in enumerate(steps):
                events.append(rank_failure(step, int(rng.integers(world_size - i))))
        for _ in range(n_stragglers):
            start = int(rng.integers(1, total_steps + 1))
            events.append(
                straggler(
                    start,
                    int(rng.integers(world_size)),
                    float(np.round(rng.uniform(1.5, max_slowdown), 2)),
                    duration=int(rng.integers(1, max(2, total_steps // 4))),
                )
            )
        for _ in range(n_degraded_links):
            if world_size < 2:
                break
            src = int(rng.integers(world_size))
            dst = int((src + 1 + rng.integers(world_size - 1)) % world_size)
            events.append(
                degraded_link(src, dst, float(np.round(rng.uniform(0.1, 0.9), 2)))
            )
        for _ in range(n_bitrot):
            events.append(
                bitrot(
                    int(rng.integers(1, total_steps + 1)),
                    int(rng.integers(world_size)),
                    int(rng.integers(max(1, max_group))),
                )
            )
        return cls(events=tuple(events), seed=int(seed))


# ---------------------------------------------------------------------------
# Chaos communicator
# ---------------------------------------------------------------------------

class ChaosCommStats(CommStats):
    """:class:`~repro.dist.comm.CommStats` plus fault-aware time accounting.

    Every charged collective additionally records ``seconds_by_op`` —
    the simulated seconds it took under the current fault penalties.
    The byte/call bookkeeping is inherited, so the two charge contracts
    cannot drift.
    """

    def __init__(self, seconds_fn) -> None:
        super().__init__()
        self.seconds_by_op: dict[str, float] = {}
        self._seconds_fn = seconds_fn

    def charge(self, op: str, nbytes: float) -> None:
        """Record one collective's bytes and its penalized seconds."""
        super().charge(op, nbytes)
        self.seconds_by_op[op] = self.seconds_by_op.get(op, 0.0) + self._seconds_fn(
            float(nbytes)
        )

    def total_seconds(self) -> float:
        """Sum of simulated collective seconds over all ops."""
        return float(sum(self.seconds_by_op.values()))

    def reset(self) -> None:
        """Zero all counters."""
        super().reset()
        self.seconds_by_op.clear()


class ChaosComm:
    """A :class:`~repro.dist.comm.SimComm` that charges fault penalties.

    Collective *semantics* and byte accounting are exactly the wrapped
    communicator's (faults never change what data moves); what changes
    is the simulated clock: every charged collective costs
    ``nbytes / link_bandwidth * comm_slowdown(step)`` seconds, advanced
    on ``clock`` under the ``"comm"`` category.  The trainer calls
    :meth:`set_step` at the top of each optimizer step so window-scoped
    events (stragglers, scoped link degradations) apply to exactly the
    steps they cover.

    Implemented by delegation so it wraps any communicator honoring the
    ``SimComm`` interface; ``stats`` is replaced with a
    :class:`ChaosCommStats` so all existing charge sites fund the time
    model without modification.
    """

    def __init__(
        self,
        comm,
        plan: FaultPlan,
        *,
        clock=None,
        link_bandwidth: float = DEFAULT_LINK_BANDWIDTH,
    ) -> None:
        if link_bandwidth <= 0:
            raise ConfigError(f"link_bandwidth must be > 0, got {link_bandwidth}")
        self._comm = comm
        self.plan = plan
        self.clock = clock
        self.link_bandwidth = float(link_bandwidth)
        self.current_step = 1
        comm.stats = ChaosCommStats(self._collective_seconds)

    @property
    def world_size(self) -> int:
        """The wrapped communicator's world size."""
        return self._comm.world_size

    @property
    def stats(self) -> ChaosCommStats:
        """The shared byte+time accounting (lives on the wrapped comm)."""
        return self._comm.stats

    def set_step(self, step: int) -> None:
        """Position the fault schedule at a global step."""
        self.current_step = int(step)

    def slowdown(self) -> float:
        """The collective-time multiplier active at the current step."""
        return self.plan.comm_slowdown(self.current_step, self.world_size)

    def _collective_seconds(self, nbytes: float) -> float:
        dt = nbytes / self.link_bandwidth * self.slowdown()
        if self.clock is not None and dt > 0.0:
            self.clock.advance(dt, "comm")
        return dt

    # Collectives delegate verbatim; they charge through self.stats.
    def __getattr__(self, name: str):
        return getattr(self._comm, name)

    def __repr__(self) -> str:
        return (
            f"ChaosComm(world_size={self.world_size}, "
            f"slowdown={self.slowdown():.2f}, "
            f"events={len(self.plan.events)})"
        )


# ---------------------------------------------------------------------------
# Bitrot injection and replica repair
# ---------------------------------------------------------------------------

def inject_bitrot(
    checkpoint, rank: int, group: int, *, keep_replica: bool = True
) -> Path:
    """Corrupt one group of one rank's optimizer shard on disk.

    Flips the low mantissa bit of the group's first fp32 master element
    and rewrites the shard container.  The container-level CRC is
    recomputed by the writer (the file is structurally valid — this is
    *silent* storage bitrot, not a truncated download), but the group's
    header ``crc32`` now disagrees with its payload, which is exactly
    the corruption class the per-group CRCs exist to catch: every
    reader that materializes the group (engine load, merge, reshard)
    fails loudly instead of resuming from garbage.

    With ``keep_replica`` (the default) the pristine file is first
    copied to ``<shard>.replica`` — the simulated second storage
    replica :func:`repair_from_replicas` restores from.
    """
    from ..io.blobfile import read_blob, write_blob
    from ..io.layout import CheckpointPaths

    paths = CheckpointPaths(checkpoint)
    shard_path = paths.shard(rank)
    if not shard_path.exists():
        raise CheckpointError(f"no optimizer shard for rank {rank} at {shard_path}")
    payload = read_blob(shard_path)
    fp32 = payload.get("fp32_flat_groups", {}).get(group)
    if fp32 is None:
        raise CheckpointError(
            f"{shard_path}: shard has no group {group} to corrupt "
            f"(present: {sorted(payload.get('fp32_flat_groups', {}))[:8]})"
        )
    fp32 = np.array(fp32, dtype=np.float32)
    if fp32.size == 0:
        raise CheckpointError(f"{shard_path}: group {group} is empty on rank {rank}")
    fp32.view(np.uint32)[0] ^= 0x1
    payload["fp32_flat_groups"][group] = fp32
    if keep_replica:
        shutil.copy2(shard_path, _replica_path(shard_path))
    write_blob(shard_path, payload)
    return shard_path


def _replica_path(shard_path: Path) -> Path:
    return shard_path.with_name(shard_path.name + REPLICA_SUFFIX)


def repair_from_replicas(root: "str | Path") -> list[Path]:
    """Restore every ``*.replica`` backup found under ``root``.

    Returns the shard paths repaired (the replica files are consumed).
    Recovery calls this when a resume or merge fails a per-group CRC
    check — the simulated re-read from a redundant copy.
    """
    root = Path(root)
    repaired: list[Path] = []
    for replica in sorted(root.rglob(f"*{REPLICA_SUFFIX}")):
        original = replica.with_name(replica.name[: -len(REPLICA_SUFFIX)])
        shutil.move(str(replica), str(original))
        repaired.append(original)
    return repaired


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

@dataclass
class FaultTimeline:
    """Chronological record of injected faults and recovery actions.

    The chaos engine's flight recorder, attached to
    :class:`~repro.train.trainer.TrainResult` so a run's failures are
    part of its record the same way its clock and collective traffic
    are.
    """

    events: list[dict] = field(default_factory=list)
    lost_steps: int = 0
    recoveries: int = 0
    reshard_loads: int = 0
    reshard_bytes: int = 0
    bitrot_detected: int = 0
    bitrot_repaired: int = 0

    def record(self, step: int, kind: str, **detail: Any) -> None:
        """Append one timeline entry."""
        entry: dict[str, Any] = {"step": int(step), "kind": str(kind)}
        entry.update(detail)
        self.events.append(entry)

    def kinds(self) -> list[str]:
        """The ``kind`` of every recorded entry, in order."""
        return [e["kind"] for e in self.events]

    def to_dict(self) -> dict[str, Any]:
        """Serializable form (stable keys, JSON-friendly values)."""
        return {
            "events": [dict(e) for e in self.events],
            "lost_steps": self.lost_steps,
            "recoveries": self.recoveries,
            "reshard_loads": self.reshard_loads,
            "reshard_bytes": self.reshard_bytes,
            "bitrot_detected": self.bitrot_detected,
            "bitrot_repaired": self.bitrot_repaired,
        }

    def summary(self) -> str:
        """A short human-readable recap of the run's faults."""
        lines = [
            f"fault timeline: {len(self.events)} event(s), "
            f"{self.recoveries} recovery(ies), {self.lost_steps} step(s) replayed"
        ]
        for e in self.events:
            detail = ", ".join(
                f"{k}={v}" for k, v in e.items() if k not in ("step", "kind")
            )
            lines.append(f"  step {e['step']:>4d}  {e['kind']:<15s} {detail}")
        if self.reshard_loads:
            lines.append(
                f"  elastic reshard: {self.reshard_loads} shard load(s), "
                f"{self.reshard_bytes} bytes"
            )
        if self.bitrot_detected:
            lines.append(
                f"  bitrot: {self.bitrot_detected} detected, "
                f"{self.bitrot_repaired} shard(s) repaired from replicas"
            )
        return "\n".join(lines)
