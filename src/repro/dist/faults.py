"""Deterministic fault injection for the simulated ZeRO-3 fleet.

Production data-parallel training is defined by its failures: ranks die
mid-step, nodes turn into stragglers, links degrade, and storage flips
bits.  This module is the repo's chaos engine — a *seeded,
schedule-based* :class:`FaultPlan` that drives the same deterministic
machinery the happy path uses, so every failure scenario is exactly
reproducible and every recovery can be pinned bitwise against a
fault-free reference run:

* ``rank_failure(step, rank)`` — the rank dies after the step completes;
  the supervisor loop in :mod:`repro.train.trainer` shrinks the world
  N→N-1 and resumes elastically (PR-3 resharding) from the last
  checkpoint;
* ``straggler(step, rank, slowdown)`` — the rank runs ``slowdown``×
  slower for a window of steps; a synchronous data-parallel step is
  paced by its slowest rank, so the whole world is charged the penalty;
* ``degraded_link(src, dst, bandwidth_scale)`` — one ring link loses
  bandwidth; ring collectives are paced by the slowest link, so every
  collective slows by ``1 / bandwidth_scale``;
* ``bitrot(step, rank, group)`` — a checkpoint shard's group payload is
  corrupted on disk after it is written.  The per-group CRCs introduced
  with the streaming merge engine catch the corruption on the next read
  and recovery re-reads from the surviving replica instead of silently
  resuming from garbage;
* ``rank_join(step)`` — a fresh rank becomes available after the step
  completes; the supervisor *grows* the world N→N+1 through the same
  elastic reshard path shrink uses (checkpoint at ws N → resume at
  ws N+1);
* ``preemption(step, rank, restore_after)`` — spot-instance semantics:
  the rank is reclaimed after ``step`` (a ``rank_failure``) and
  replacement capacity arrives ``restore_after`` steps later (a
  ``rank_join``).  :meth:`FaultPlan.sample_preemption_trace` generates
  seeded long-horizon preemption churn with exponential interarrival
  and restore delays;
* ``node_failure(step, node)`` — a whole node is lost: under a
  :class:`~repro.dist.topology.Topology` the event expands to one
  ``rank_failure`` per rank the node hosts, all at the same step, and
  the supervisor shrinks through them one elastic recovery at a time.

Faults compose with cluster topology (:mod:`repro.dist.topology`):
``degraded_link`` targets topology edges (validated at
:meth:`FaultPlan.validate` time) and is priced only against the
hierarchical phase — intra-node or inter-node — that actually crosses
the degraded link.

Elasticity makes *goodput* — useful steps per simulated second — the
SLO a chaos run reports: :class:`GoodputReport` splits the fleet's
simulated time into useful, lost (replayed), and stalled (straggler +
collective-penalty) seconds, with recovery I/O reported alongside.

:class:`ChaosComm` wraps :class:`~repro.dist.comm.SimComm`: the ring
byte accounting is unchanged (faults do not change how many bytes move)
but each collective additionally charges simulated *seconds* —
``bytes / (link_bandwidth / slowdown)`` — into the trainer's
:class:`~repro.util.timer.SimClock`, which is how straggler and
degraded-link penalties become visible in the run record.

:class:`FaultTimeline` is the chaos engine's flight recorder: every
injected fault and every recovery action lands in it, and the trainer
attaches it to :class:`~repro.train.trainer.TrainResult`.
"""

from __future__ import annotations

import math
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..util.errors import CheckpointError, ConfigError
from ..util.miniyaml import dump_file, load_file
from .comm import CommStats

__all__ = [
    "DEFAULT_LINK_BANDWIDTH",
    "REPLICA_SUFFIX",
    "ChaosComm",
    "ChaosCommStats",
    "FaultEvent",
    "FaultPlan",
    "FaultTimeline",
    "GoodputReport",
    "bitrot",
    "degraded_link",
    "inject_bitrot",
    "node_failure",
    "preemption",
    "rank_failure",
    "rank_join",
    "repair_from_replicas",
    "straggler",
]

# Ring link bandwidth the time model charges collectives against
# (InfiniBand-ish, matching the Lustre-over-IB storage cost model).
DEFAULT_LINK_BANDWIDTH = 25e9  # bytes/s

# A pristine copy of a shard kept next to the corrupted file — the
# simulated "second storage replica" recovery re-reads from.
REPLICA_SUFFIX = ".replica"

_KINDS = (
    "rank_failure", "straggler", "degraded_link", "bitrot",
    "rank_join", "preemption", "node_failure",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Which fields are meaningful depends on ``kind`` — use the factory
    functions (:func:`rank_failure`, :func:`straggler`,
    :func:`degraded_link`, :func:`bitrot`) instead of constructing
    events directly.  ``step`` is the first global step the event is
    active at (``degraded_link`` defaults to 1: the whole run);
    ``duration`` is the window length in steps, ``None`` meaning "until
    the run ends".
    """

    kind: str
    step: int = 1
    rank: int | None = None
    group: int | None = None
    src: int | None = None
    dst: int | None = None
    slowdown: float | None = None
    bandwidth_scale: float | None = None
    duration: int | None = None
    restore_after: int | None = None
    node: int | None = None

    def active_at(self, step: int) -> bool:
        """Whether this event's window covers the given global step."""
        if step < self.step:
            return False
        return self.duration is None or step < self.step + self.duration

    def to_dict(self) -> dict[str, Any]:
        """Serializable form: ``kind`` plus the fields that are set."""
        out: dict[str, Any] = {"kind": self.kind, "step": self.step}
        for key in ("rank", "group", "src", "dst", "slowdown",
                    "bandwidth_scale", "duration", "restore_after", "node"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        data = dict(data)
        kind = data.pop("kind", None)
        if kind not in _KINDS:
            raise ConfigError(f"fault event kind must be one of {_KINDS}, got {kind!r}")
        known = {"step", "rank", "group", "src", "dst", "slowdown",
                 "bandwidth_scale", "duration", "restore_after", "node"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown fault event keys: {sorted(unknown)}")
        return cls(kind=kind, **data)


def rank_failure(step: int, rank: int) -> FaultEvent:
    """Rank ``rank`` dies after global step ``step`` completes."""
    return FaultEvent(kind="rank_failure", step=int(step), rank=int(rank))


def straggler(
    step: int, rank: int, slowdown: float, *, duration: int | None = 1
) -> FaultEvent:
    """Rank ``rank`` runs ``slowdown``× slower for ``duration`` steps."""
    return FaultEvent(
        kind="straggler", step=int(step), rank=int(rank),
        slowdown=float(slowdown), duration=duration,
    )


def degraded_link(
    src: int, dst: int, bandwidth_scale: float,
    *, step: int = 1, duration: int | None = None,
) -> FaultEvent:
    """The ring link ``src → dst`` keeps only ``bandwidth_scale`` of its
    bandwidth (default: for the whole run)."""
    return FaultEvent(
        kind="degraded_link", step=int(step), src=int(src), dst=int(dst),
        bandwidth_scale=float(bandwidth_scale), duration=duration,
    )


def bitrot(step: int, rank: int, group: int) -> FaultEvent:
    """The first checkpoint written at/after ``step`` gets group
    ``group`` of rank ``rank``'s optimizer shard corrupted on disk."""
    return FaultEvent(kind="bitrot", step=int(step), rank=int(rank), group=int(group))


def node_failure(step: int, node: int) -> FaultEvent:
    """Every rank on node ``node`` dies after global step ``step`` completes.

    Requires a :class:`~repro.dist.topology.Topology` to resolve which
    ranks live on the node: :meth:`FaultPlan.world_events` expands the
    event into one ``rank_failure`` per hosted rank, all at the same
    step, each targeting the node's *first* rank — under block placement
    the contiguous renumbering after each single-rank shrink keeps the
    node's remaining ranks at that same index, so the expansion removes
    exactly the node's block.
    """
    return FaultEvent(kind="node_failure", step=int(step), node=int(node))


def rank_join(step: int) -> FaultEvent:
    """A fresh rank becomes available after global step ``step``
    completes.  The joining rank always enters as the highest rank of
    the grown world (rank N when growing N→N+1), so the event carries
    no rank of its own."""
    return FaultEvent(kind="rank_join", step=int(step))


def preemption(step: int, rank: int, restore_after: int) -> FaultEvent:
    """Spot-instance preemption: rank ``rank`` is reclaimed after
    ``step`` and replacement capacity joins ``restore_after`` steps
    later.  Expands to ``rank_failure(step, rank)`` followed by
    ``rank_join(step + restore_after)``; a restore landing beyond the
    run's horizon simply never fires (capacity is not returned)."""
    return FaultEvent(
        kind="preemption", step=int(step), rank=int(rank),
        restore_after=int(restore_after),
    )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, schedule-based fault-injection plan.

    The plan is pure data: events plus the seed that generated them (or
    0 for hand-written plans), (de)serializable to the YAML subset the
    recipe format uses, so ``llmtailor train --faults plan.yaml`` can
    replay any scenario exactly.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    # -- queries ------------------------------------------------------------

    @property
    def rank_failures(self) -> list[FaultEvent]:
        """Scheduled rank deaths, ordered by step.

        Includes the death half of every ``preemption`` (which carries
        the preemption's ``restore_after`` as provenance).
        """
        return [e for e in self.world_events() if e.kind == "rank_failure"]

    @property
    def rank_joins(self) -> list[FaultEvent]:
        """Scheduled capacity arrivals, ordered by step.

        Includes the restore half of every ``preemption``; a join
        scheduled beyond the run's horizon is listed but never fires.
        """
        return [e for e in self.world_events() if e.kind == "rank_join"]

    @property
    def preemptions(self) -> list[FaultEvent]:
        """Scheduled spot preemptions (unexpanded), ordered by step."""
        return sorted(
            (e for e in self.events if e.kind == "preemption"),
            key=lambda e: e.step,
        )

    def world_events(self, topology=None) -> list[FaultEvent]:
        """The world-size schedule: every shrink and grow, in firing order.

        Explicit ``rank_failure``/``rank_join`` events plus each
        ``preemption`` expanded into its death and its restore join, and
        each ``node_failure`` expanded into one ``rank_failure`` per rank
        the named node hosts (all at the same step, all targeting the
        node's first rank — contiguous renumbering after each shrink
        walks the block out; each carries ``node`` as provenance).
        Expanding a ``node_failure`` requires ``topology``
        (a :class:`~repro.dist.topology.Topology`); plans without node
        faults never need one.  Ordered by step; ties preserve plan
        order, which also keeps a preemption's join ahead of any later
        same-step death.  This is the single schedule the supervisor's
        pending queue and
        :func:`~repro.strategies.planner.plan_fault_cost`'s replay both
        walk, so live and predicted trajectories cannot drift.
        """
        expanded: list[FaultEvent] = []
        for ev in self.events:
            if ev.kind in ("rank_failure", "rank_join"):
                expanded.append(ev)
            elif ev.kind == "preemption":
                expanded.append(
                    FaultEvent(
                        kind="rank_failure", step=ev.step, rank=ev.rank,
                        restore_after=ev.restore_after,
                    )
                )
                expanded.append(
                    FaultEvent(kind="rank_join", step=ev.step + int(ev.restore_after))
                )
            elif ev.kind == "node_failure":
                if topology is None:
                    raise ConfigError(
                        f"node_failure at step {ev.step} requires a topology to "
                        f"resolve node {ev.node}'s ranks (pass topology=...)"
                    )
                first = topology.node_ranks(int(ev.node))[0]
                expanded.extend(
                    FaultEvent(
                        kind="rank_failure", step=ev.step, rank=first, node=ev.node,
                    )
                    for _ in range(topology.ranks_per_node)
                )
        return sorted(expanded, key=lambda e: e.step)

    @property
    def stragglers(self) -> list[FaultEvent]:
        """Scheduled straggler windows, ordered by step."""
        return sorted(
            (e for e in self.events if e.kind == "straggler"), key=lambda e: e.step
        )

    @property
    def degraded_links(self) -> list[FaultEvent]:
        """Scheduled link degradations, ordered by step."""
        return sorted(
            (e for e in self.events if e.kind == "degraded_link"),
            key=lambda e: e.step,
        )

    @property
    def bitrot_events(self) -> list[FaultEvent]:
        """Scheduled checkpoint corruptions, ordered by step."""
        return sorted(
            (e for e in self.events if e.kind == "bitrot"), key=lambda e: e.step
        )

    def compute_slowdown(self, step: int, world_size: int) -> float:
        """Step-time multiplier at ``step``: the slowest active straggler.

        A synchronous data-parallel step is paced by its slowest rank,
        so one straggler slows the whole world.  Events referencing
        ranks the world no longer has (after elastic shrinks) are
        ignored.
        """
        factor = 1.0
        for ev in self.events:
            if (
                ev.kind == "straggler"
                and ev.active_at(step)
                and ev.rank is not None
                and ev.rank < world_size
            ):
                factor = max(factor, float(ev.slowdown))
        return factor

    def comm_slowdown(
        self,
        step: int,
        world_size: int,
        *,
        topology=None,
        link_class: str | None = None,
    ) -> float:
        """Collective-time multiplier at ``step``.

        Ring collectives are paced by the slowest participant *and* the
        slowest link, so this is the max of active straggler slowdowns
        and ``1 / bandwidth_scale`` over active degraded links whose
        endpoints are both in the (possibly shrunk) world.

        Under a topology the hierarchical phases are independent: a
        degraded NVLink slows only the node-local phase, a degraded
        fabric link only the cross-node phase.  Passing ``topology`` and
        ``link_class`` (``"intra"`` or ``"inter"``) therefore restricts
        the link penalty to degradations whose endpoints fall in that
        class; stragglers always apply (a slow rank paces every phase it
        participates in).  This is exactly how
        :class:`ChaosComm` prices a hierarchical communicator's
        ``<op>/<link_class>`` charges, and how
        :func:`~repro.strategies.planner.plan_fault_cost` predicts them.
        """
        factor = self.compute_slowdown(step, world_size)
        for ev in self.events:
            if (
                ev.kind == "degraded_link"
                and ev.active_at(step)
                and ev.src is not None
                and ev.dst is not None
                and ev.src < world_size
                and ev.dst < world_size
            ):
                if (
                    topology is not None
                    and link_class is not None
                    and topology.link_class(ev.src, ev.dst) != link_class
                ):
                    continue
                factor = max(factor, 1.0 / float(ev.bandwidth_scale))
        return factor

    # -- validation ---------------------------------------------------------

    def validate(self, world_size: int, total_steps: int, *, topology=None) -> None:
        """Check the plan is executable for a run of this shape.

        Failures and joins move the world size one rank at a time, so
        the schedule is checked as a trajectory: each death must name a
        rank that still exists *at that point in the walk* and must
        leave at least one survivor; each join (explicit, or the
        restore half of a preemption) grows the world back.  A
        preemption restore scheduled beyond ``total_steps`` is legal —
        the capacity simply never returns.

        With ``topology`` (a :class:`~repro.dist.topology.Topology`) the
        checks extend to the cluster shape: ``node_failure`` events need
        one (and must name a real, fully occupied node), the trajectory
        may never grow past the cluster's rank capacity, and every
        ``degraded_link`` must target an actual topology edge — an
        intra-node pair or a leader-to-leader pair — whose endpoints
        still exist at the step the degradation begins (nominal
        schedule, ignoring replay).  The last rule closes a latent gap:
        a link that never matches the active world is silently ignored
        by :meth:`comm_slowdown`, so a plan relying on it was a no-op
        fault — with a topology that is now a loud validation error,
        including dangling links left behind by earlier shrinks.
        """
        for ev in self.events:
            if ev.kind not in _KINDS:
                raise ConfigError(f"unknown fault kind {ev.kind!r}")
            if not 1 <= ev.step <= total_steps:
                raise ConfigError(
                    f"{ev.kind} step {ev.step} outside [1, {total_steps}]"
                )
            if ev.duration is not None and ev.duration < 1:
                raise ConfigError(f"{ev.kind} duration must be >= 1, got {ev.duration}")
            if ev.kind == "node_failure":
                if topology is None:
                    raise ConfigError(
                        f"node_failure at step {ev.step} requires a topology "
                        f"(run with --topology / TrainConfig(topology=...))"
                    )
                if ev.node is None or not 0 <= ev.node < topology.nodes:
                    raise ConfigError(
                        f"node_failure at step {ev.step}: node {ev.node} out of "
                        f"range for topology {topology.shape}"
                    )
        for ev in self.preemptions:
            if ev.rank is None or ev.rank < 0:
                raise ConfigError(f"preemption at step {ev.step}: rank must be >= 0")
            if ev.restore_after is None or ev.restore_after < 1:
                raise ConfigError(
                    f"preemption at step {ev.step}: restore_after must be >= 1, "
                    f"got {ev.restore_after}"
                )
        if topology is not None and world_size > topology.world_size:
            raise ConfigError(
                f"world_size {world_size} exceeds topology {topology.shape} "
                f"capacity {topology.world_size}"
            )
        ws = world_size
        for ev in self.world_events(topology):
            if ev.kind == "rank_join":
                ws += 1
                if topology is not None and ws > topology.world_size:
                    raise ConfigError(
                        f"rank_join at step {ev.step} would grow the world to "
                        f"{ws}, beyond topology {topology.shape} capacity "
                        f"{topology.world_size}"
                    )
                continue
            if ws <= 1:
                raise ConfigError(
                    f"rank_failure at step {ev.step} would leave no survivors "
                    f"(world is down to {ws} rank(s) at that point)"
                )
            if ev.rank is None or not 0 <= ev.rank < ws:
                detail = (
                    f"node_failure of node {ev.node}"
                    if ev.node is not None else "rank_failure"
                )
                raise ConfigError(
                    f"{detail} at step {ev.step}: rank {ev.rank} does not "
                    f"exist in the world of {ws} at that point"
                )
            ws -= 1
        for ev in self.stragglers:
            if ev.rank is None or not 0 <= ev.rank < world_size:
                raise ConfigError(
                    f"straggler at step {ev.step}: rank {ev.rank} out of range "
                    f"for world_size {world_size}"
                )
            if ev.slowdown is None or ev.slowdown < 1.0:
                raise ConfigError(
                    f"straggler at step {ev.step}: slowdown must be >= 1.0, "
                    f"got {ev.slowdown}"
                )
        world_deltas = [
            (ev.step, 1 if ev.kind == "rank_join" else -1)
            for ev in self.world_events(topology)
        ]

        def ws_at(step: int) -> int:
            # Nominal world size while executing ``step``: world events
            # take effect after their own step completes.
            return world_size + sum(d for s, d in world_deltas if s < step)

        for ev in self.degraded_links:
            if (
                ev.src is None or ev.dst is None
                or not 0 <= ev.src < world_size
                or not 0 <= ev.dst < world_size
                or ev.src == ev.dst
            ):
                raise ConfigError(
                    f"degraded_link: ({ev.src}, {ev.dst}) is not a ring link "
                    f"at world_size {world_size}"
                )
            if topology is not None:
                if not topology.has_link(ev.src, ev.dst):
                    raise ConfigError(
                        f"degraded_link: ({ev.src}, {ev.dst}) is not an edge of "
                        f"topology {topology.shape} (intra-node pairs and "
                        f"leader-to-leader pairs only)"
                    )
                alive = ws_at(ev.step)
                if ev.src >= alive or ev.dst >= alive:
                    raise ConfigError(
                        f"degraded_link at step {ev.step}: ({ev.src}, {ev.dst}) "
                        f"dangles — the world is down to {alive} rank(s) when "
                        f"the degradation begins, so it would be silently "
                        f"ignored"
                    )
            if ev.bandwidth_scale is None or not 0.0 < ev.bandwidth_scale <= 1.0:
                raise ConfigError(
                    f"degraded_link: bandwidth_scale must be in (0, 1], "
                    f"got {ev.bandwidth_scale}"
                )
        for ev in self.bitrot_events:
            if ev.rank is None or ev.rank < 0 or ev.group is None or ev.group < 0:
                raise ConfigError(
                    f"bitrot at step {ev.step}: rank and group must be >= 0"
                )

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serializable plan document (round-trips :meth:`from_dict`)."""
        return {"seed": self.seed, "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from a parsed document (YAML/JSON)."""
        if not isinstance(data, Mapping):
            raise ConfigError(f"fault plan must be a mapping, got {type(data).__name__}")
        unknown = set(data) - {"seed", "events"}
        if unknown:
            raise ConfigError(f"unknown fault plan keys: {sorted(unknown)}")
        events = data.get("events") or []
        if not isinstance(events, (list, tuple)):
            raise ConfigError("fault plan 'events' must be a sequence")
        return cls(
            events=tuple(FaultEvent.from_dict(e) for e in events),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_yaml(cls, path: "str | Path") -> "FaultPlan":
        """Load a plan from a YAML file (the mini-YAML subset)."""
        return cls.from_dict(load_file(path) or {})

    def to_yaml(self, path: "str | Path") -> None:
        """Write the plan as YAML (round-trips :meth:`from_yaml`)."""
        dump_file(path, self.to_dict())

    # -- seeded generation --------------------------------------------------

    @classmethod
    def sample(
        cls,
        *,
        seed: int,
        world_size: int,
        total_steps: int,
        n_failures: int = 1,
        n_stragglers: int = 1,
        n_degraded_links: int = 0,
        n_bitrot: int = 0,
        max_slowdown: float = 4.0,
        max_group: int = 6,
    ) -> "FaultPlan":
        """Generate a random but fully deterministic plan from a seed.

        The generated plan is :meth:`validate`-d against
        ``(world_size, total_steps)`` before it is returned — sampling
        and validation are one path, so a sampled plan can never be
        rejected later by the trainer.  Bitrot group ids are drawn from
        ``[0, max_group)``;
        the smallest model configs have 2L+2 ≥ 6 groups, and an id a
        particular checkpoint does not carry is skipped (recorded, not
        fatal) at injection time.
        """
        if n_failures >= world_size:
            raise ConfigError(
                f"cannot sample {n_failures} failures at world_size {world_size}"
            )
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        if n_failures:
            steps = sorted(
                int(s) for s in rng.choice(
                    np.arange(1, total_steps + 1), size=n_failures, replace=False
                )
            )
            for i, step in enumerate(steps):
                events.append(rank_failure(step, int(rng.integers(world_size - i))))
        for _ in range(n_stragglers):
            start = int(rng.integers(1, total_steps + 1))
            events.append(
                straggler(
                    start,
                    int(rng.integers(world_size)),
                    float(np.round(rng.uniform(1.5, max_slowdown), 2)),
                    duration=int(rng.integers(1, max(2, total_steps // 4))),
                )
            )
        for _ in range(n_degraded_links):
            if world_size < 2:
                break
            src = int(rng.integers(world_size))
            dst = int((src + 1 + rng.integers(world_size - 1)) % world_size)
            events.append(
                degraded_link(src, dst, float(np.round(rng.uniform(0.1, 0.9), 2)))
            )
        for _ in range(n_bitrot):
            events.append(
                bitrot(
                    int(rng.integers(1, total_steps + 1)),
                    int(rng.integers(world_size)),
                    int(rng.integers(max(1, max_group))),
                )
            )
        plan = cls(events=tuple(events), seed=int(seed))
        plan.validate(world_size, total_steps)
        return plan

    @classmethod
    def sample_preemption_trace(
        cls,
        *,
        seed: int,
        world_size: int,
        total_steps: int,
        mean_interarrival: float | None = None,
        mean_restore: float | None = None,
        min_world_size: int = 1,
    ) -> "FaultPlan":
        """Generate a seeded spot-instance preemption trace.

        Models a fleet under spot churn: preemptions arrive as a
        Poisson-ish process (exponential interarrival, default mean
        ``total_steps / 8``) and each reclaimed rank's replacement
        arrives after an exponential restore delay (default mean half
        the interarrival), rounded to at least one step.  The world
        size stays bounded: it never exceeds the starting
        ``world_size`` (joins only restore reclaimed capacity) and an
        arrival that would drop it to ``min_world_size`` or below is
        skipped — the fleet is already at its floor.  Restores landing
        beyond ``total_steps`` are kept in the plan but never fire.

        Like :meth:`sample`, the trace is :meth:`validate`-d before it
        is returned, so a seeded soak can never be rejected by the
        trainer.
        """
        if world_size < 1:
            raise ConfigError(f"world_size must be >= 1, got {world_size}")
        if not 1 <= min_world_size <= world_size:
            raise ConfigError(
                f"min_world_size must be in [1, {world_size}], got {min_world_size}"
            )
        if mean_interarrival is None:
            mean_interarrival = max(1.0, total_steps / 8.0)
        if mean_restore is None:
            mean_restore = max(1.0, mean_interarrival / 2.0)
        if mean_interarrival <= 0 or mean_restore <= 0:
            raise ConfigError("interarrival and restore means must be > 0")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        restores: list[int] = []  # scheduled join steps, possibly past horizon
        t = 0.0
        last_step = 0
        while True:
            t += float(rng.exponential(mean_interarrival))
            step = max(int(math.ceil(t)), last_step + 1)
            if step > total_steps:
                break
            last_step = step
            # World size once everything scheduled at/before this step
            # has fired (a restore tying with this arrival fires first).
            ws_now = (
                world_size
                - len(events)
                + sum(1 for r in restores if r <= step)
            )
            if ws_now <= min_world_size:
                continue  # fleet at its floor; the arrival finds no spare rank
            rank = int(rng.integers(ws_now))
            restore_after = max(1, int(round(float(rng.exponential(mean_restore)))))
            events.append(preemption(step, rank, restore_after))
            restores.append(step + restore_after)
        plan = cls(events=tuple(events), seed=int(seed))
        plan.validate(world_size, total_steps)
        return plan


# ---------------------------------------------------------------------------
# Chaos communicator
# ---------------------------------------------------------------------------

class ChaosCommStats(CommStats):
    """:class:`~repro.dist.comm.CommStats` plus fault-aware time accounting.

    Every charged collective additionally records ``seconds_by_op`` —
    the simulated seconds it took under the current fault penalties.
    The byte/call bookkeeping is inherited, so the two charge contracts
    cannot drift.
    """

    def __init__(self, seconds_fn) -> None:
        super().__init__()
        self.seconds_by_op: dict[str, float] = {}
        self._seconds_fn = seconds_fn

    def charge(self, op: str, nbytes: float) -> None:
        """Record one collective's bytes and its penalized seconds.

        The op name is forwarded to the pricing function so hierarchical
        charges (``"<op>/intra"`` / ``"<op>/inter"``) can be priced at
        their link class's bandwidth.
        """
        super().charge(op, nbytes)
        self.seconds_by_op[op] = self.seconds_by_op.get(op, 0.0) + self._seconds_fn(
            float(nbytes), op
        )

    def total_seconds(self) -> float:
        """Sum of simulated collective seconds over all ops."""
        return float(sum(self.seconds_by_op.values()))

    def reset(self) -> None:
        """Zero all counters."""
        super().reset()
        self.seconds_by_op.clear()


class ChaosComm:
    """A :class:`~repro.dist.comm.SimComm` that charges fault penalties.

    Collective *semantics* and byte accounting are exactly the wrapped
    communicator's (faults never change what data moves); what changes
    is the simulated clock: every charged collective costs
    ``nbytes / link_bandwidth * comm_slowdown(step)`` seconds, advanced
    on ``clock`` under the ``"comm"`` category.  The trainer calls
    :meth:`set_step` at the top of each optimizer step so window-scoped
    events (stragglers, scoped link degradations) apply to exactly the
    steps they cover.

    Implemented by delegation so it wraps any communicator honoring the
    ``SimComm`` interface; ``stats`` is replaced with a
    :class:`ChaosCommStats` so all existing charge sites fund the time
    model without modification.
    """

    def __init__(
        self,
        comm,
        plan: FaultPlan,
        *,
        clock=None,
        link_bandwidth: float = DEFAULT_LINK_BANDWIDTH,
        topology=None,
    ) -> None:
        if link_bandwidth <= 0:
            raise ConfigError(f"link_bandwidth must be > 0, got {link_bandwidth}")
        self._comm = comm
        self.plan = plan
        self.clock = clock
        self.link_bandwidth = float(link_bandwidth)
        # A hierarchical communicator carries its Topology; adopt it so
        # per-link-class charges are priced at that class's bandwidth
        # and only penalized by faults on links of the same class.
        self.topology = topology if topology is not None else getattr(
            comm, "topology", None
        )
        self.current_step = 1
        comm.stats = ChaosCommStats(self._collective_seconds)

    @property
    def world_size(self) -> int:
        """The wrapped communicator's world size."""
        return self._comm.world_size

    @property
    def stats(self) -> ChaosCommStats:
        """The shared byte+time accounting (lives on the wrapped comm)."""
        return self._comm.stats

    def set_step(self, step: int) -> None:
        """Position the fault schedule at a global step."""
        self.current_step = int(step)

    def slowdown(self, link_class: str | None = None) -> float:
        """The collective-time multiplier active at the current step.

        With a topology and a ``link_class``, only degradations on links
        of that class apply (stragglers always do) — see
        :meth:`FaultPlan.comm_slowdown`.
        """
        return self.plan.comm_slowdown(
            self.current_step, self.world_size,
            topology=self.topology, link_class=link_class,
        )

    def _collective_seconds(self, nbytes: float, op: str = "") -> float:
        link_class = op.rsplit("/", 1)[1] if "/" in op else None
        if self.topology is not None and link_class is not None:
            bandwidth = self.topology.bandwidth(link_class)
        else:
            bandwidth = self.link_bandwidth
        dt = nbytes / bandwidth * self.slowdown(link_class)
        if self.clock is not None and dt > 0.0:
            self.clock.advance(dt, "comm")
        return dt

    # Collectives delegate verbatim; they charge through self.stats.
    def __getattr__(self, name: str):
        return getattr(self._comm, name)

    def __repr__(self) -> str:
        return (
            f"ChaosComm(world_size={self.world_size}, "
            f"slowdown={self.slowdown():.2f}, "
            f"events={len(self.plan.events)})"
        )


# ---------------------------------------------------------------------------
# Bitrot injection and replica repair
# ---------------------------------------------------------------------------

def inject_bitrot(
    checkpoint, rank: int, group: int, *, keep_replica: bool = True
) -> Path:
    """Corrupt one group of one rank's optimizer shard on disk.

    Flips the low mantissa bit of the group's first fp32 master element
    and rewrites the shard container.  The container-level CRC is
    recomputed by the writer (the file is structurally valid — this is
    *silent* storage bitrot, not a truncated download), but the group's
    header ``crc32`` now disagrees with its payload, which is exactly
    the corruption class the per-group CRCs exist to catch: every
    reader that materializes the group (engine load, merge, reshard)
    fails loudly instead of resuming from garbage.

    With ``keep_replica`` (the default) the pristine file is first
    copied to ``<shard>.replica`` — the simulated second storage
    replica :func:`repair_from_replicas` restores from.
    """
    from ..io.blobfile import read_blob, write_blob
    from ..io.layout import CheckpointPaths

    paths = CheckpointPaths(checkpoint)
    shard_path = paths.shard(rank)
    if not shard_path.exists():
        raise CheckpointError(f"no optimizer shard for rank {rank} at {shard_path}")
    payload = read_blob(shard_path)
    fp32 = payload.get("fp32_flat_groups", {}).get(group)
    if fp32 is None:
        raise CheckpointError(
            f"{shard_path}: shard has no group {group} to corrupt "
            f"(present: {sorted(payload.get('fp32_flat_groups', {}))[:8]})"
        )
    fp32 = np.array(fp32, dtype=np.float32)
    if fp32.size == 0:
        raise CheckpointError(f"{shard_path}: group {group} is empty on rank {rank}")
    fp32.view(np.uint32)[0] ^= 0x1
    payload["fp32_flat_groups"][group] = fp32
    if keep_replica:
        shutil.copy2(shard_path, _replica_path(shard_path))
    write_blob(shard_path, payload)
    return shard_path


def _replica_path(shard_path: Path) -> Path:
    return shard_path.with_name(shard_path.name + REPLICA_SUFFIX)


def repair_from_replicas(root: "str | Path") -> list[Path]:
    """Restore every ``*.replica`` backup found under ``root``.

    Returns the shard paths repaired (the replica files are consumed).
    Recovery calls this when a resume or merge fails a per-group CRC
    check — the simulated re-read from a redundant copy.
    """
    root = Path(root)
    repaired: list[Path] = []
    for replica in sorted(root.rglob(f"*{REPLICA_SUFFIX}")):
        original = replica.with_name(replica.name[: -len(REPLICA_SUFFIX)])
        shutil.move(str(replica), str(original))
        repaired.append(original)
    return repaired


# ---------------------------------------------------------------------------
# Goodput accounting
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GoodputReport:
    """Where a chaos run's simulated seconds went, and the goodput SLO.

    Splits the fleet's stepping time into three buckets measured off
    the :class:`~repro.util.timer.SimClock`:

    * **useful** — steps that survived into the final state
      (``useful_steps × sim_step_seconds``, the ``compute`` category
      minus replay);
    * **lost** — steps replayed after failures rolled the run back to a
      checkpoint (``lost_steps × sim_step_seconds``);
    * **stall** — straggler tax plus penalized collective seconds (the
      ``fault_straggler`` and ``comm`` clock categories).

    ``goodput = useful_steps / (useful + lost + stall seconds)`` —
    useful steps per simulated second the fleet spends stepping.
    Recovery I/O (checkpoint reads, join sync writes, merges) is
    reported in ``recovery_seconds`` but kept *out* of the goodput
    denominator: the live storage tier prices actual compressed bytes,
    which a config-only planner cannot reproduce, and goodput must obey
    the same exactness contract as the rest of
    :func:`~repro.strategies.planner.plan_fault_cost` (counts exact,
    seconds to 1e-6).
    """

    useful_steps: int
    lost_steps: int
    useful_seconds: float
    lost_seconds: float
    stall_seconds: float
    recovery_seconds: float

    @property
    def busy_seconds(self) -> float:
        """The goodput denominator: useful + lost + stall seconds."""
        return self.useful_seconds + self.lost_seconds + self.stall_seconds

    @property
    def goodput(self) -> float:
        """Useful steps per simulated stepping second (0 if idle)."""
        busy = self.busy_seconds
        return self.useful_steps / busy if busy > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Serializable form, including the derived goodput."""
        return {
            "useful_steps": self.useful_steps,
            "lost_steps": self.lost_steps,
            "useful_seconds": self.useful_seconds,
            "lost_seconds": self.lost_seconds,
            "stall_seconds": self.stall_seconds,
            "recovery_seconds": self.recovery_seconds,
            "goodput": self.goodput,
        }

    def summary(self) -> str:
        """One-line human-readable recap."""
        return (
            f"goodput: {self.goodput:.4f} useful steps/sim-s "
            f"({self.useful_steps} useful, {self.lost_steps} replayed; "
            f"useful {self.useful_seconds:.1f}s, lost {self.lost_seconds:.1f}s, "
            f"stall {self.stall_seconds:.3f}s; "
            f"recovery I/O {self.recovery_seconds:.3f}s)"
        )


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

@dataclass
class FaultTimeline:
    """Chronological record of injected faults and recovery actions.

    The chaos engine's flight recorder, attached to
    :class:`~repro.train.trainer.TrainResult` so a run's failures are
    part of its record the same way its clock and collective traffic
    are.
    """

    events: list[dict] = field(default_factory=list)
    lost_steps: int = 0
    recoveries: int = 0
    grows: int = 0
    reshard_loads: int = 0
    reshard_bytes: int = 0
    bitrot_detected: int = 0
    bitrot_repaired: int = 0
    recovery_seconds: float = 0.0

    def record(self, step: int, kind: str, **detail: Any) -> None:
        """Append one timeline entry."""
        entry: dict[str, Any] = {"step": int(step), "kind": str(kind)}
        entry.update(detail)
        self.events.append(entry)

    def kinds(self) -> list[str]:
        """The ``kind`` of every recorded entry, in order."""
        return [e["kind"] for e in self.events]

    def to_dict(self) -> dict[str, Any]:
        """Serializable form (stable keys, JSON-friendly values)."""
        return {
            "events": [dict(e) for e in self.events],
            "lost_steps": self.lost_steps,
            "recoveries": self.recoveries,
            "grows": self.grows,
            "reshard_loads": self.reshard_loads,
            "reshard_bytes": self.reshard_bytes,
            "bitrot_detected": self.bitrot_detected,
            "bitrot_repaired": self.bitrot_repaired,
            "recovery_seconds": self.recovery_seconds,
        }

    def summary(self) -> str:
        """A short human-readable recap of the run's faults."""
        lines = [
            f"fault timeline: {len(self.events)} event(s), "
            f"{self.recoveries} recovery(ies) ({self.grows} grow(s)), "
            f"{self.lost_steps} step(s) replayed, "
            f"{self.recovery_seconds:.3f}s recovery I/O"
        ]
        for e in self.events:
            detail = ", ".join(
                f"{k}={v}" for k, v in e.items() if k not in ("step", "kind")
            )
            lines.append(f"  step {e['step']:>4d}  {e['kind']:<15s} {detail}")
        if self.reshard_loads:
            lines.append(
                f"  elastic reshard: {self.reshard_loads} shard load(s), "
                f"{self.reshard_bytes} bytes"
            )
        if self.bitrot_detected:
            lines.append(
                f"  bitrot: {self.bitrot_detected} detected, "
                f"{self.bitrot_repaired} shard(s) repaired from replicas"
            )
        return "\n".join(lines)
