"""Flat-parameter padding and shard math for ZeRO-3 partitioning.

DeepSpeed flattens each parameter group into one contiguous fp32 buffer,
pads it so it divides evenly by the world size, and gives each rank one
equal slice (paper §2.2, Fig. 2).  :class:`GroupPartition` is that
arithmetic, isolated and exactly invertible: for every ``(numel,
world_size)``, ``gather(shards(x)) == x``.

:func:`flatten_arrays` / :func:`unflatten_array` are the flatten step and
its inverse, used both by the engine (masters ↔ model parameters) and by
checkpoint tooling reconstructing per-parameter views from shard files.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..util.errors import DistError, ShapeError

__all__ = ["GroupPartition", "flatten_arrays", "unflatten_array"]


def flatten_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate arrays (C order) into one flat float32 vector."""
    if not arrays:
        return np.zeros(0, dtype=np.float32)
    return np.concatenate([np.asarray(a, dtype=np.float32).ravel() for a in arrays])


def unflatten_array(
    flat: np.ndarray, shapes: Sequence[tuple[int, ...]]
) -> list[np.ndarray]:
    """Split a flat vector back into arrays of the given shapes.

    The flat length must match the shapes exactly — a silent remainder
    would mean a corrupted shard, so both directions raise
    :class:`ShapeError`.
    """
    flat = np.asarray(flat)
    if flat.ndim != 1:
        raise ShapeError(f"unflatten expects a flat vector, got shape {flat.shape}")
    total = sum(int(np.prod(shape)) for shape in shapes)
    if total != flat.size:
        raise ShapeError(
            f"cannot unflatten {flat.size} elements into shapes totalling {total}"
        )
    out: list[np.ndarray] = []
    offset = 0
    for shape in shapes:
        n = int(np.prod(shape))
        out.append(flat[offset : offset + n].reshape(shape).copy())
        offset += n
    return out


class GroupPartition:
    """Even partition of ``numel`` elements over ``world_size`` ranks.

    The buffer is zero-padded up to the next multiple of ``world_size``;
    every rank owns exactly ``shard_numel`` elements, and the padding
    (always ``< world_size``) lives at the tail of the last rank's shard.
    """

    __slots__ = ("numel", "world_size", "padded_numel", "shard_numel", "padding")

    def __init__(self, numel: int, world_size: int) -> None:
        if not isinstance(world_size, (int, np.integer)) or world_size < 1:
            raise DistError(f"world_size must be a positive integer, got {world_size!r}")
        if not isinstance(numel, (int, np.integer)) or numel < 0:
            raise DistError(f"numel must be a non-negative integer, got {numel!r}")
        self.numel = int(numel)
        self.world_size = int(world_size)
        self.shard_numel = -(-self.numel // self.world_size)  # ceil division
        self.padded_numel = self.shard_numel * self.world_size
        self.padding = self.padded_numel - self.numel

    def bounds(self, rank: int) -> tuple[int, int]:
        """Half-open ``[start, stop)`` of rank's slice in padded coordinates."""
        if not 0 <= rank < self.world_size:
            raise DistError(f"rank {rank} out of range for world_size {self.world_size}")
        return rank * self.shard_numel, (rank + 1) * self.shard_numel

    def master_bounds(self, rank: int) -> tuple[int, int]:
        """Rank's half-open slice of the *unpadded* master vector.

        Clipped to ``numel``: a tail rank whose slice is pure padding gets
        an empty range.  This is the coordinate system two partitions of
        the same group share, which is what makes N→M resharding a set of
        interval intersections.
        """
        start, stop = self.bounds(rank)
        return min(start, self.numel), min(stop, self.numel)

    def overlapping_ranks(self, rank: int, other: "GroupPartition") -> list[int]:
        """Ranks of ``other`` whose master slices intersect this rank's.

        The partitions must describe the same group (equal ``numel``).
        Slices are contiguous and sorted, so the result is a consecutive
        run — for equal partitions of P elements over N and M ranks there
        are ``N + M - gcd(N, M)`` intersecting pairs in total.
        """
        if other.numel != self.numel:
            raise DistError(
                f"cannot intersect partitions of {self.numel} and {other.numel} elements"
            )
        lo, hi = self.master_bounds(rank)
        if lo >= hi or other.shard_numel == 0:
            return []
        first = lo // other.shard_numel
        last = (hi - 1) // other.shard_numel
        return list(range(first, min(last, other.world_size - 1) + 1))

    def pad(self, flat: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Zero-pad a flat ``numel`` vector to ``padded_numel``.

        Without ``out`` this allocates a fresh copy.  With ``out`` (a flat
        ``padded_numel`` buffer) the vector is written into the caller's
        buffer — tail re-zeroed, values copied — and ``out`` is returned.
        (The fused engine performs the equivalent copies inline while
        flattening per-parameter gradients into its staging buffer;
        ``out=`` is the buffer-donating form for callers that already
        hold a flat vector.)
        """
        flat = np.asarray(flat)
        if flat.shape != (self.numel,):
            raise ShapeError(
                f"expected a flat vector of {self.numel} elements, got shape {flat.shape}"
            )
        if out is None:
            out = np.zeros(self.padded_numel, dtype=flat.dtype)
        else:
            if out.shape != (self.padded_numel,):
                raise ShapeError(
                    f"pad out= must be a flat vector of {self.padded_numel} "
                    f"elements, got shape {out.shape}"
                )
            out[self.numel:] = 0
        out[: self.numel] = flat
        return out

    def shards(self, flat: np.ndarray) -> list[np.ndarray]:
        """Pad and slice a flat vector into one shard per rank (copies)."""
        padded = self.pad(flat)
        return [
            padded[start:stop].copy()
            for start, stop in (self.bounds(r) for r in range(self.world_size))
        ]

    def shard_views(self, padded: np.ndarray) -> list[np.ndarray]:
        """One zero-copy view per rank into a flat ``padded_numel`` buffer.

        The inverse relationship ``np.concatenate(shard_views(b)) == b``
        holds by construction; mutating a view mutates the buffer.  This
        is what lets the engine keep every rank's master shard inside one
        contiguous per-group buffer, making gather a slice instead of a
        concatenation.
        """
        padded = np.asarray(padded)
        if padded.shape != (self.padded_numel,):
            raise ShapeError(
                f"expected a flat padded vector of {self.padded_numel} "
                f"elements, got shape {padded.shape}"
            )
        return [
            padded[start:stop]
            for start, stop in (self.bounds(r) for r in range(self.world_size))
        ]

    def gather(self, shards: Sequence[np.ndarray]) -> np.ndarray:
        """Inverse of :meth:`shards`: reassemble and strip the padding."""
        if len(shards) != self.world_size:
            raise DistError(
                f"gather expected {self.world_size} shards, got {len(shards)}"
            )
        arrays = [np.asarray(s) for s in shards]
        for rank, shard in enumerate(arrays):
            if shard.shape != (self.shard_numel,):
                raise DistError(
                    f"rank {rank} shard has shape {shard.shape}, "
                    f"expected ({self.shard_numel},)"
                )
        if self.padded_numel == 0:
            return np.zeros(0, dtype=arrays[0].dtype if arrays else np.float32)
        return np.concatenate(arrays)[: self.numel].copy()

    def __repr__(self) -> str:
        return (
            f"GroupPartition(numel={self.numel}, world_size={self.world_size}, "
            f"shard_numel={self.shard_numel}, padding={self.padding})"
        )
