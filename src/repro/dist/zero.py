"""The simulated ZeRO stage-3 engine over tailored parameter groups.

This is the repo's stand-in for DeepSpeed's ``FP16_Optimizer`` +
partitioning machinery (paper §2.2): every optimizer parameter group is
flattened, padded, and split into one fp32 *master* shard per data-
parallel rank; each rank runs its own AdamW over its shards; after every
step the updated masters are all-gathered and re-quantized into the
model's storage-precision (bf16) weights.

Because all ranks live in one process and see the same gradient, the
training math is world-size invariant: ``world_size=1`` and
``world_size=4`` produce identical losses and masters (a property the
test suite pins down).  What sharding *does* change is the checkpoint
anatomy — :meth:`ZeroStage3Engine.rank_state_dict` emits exactly the
monolithic per-rank shard payload that LLMTailor's merge tool,
checkpoint writer/reader, and verifier all operate on.

The training step runs in one of two bitwise-identical modes.  The
default ``fused=True`` pipeline owns persistent per-group buffers: a
contiguous padded fp32 master buffer whose per-rank shards are slice
views (gather = a slice), a padded gradient staging buffer the
reduce-scatter slices in place, and a shared quantize scratch for the
single vectorized re-quantize pass per group — so a step allocates
nothing proportional to the model size.  ``fused=False`` preserves the
original allocate-per-step implementation as the executable reference;
``tests/test_step_fused.py`` pins the two bit-for-bit against each
other.  Because fused shards are *views*, any payload that outlives the
step must copy (the copy-on-save rule in :meth:`rank_state_dict`).

Shard payload (``SHARD_FORMAT_VERSION``)::

    format_version    int
    zero_stage        3
    world_size, rank  int
    num_total_groups  int   (2L + x for the tailored layout)
    groups            [ {index, name, slot, weight_decay, param_names,
                         shapes, numel, padded_numel, crc32} ]
    hyperparams       [ {index, lr, betas, eps, weight_decay} ]
    fp32_flat_groups  {group index -> fp32 master shard (shard_numel,)}
    state             {group index -> {step, exp_avg, exp_avg_sq}}

``crc32`` covers the group's fp32 master + both moment buffers (see
:func:`group_payload_crc`), giving each group the same per-item
integrity that weight tensors get from the tensor-file format — which
is what lets a selective reader verify exactly the groups it
materializes without decoding the whole monolithic blob.

With ``comm_backend="mp"`` the same fused layout is carved out of a
named shared-memory arena (:class:`~repro.dist.mpcomm.SharedArena`)
instead of private heap: masters, gradient staging, both moment buffers
and the storage-precision parameter storage all become views into one
segment, model parameters are re-pointed into it, and the per-rank
AdamW + re-quantize work runs inside long-lived forked worker processes
(:class:`~repro.dist.mpcomm.MpComm`).  The collectives, their byte
accounting, and every checkpoint path stay the sequential code — the
backends are bitwise-identical by construction and pinned so by
``tests/test_mpcomm.py``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from ..autograd.tensor import Tensor
from ..nn.config import ModelConfig
from ..nn.module import Module
from ..numerics.dtypes import DType, quantize
from ..optim.adam import AdamW
from ..optim.optimizer import ParamGroup
from ..util.errors import CheckpointError, ConfigError, DistError
from .comm import SimComm
from .partition import GroupPartition, flatten_arrays, unflatten_array

__all__ = ["SHARD_FORMAT_VERSION", "GroupMeta", "ZeroStage3Engine", "group_payload_crc"]

SHARD_FORMAT_VERSION = 1


def group_payload_crc(
    fp32: np.ndarray, exp_avg: np.ndarray, exp_avg_sq: np.ndarray
) -> int:
    """CRC-32 over one group's shard data (master + moments, in order)."""
    crc = zlib.crc32(np.ascontiguousarray(fp32).tobytes())
    crc = zlib.crc32(np.ascontiguousarray(exp_avg).tobytes(), crc)
    return zlib.crc32(np.ascontiguousarray(exp_avg_sq).tobytes(), crc)


@dataclass(frozen=True)
class GroupMeta:
    """Static description of one sharded parameter group."""

    index: int
    name: str
    slot: str
    weight_decay: float
    param_names: tuple[str, ...]
    shapes: tuple[tuple[int, ...], ...]
    numel: int
    partition: GroupPartition

    def header(self) -> dict[str, Any]:
        """The serializable group header stored in every rank shard."""
        return {
            "index": self.index,
            "name": self.name,
            "slot": self.slot,
            "weight_decay": float(self.weight_decay),
            "param_names": list(self.param_names),
            "shapes": [list(s) for s in self.shapes],
            "numel": self.numel,
            "padded_numel": self.partition.padded_numel,
        }


class ZeroStage3Engine:
    """Per-rank AdamW over flattened, padded, sharded fp32 masters."""

    def __init__(
        self,
        model: Module,
        config: ModelConfig,
        groups: Iterable[ParamGroup],
        *,
        world_size: int = 1,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        fused: bool = True,
        comm_backend: str = "sim",
        topology=None,
    ) -> None:
        groups = list(groups)
        if not groups:
            raise ConfigError("ZeroStage3Engine needs at least one parameter group")
        if len(groups) != config.num_param_groups_tailored:
            raise ConfigError(
                f"expected {config.num_param_groups_tailored} tailored groups for "
                f"{config.name}, got {len(groups)}"
            )
        self.model = model
        self.config = config
        self.comm_backend = str(comm_backend)
        # _mp keeps the unwrapped pool handle: the trainer may later wrap
        # self.comm in a ChaosComm, but worker management (dispatch, rank
        # kills, shutdown) must bypass the fault-pricing layer.
        self._mp = None
        # With a topology the hierarchical communicator variants swap in;
        # they inherit the flat collectives' arithmetic verbatim, so the
        # choice only changes byte accounting, never results.
        self.topology = topology
        if self.comm_backend == "mp":
            if not fused:
                raise ConfigError(
                    "comm_backend='mp' requires fused=True: the process-pool "
                    "backend shares the fused engine's persistent buffers"
                )
            from .mpcomm import HierMpComm, MpComm

            if topology is None:
                self.comm: SimComm = MpComm(world_size)  # validates world_size
            else:
                self.comm = HierMpComm(world_size, topology)
            self._mp = self.comm
        elif self.comm_backend == "sim":
            if topology is None:
                self.comm = SimComm(world_size)  # validates world_size
            else:
                from .topology import HierComm

                self.comm = HierComm(world_size, topology)
        else:
            raise ConfigError(
                f"unknown comm_backend {comm_backend!r} (expected 'sim' or 'mp')"
            )
        self.world_size = self.comm.world_size
        self._dtype: DType = config.storage_dtype
        self.fused = bool(fused)

        self._params: list[list[Tensor]] = []
        self._shard_params: list[list[Tensor]] = []  # [group][rank]
        # Fused-mode persistent buffers, one per group:
        #   _master_bufs[g]  padded fp32 masters; every rank's shard is a
        #                    slice view, so gather is ``buf[:numel]``
        #   _grad_bufs[g]    padded fp32 gradient staging buffer; the
        #                    reduce-scatter hands each rank a slice view
        # plus one shared quantize scratch sized to the largest group.
        self._master_bufs: list[np.ndarray] = []
        self._grad_bufs: list[np.ndarray] = []
        self._quant_buf: np.ndarray = np.zeros(0, dtype=np.float32)
        metas: list[GroupMeta] = []
        seen: set[int] = set()
        master_flats: list[np.ndarray] = []
        for index, group in enumerate(groups):
            params = list(group.get("params", ()))
            names = tuple(group.get("param_names", ()))
            if not params or len(params) != len(names):
                raise ConfigError(
                    f"group {index} must carry matching 'params' and 'param_names'"
                )
            for p in params:
                if id(p) in seen:
                    raise ConfigError("a parameter appears in more than one group")
                seen.add(id(p))
            shapes = tuple(tuple(p.data.shape) for p in params)
            numel = int(sum(p.data.size for p in params))
            partition = GroupPartition(numel, self.world_size)
            metas.append(
                GroupMeta(
                    index=index,
                    name=str(group.get("name", f"group_{index}")),
                    slot=str(group.get("slot", "")),
                    weight_decay=float(group.get("weight_decay", 0.0)),
                    param_names=names,
                    shapes=shapes,
                    numel=numel,
                    partition=partition,
                )
            )
            self._params.append(params)
            # fp32 masters: shard the flattened initial weights per rank.
            master_flats.append(flatten_arrays([p.data for p in params]))
        self.group_meta: tuple[GroupMeta, ...] = tuple(metas)

        # mp backend: one named shared arena holds every buffer a worker
        # touches — masters, grad staging, both moment buffers, and the
        # storage-precision parameter storage (model parameters are
        # re-pointed into it below, so forward passes anywhere read the
        # weights the workers just re-quantized).  Sized exactly, carved
        # before the workers fork.
        self._param_flats: list[np.ndarray] = []
        self._moment_bufs: list[tuple[np.ndarray, np.ndarray]] = []
        arena = None
        if self._mp is not None:
            from .mpcomm import SharedArena

            total = 0
            for meta in self.group_meta:
                padded = (meta.partition.padded_numel,)
                total += 4 * SharedArena.aligned_nbytes(padded)
                total += SharedArena.aligned_nbytes((meta.numel,))
            arena = self._mp.create_arena(max(total, 64), tag="engine")
        for g, meta in enumerate(self.group_meta):
            partition = meta.partition
            if not self.fused:
                self._shard_params.append(
                    [Tensor(shard) for shard in partition.shards(master_flats[g])]
                )
                continue
            if arena is not None:
                master_buf = arena.alloc((partition.padded_numel,))
                partition.pad(master_flats[g], out=master_buf)
                grad_buf = arena.alloc((partition.padded_numel,))
                flat = arena.alloc((meta.numel,))
                offset = 0
                for p in self._params[g]:
                    n = p.data.size
                    p.data = flat[offset : offset + n].reshape(p.data.shape)
                    offset += n
                self._param_flats.append(flat)
                self._moment_bufs.append(
                    (
                        arena.alloc((partition.padded_numel,)),
                        arena.alloc((partition.padded_numel,)),
                    )
                )
            else:
                master_buf = partition.pad(master_flats[g])
                grad_buf = np.zeros(partition.padded_numel, dtype=np.float32)
            self._master_bufs.append(master_buf)
            self._grad_bufs.append(grad_buf)
            self._shard_params.append(
                [Tensor(view) for view in partition.shard_views(master_buf)]
            )
        if self.fused:
            max_padded = max(m.partition.padded_numel for m in self.group_meta)
            self._quant_buf = np.zeros(max_padded, dtype=np.float32)
        # id(param) -> grad staging slice, built on demand by
        # grad_donation_views() (fused mode only).
        self._donated: dict[int, np.ndarray] = {}

        # One AdamW per rank over that rank's shard of every group.
        self.optimizers: list[AdamW] = []
        for rank in range(self.world_size):
            rank_groups = [
                {
                    "params": [self._shard_params[g][rank]],
                    "param_names": list(meta.param_names),
                    "name": meta.name,
                    "slot": meta.slot,
                    "weight_decay": meta.weight_decay,
                }
                for g, meta in enumerate(self.group_meta)
            ]
            self.optimizers.append(
                AdamW(rank_groups, lr=lr, betas=betas, eps=eps, fused=self.fused)
            )

        # Schedulers drive rank 0; engine.step() mirrors its LR everywhere.
        self.reference_optimizer: AdamW = self.optimizers[0]

        # mp backend: pre-seed every rank's optimizer state with views
        # into the shared moment buffers.  AdamW's fused update writes
        # moments strictly in place (``out=``), so worker updates land in
        # shared memory where the parent's checkpoint saves read them.
        # Pre-seeded zeros are bitwise-identical to the lazy zero init.
        if self._mp is not None:
            for g, meta in enumerate(self.group_meta):
                exp_avg, exp_avg_sq = self._moment_bufs[g]
                for rank in range(self.world_size):
                    lo, hi = meta.partition.bounds(rank)
                    param = self._shard_params[g][rank]
                    self.optimizers[rank].state[id(param)] = {
                        "step": 0,
                        "exp_avg": exp_avg[lo:hi],
                        "exp_avg_sq": exp_avg_sq[lo:hi],
                    }

        # Model weights are the storage-precision image of the masters.
        for g in range(len(self.group_meta)):
            self._materialize_group(g)

    # -- weight re-materialization -----------------------------------------

    def _gathered_master(self, g: int) -> np.ndarray:
        """The group's unpadded fp32 master vector.

        Fused mode returns a zero-copy view into the group's contiguous
        master buffer (callers that persist it must copy — see
        :meth:`rank_state_dict`); reference mode concatenates a copy.
        """
        meta = self.group_meta[g]
        if self.fused:
            return self._master_bufs[g][: meta.numel]
        return meta.partition.gather([t.data for t in self._shard_params[g]])

    def _materialize_group(self, g: int, *, via_comm: bool = False) -> None:
        """Write ``quantize(master)`` back into the group's model weights."""
        meta = self.group_meta[g]
        if self.fused:
            if via_comm:
                # Shards are views into the master buffer, so the gather
                # moves no data — only the ring-model bytes are charged.
                self.comm.all_gather_into(
                    [t.data for t in self._shard_params[g]], self._master_bufs[g]
                )
            master = self._master_bufs[g][: meta.numel]
            # One vectorized quantize pass per group into the shared
            # scratch, then zero-copy reshaped views per parameter.
            quantized = quantize(master, self._dtype, out=self._quant_buf[: meta.numel])
            offset = 0
            for param in self._params[g]:
                n = param.data.size
                param.data[...] = quantized[offset : offset + n].reshape(param.data.shape)
                offset += n
            return
        if via_comm:
            padded = self.comm.all_gather([t.data for t in self._shard_params[g]])
            master = padded[: meta.numel]
        else:
            master = self._gathered_master(g)
        for param, view in zip(self._params[g], unflatten_array(master, meta.shapes)):
            param.data[...] = quantize(view, self._dtype)

    # -- training ----------------------------------------------------------

    def grad_donation_views(self) -> dict[int, np.ndarray]:
        """Per-parameter views into the grad staging buffers (fused only).

        Maps ``id(param)`` to the parameter-shaped slice of the group's
        persistent reduce-scatter staging buffer.  A caller (the backward
        tape) that writes gradients straight into these views makes them
        the collective's inputs with no flatten-copy: :meth:`step`
        recognizes a donated ``p.grad`` by identity and skips the copy.
        Reference (non-fused) mode has no persistent staging buffers and
        returns an empty mapping, which disables donation cleanly.
        """
        if not self.fused:
            return {}
        if not self._donated:
            for g, params in enumerate(self._params):
                buf = self._grad_bufs[g]
                offset = 0
                for p in params:
                    n = p.data.size
                    self._donated[id(p)] = buf[offset : offset + n].reshape(
                        p.data.shape
                    )
                    offset += n
        return self._donated

    def zero_grad(self) -> None:
        """Clear gradients on every model parameter and every rank's shards."""
        for params, shards in zip(self._params, self._shard_params):
            for p in params:
                p.grad = None
            for t in shards:
                t.grad = None

    def step(self) -> None:
        """Reduce-scatter grads, step every rank's AdamW, re-gather weights."""
        # Mirror the (scheduler-driven) reference LR to every rank first,
        # so all shards of a group update with identical hyper-parameters.
        for opt in self.optimizers[1:]:
            for ref_group, group in zip(self.reference_optimizer.param_groups, opt.param_groups):
                group["lr"] = ref_group["lr"]

        stepped: list[int] = []
        for g, meta in enumerate(self.group_meta):
            params = self._params[g]
            if all(p.grad is None for p in params):
                continue  # untouched group: AdamW would skip it too
            if self.fused:
                # Flatten straight into the persistent padded buffer (the
                # tail is zero by construction and never written).
                buf = self._grad_bufs[g]
                offset = 0
                for p in params:
                    n = p.data.size
                    if p.grad is None:
                        buf[offset : offset + n] = 0.0
                    elif p.grad is self._donated.get(id(p)):
                        pass  # tape-donated: already accumulated in place
                    else:
                        np.copyto(buf[offset : offset + n], p.grad.reshape(-1))
                    offset += n
                # Every simulated rank holds the same (already averaged)
                # gradient; the in-place reduce-scatter hands each rank a
                # slice view of the buffer instead of a copy.
                shards = self.comm.reduce_scatter_mean_into(
                    [buf] * self.world_size, out=buf
                )
            else:
                grads = [
                    p.grad if p.grad is not None else np.zeros_like(p.data)
                    for p in params
                ]
                padded = meta.partition.pad(flatten_arrays(grads))
                shards = self.comm.reduce_scatter_mean([padded] * self.world_size)
            for rank, shard in enumerate(shards):
                self._shard_params[g][rank].grad = shard
            stepped.append(g)

        if self._mp is not None:
            self._mp_step(stepped)
        else:
            for opt in self.optimizers:
                opt.step()

        # Consume the shard gradients: a group skipped on the *next* step
        # must not be re-updated with this step's stale gradient.
        for shards in self._shard_params:
            for t in shards:
                t.grad = None

        for g in stepped:
            if self._mp is not None:
                # The workers already updated the masters and re-quantized
                # the weights in shared memory; the gather moves no data
                # (shards are views) — only the ring-model bytes are
                # charged, matching the sequential call sequence exactly.
                self.comm.all_gather_into(
                    [t.data for t in self._shard_params[g]], self._master_bufs[g]
                )
            else:
                self._materialize_group(g, via_comm=True)

    # -- mp worker pool ----------------------------------------------------

    def _hyper_payload(self) -> list[dict[str, Any]]:
        """Per-group hyperparameters from the scheduler-driven reference."""
        return [
            {
                "lr": float(group["lr"]),
                "betas": tuple(float(b) for b in group["betas"]),
                "eps": float(group["eps"]),
                "weight_decay": float(group["weight_decay"]),
            }
            for group in self.reference_optimizer.param_groups
        ]

    def start_workers(self, program_factory=None) -> None:
        """Fork the rank workers (mp backend; no-op otherwise).

        ``program_factory(rank, barrier)`` builds the worker-side command
        object; the default serves the engine-level commands
        (``optim_step``/``sync_state``), and the trainer passes an
        extended program that adds the forward/backward command.  Called
        lazily by :meth:`step`, so engines that only ever load or save
        never pay for a pool.
        """
        if self._mp is None or self._mp.started:
            return
        if program_factory is None:
            engine = self

            def program_factory(rank, barrier):
                return _EngineRankProgram(engine, rank, barrier)

        self._mp.start(program_factory)

    def _mp_step(self, stepped: list[int]) -> None:
        """Dispatch the optimizer/re-quantize phase to the rank workers.

        The parent mirrors the ``step`` counters afterwards so its own
        optimizer state (which checkpoint saves read) tracks the workers'
        — moments and masters need no mirroring, they live in shared
        memory.
        """
        self.start_workers()
        if not stepped:
            return
        self._mp.dispatch("optim_step", list(stepped), self._hyper_payload())
        for rank in range(self.world_size):
            opt = self.optimizers[rank]
            for g in stepped:
                opt.state[id(self._shard_params[g][rank])]["step"] += 1

    def _sync_mp_state(self) -> None:
        """Push restored step counters/hyperparams to running workers."""
        if self._mp is None or not self._mp.started:
            return
        steps = [
            [
                int(self.optimizers[r].state[id(self._shard_params[g][r])]["step"])
                for g in range(len(self.group_meta))
            ]
            for r in range(self.world_size)
        ]
        self._mp.dispatch("sync_state", steps, self._hyper_payload())

    def terminate_rank(self, rank: int) -> None:
        """Map a simulated rank death onto the backend.

        With the mp backend the rank's worker process is terminated
        (SIGTERM); the sequential backend has no per-rank resources, so
        this is a no-op there.  The elastic shrink that follows builds a
        fresh engine at N-1 — a dead rank is never limped around.
        """
        if self._mp is not None and self._mp.started:
            self._mp.kill_rank(rank)

    def close(self) -> None:
        """Release backend resources (workers + shared segments).

        Idempotent, and safe to call while results are still being read:
        parent-side arrays stay mapped, so checkpoint saves and state
        inspection keep working after close — only the worker pool and
        the ``/dev/shm`` names are gone.
        """
        if self._mp is not None:
            self._mp.close()

    # -- state access ------------------------------------------------------

    def master_state_dict(self) -> dict[str, np.ndarray]:
        """Unsharded fp32 master weights, keyed like ``model.state_dict()``."""
        out: dict[str, np.ndarray] = {}
        for g, meta in enumerate(self.group_meta):
            master = self._gathered_master(g)
            for name, view in zip(meta.param_names, unflatten_array(master, meta.shapes)):
                out[name] = view
        return out

    def _moment_state(self, rank: int, g: int) -> dict[str, Any]:
        param = self._shard_params[g][rank]
        state = self.optimizers[rank].state.get(id(param)) or {}
        shard_numel = self.group_meta[g].partition.shard_numel
        out: dict[str, Any] = {"step": int(state.get("step", 0))}
        for key in ("exp_avg", "exp_avg_sq"):
            value = state.get(key)
            # Exactly one allocation either way: a fresh zero buffer when
            # the moment was never created, or a single copy-with-cast of
            # the live buffer (np.array copies once even when casting —
            # the old asarray().copy() spelling copied twice for missing
            # or non-fp32 entries).
            out[key] = (
                np.zeros(shard_numel, dtype=np.float32)
                if value is None
                else np.array(value, dtype=np.float32)
            )
        return out

    # -- checkpoint hooks --------------------------------------------------

    def rank_state_dict(
        self, rank: int, slots: Iterable[str] | None = None
    ) -> dict[str, Any]:
        """One rank's monolithic shard payload, optionally slot-filtered."""
        if not 0 <= rank < self.world_size:
            raise DistError(f"rank {rank} out of range for world_size {self.world_size}")
        slot_set = None if slots is None else set(slots)
        selected = [
            g
            for g, meta in enumerate(self.group_meta)
            if slot_set is None or meta.slot in slot_set
        ]
        hyperparams = []
        for g in selected:
            # Hyper-parameters come from the scheduler-driven *reference*
            # optimizer for every rank: ranks >= 1 only mirror its LR at
            # the top of the next step, so their own copy can be one
            # schedule tick stale at save time.  Emitting the reference
            # makes shards canonical (all ranks agree), which is what
            # lets the elastic resharder re-partition hyperparams
            # losslessly at any N->M.
            group = self.reference_optimizer.param_groups[g]
            hyperparams.append(
                {
                    "index": g,
                    "lr": float(group["lr"]),
                    "betas": [float(b) for b in group["betas"]],
                    "eps": float(group["eps"]),
                    "weight_decay": float(group["weight_decay"]),
                }
            )
        # Copy-on-save: in fused mode the shard tensors are views into the
        # group's live master buffer, which the next step mutates in place
        # — a payload holding views would silently change after save.
        fp32_flat_groups = {
            g: self._shard_params[g][rank].data.copy() for g in selected
        }
        state = {g: self._moment_state(rank, g) for g in selected}
        groups = []
        for g in selected:
            header = self.group_meta[g].header()
            header["crc32"] = group_payload_crc(
                fp32_flat_groups[g], state[g]["exp_avg"], state[g]["exp_avg_sq"]
            )
            groups.append(header)
        return {
            "format_version": SHARD_FORMAT_VERSION,
            "zero_stage": 3,
            "world_size": self.world_size,
            "rank": rank,
            "num_total_groups": len(self.group_meta),
            "groups": groups,
            "hyperparams": hyperparams,
            "fp32_flat_groups": fp32_flat_groups,
            "state": state,
        }

    def load_rank_state_dict(
        self,
        rank: int,
        state: dict[str, Any],
        require_full: bool = True,
        *,
        materialize: bool = True,
        peers: "list[dict[str, Any]] | None" = None,
        verify_crc: bool = True,
    ) -> None:
        """Restore one rank's shard payload (inverse of :meth:`rank_state_dict`).

        Validates the shard was written by a compatible engine: same
        format, world size, rank, and — per group — identical parameter
        membership and geometry.  With ``require_full`` (the default)
        every group must be present; partial payloads are only loadable
        when the caller explicitly opts in (the merge tool assembles
        full ones instead).

        With ``verify_crc`` (the default) every group whose header
        carries a ``crc32`` is checked against its payload *before*
        anything is written into the engine, so silent storage bitrot
        fails the load instead of resuming training from a corrupted
        master — the engine-side twin of the selective readers'
        per-group verification.

        A shard written at a *different* world size is accepted when
        ``peers`` carries the complete set of source rank payloads (rank
        order): the engine reshards them N→world_size in memory via
        :func:`repro.dist.reshard.reshard_state_dicts` and loads this
        rank's slice.  Without ``peers`` a mismatch is an error — one
        mismatched shard alone cannot be re-partitioned.  This is also
        how a freshly *joined* rank is born: growing N→N+1 the
        supervisor resumes from a checkpoint written at N, and the new
        highest rank's shard materializes here out of the resharded
        source payloads.

        ``materialize=False`` skips rewriting the model weights from the
        masters — callers restoring every rank in a loop (the checkpoint
        reader) only need it on the final rank.
        """
        if not 0 <= rank < self.world_size:
            raise DistError(f"rank {rank} out of range for world_size {self.world_size}")
        version = state.get("format_version")
        if version != SHARD_FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported shard format_version {version!r} "
                f"(engine speaks {SHARD_FORMAT_VERSION})"
            )
        if int(state.get("world_size", -1)) != self.world_size:
            if peers is None:
                raise CheckpointError(
                    f"shard world_size {state.get('world_size')} != engine "
                    f"world_size {self.world_size} (pass peers=<all source rank "
                    "payloads> to reshard elastically, or run `llmtailor reshard`)"
                )
            from .reshard import reshard_rank_state_dict  # imported after this module

            resharded = reshard_rank_state_dict(list(peers), self.world_size, rank)
            return self.load_rank_state_dict(
                rank, resharded, require_full,
                materialize=materialize, verify_crc=verify_crc,
            )
        if int(state.get("rank", -1)) != rank:
            raise CheckpointError(
                f"shard was written for rank {state.get('rank')}, "
                f"attempting to load it as rank {rank}"
            )

        headers = {int(h["index"]): h for h in state.get("groups", [])}
        for g, header in headers.items():
            if not 0 <= g < len(self.group_meta):
                raise CheckpointError(
                    f"shard group index {g} out of range for "
                    f"{len(self.group_meta)} tailored groups"
                )
            meta = self.group_meta[g]
            if list(header.get("param_names", [])) != list(meta.param_names):
                raise CheckpointError(
                    f"group {g} ({meta.name}): parameter names differ between "
                    "shard and engine — the checkpoint belongs to a different layout"
                )
            if "numel" in header and int(header["numel"]) != meta.numel:
                raise CheckpointError(
                    f"group {g} ({meta.name}): shard numel {header['numel']} != "
                    f"engine numel {meta.numel}"
                )
            if "padded_numel" in header and (
                int(header["padded_numel"]) != meta.partition.padded_numel
            ):
                raise CheckpointError(
                    f"group {g} ({meta.name}): shard padded_numel "
                    f"{header['padded_numel']} != engine {meta.partition.padded_numel}"
                )
            shapes = header.get("shapes")
            if shapes is not None and [tuple(s) for s in shapes] != list(meta.shapes):
                raise CheckpointError(
                    f"group {g} ({meta.name}): parameter shapes differ between "
                    "shard and engine — same names, different tensor geometry"
                )
        if require_full:
            missing = sorted(set(range(len(self.group_meta))) - set(headers))
            if missing:
                raise CheckpointError(
                    f"shard for rank {rank} is partial: missing groups {missing[:8]}"
                    f"{'...' if len(missing) > 8 else ''} "
                    "(pass require_full=False to load a subset)"
                )

        fp32_groups = state.get("fp32_flat_groups", {})
        moment_state = state.get("state", {})
        hyper_by_index = {
            int(h["index"]): h for h in state.get("hyperparams", []) if "index" in h
        }
        opt = self.optimizers[rank]
        # Validate and (optionally) CRC-check every group BEFORE mutating
        # the engine: a corrupt group must leave the live masters
        # untouched so the caller can repair the shard and retry.
        staged: dict[int, tuple[np.ndarray, dict[str, Any]]] = {}
        for g in sorted(headers):
            meta = self.group_meta[g]
            shard_numel = meta.partition.shard_numel
            fp32 = np.asarray(fp32_groups.get(g), dtype=np.float32)
            if fp32.shape != (shard_numel,):
                raise CheckpointError(
                    f"group {g} fp32 shard has shape {fp32.shape}, "
                    f"expected ({shard_numel},)"
                )
            entry = moment_state.get(g) or {}
            restored: dict[str, Any] = {"step": int(entry.get("step", 0))}
            for key in ("exp_avg", "exp_avg_sq"):
                raw = entry.get(key)
                value = (
                    np.zeros(shard_numel, dtype=np.float32)
                    if raw is None
                    else np.array(raw, dtype=np.float32)  # one copy, owned
                )
                if value.shape != (shard_numel,):
                    raise CheckpointError(
                        f"group {g} {key} has shape {value.shape}, "
                        f"expected ({shard_numel},)"
                    )
                restored[key] = value
            if verify_crc and "crc32" in headers[g]:
                actual = group_payload_crc(
                    fp32, restored["exp_avg"], restored["exp_avg_sq"]
                )
                if actual != int(headers[g]["crc32"]):
                    raise CheckpointError(
                        f"group {g} ({meta.name}): CRC-32 mismatch on rank "
                        f"{rank}'s shard payload — the optimizer state is "
                        "corrupt (bitrot?); re-read the shard or restore a "
                        "replica before resuming"
                    )
            staged[g] = (fp32, restored)

        for g in sorted(headers):
            fp32, restored = staged[g]
            param = self._shard_params[g][rank]
            param.data[...] = fp32
            if self._mp is None:
                opt.state[id(param)] = restored
            else:
                # The pre-seeded entry's moments are views into the shared
                # arena; copy *into* them (never replace) so running — or
                # future — workers keep seeing the restored state.
                entry = opt.state[id(param)]
                entry["step"] = restored["step"]
                entry["exp_avg"][...] = restored["exp_avg"]
                entry["exp_avg_sq"][...] = restored["exp_avg_sq"]

            hyper = hyper_by_index.get(g)
            if hyper:
                group = opt.param_groups[g]
                group["lr"] = float(hyper.get("lr", group["lr"]))
                group["eps"] = float(hyper.get("eps", group["eps"]))
                group["weight_decay"] = float(
                    hyper.get("weight_decay", group["weight_decay"])
                )
                if "betas" in hyper:
                    group["betas"] = tuple(float(b) for b in hyper["betas"])

            # Keep model weights consistent with the (now restored) masters.
            if materialize:
                self._materialize_group(g)

        # Step counters are worker-local ints (unlike the shared-memory
        # moments), so a load into a live pool must be pushed explicitly.
        self._sync_mp_state()

    def __repr__(self) -> str:
        return (
            f"ZeroStage3Engine(model={self.config.name!r}, "
            f"world_size={self.world_size}, groups={len(self.group_meta)})"
        )


class _EngineRankProgram:
    """Worker-side command set for one rank of an mp-backed engine.

    Instantiated *inside* the forked worker, closing over the engine the
    child inherited — object identities (``id(param)`` state keys,
    buffer views) are the parent's, and every array the commands touch
    lives in the shared arena, so results land where the parent (and the
    other workers) read them.
    """

    def __init__(self, engine: ZeroStage3Engine, rank: int, barrier) -> None:
        self.engine = engine
        self.rank = rank
        self.barrier = barrier

    def _apply_hypers(self, hypers: list[dict[str, Any]]) -> None:
        opt = self.engine.optimizers[self.rank]
        for group, hp in zip(opt.param_groups, hypers):
            group["lr"] = hp["lr"]
            group["betas"] = tuple(hp["betas"])
            group["eps"] = hp["eps"]
            group["weight_decay"] = hp["weight_decay"]

    def optim_step(self, stepped: list[int], hypers: list[dict[str, Any]]) -> None:
        """One rank's AdamW over the reduced shard grads, then re-quantize.

        Reads only this rank's shard slice of each stepped group's
        staging buffer (written by the parent — or the fold phase of the
        trainer program — before this command was dispatched, so pipe
        ordering is the only synchronization needed), updates the
        rank's master/moment shards in place, and re-quantizes its
        ``master_bounds`` chunk of the storage-precision weights.
        Chunked re-quantize is elementwise, hence bitwise-identical to
        the sequential single-pass quantize.
        """
        eng, rank = self.engine, self.rank
        self._apply_hypers(hypers)
        opt = eng.optimizers[rank]
        for g in stepped:
            lo, hi = eng.group_meta[g].partition.bounds(rank)
            eng._shard_params[g][rank].grad = eng._grad_bufs[g][lo:hi]
        opt.step()
        for g in stepped:
            eng._shard_params[g][rank].grad = None
            mlo, mhi = eng.group_meta[g].partition.master_bounds(rank)
            if mhi > mlo:
                quantize(
                    eng._master_bufs[g][mlo:mhi],
                    eng._dtype,
                    out=eng._param_flats[g][mlo:mhi],
                )

    def sync_state(self, steps: list[list[int]], hypers: list[dict[str, Any]]) -> None:
        """Adopt restored step counters/hyperparams after a parent-side load."""
        eng, rank = self.engine, self.rank
        self._apply_hypers(hypers)
        opt = eng.optimizers[rank]
        for g, step in enumerate(steps[rank]):
            opt.state[id(eng._shard_params[g][rank])]["step"] = int(step)
