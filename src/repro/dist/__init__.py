"""Simulated distributed substrate: collectives, shard math, ZeRO-3.

Everything the paper's ZeRO-3 setting needs, reproduced deterministically
in a single process:

* :class:`SimComm` — in-process collectives with ring-model byte
  accounting;
* :class:`GroupPartition` (+ :func:`flatten_arrays` /
  :func:`unflatten_array`) — the flatten/pad/shard arithmetic;
* :class:`ZeroStage3Engine` — per-rank AdamW over sharded fp32 masters,
  emitting/consuming the per-rank optimizer shard files LLMTailor merges;
* :func:`reshard_checkpoint` / :func:`reshard_state_dicts` — elastic
  N→M re-partitioning of those shard files (streaming, bounded memory).
"""

from .comm import CommStats, SimComm
from .partition import GroupPartition, flatten_arrays, unflatten_array
from .zero import SHARD_FORMAT_VERSION, GroupMeta, ZeroStage3Engine

# Imported last: reshard pulls in repro.io, which itself imports the
# modules above from this (then partially initialized) package.
from .reshard import (  # noqa: E402
    ReshardReport,
    reshard_checkpoint,
    reshard_rank_state_dict,
    reshard_state_dicts,
)

__all__ = [
    "CommStats",
    "GroupMeta",
    "GroupPartition",
    "ReshardReport",
    "SHARD_FORMAT_VERSION",
    "SimComm",
    "ZeroStage3Engine",
    "flatten_arrays",
    "unflatten_array",
    "reshard_checkpoint",
    "reshard_rank_state_dict",
    "reshard_state_dicts",
]
