"""Simulated distributed substrate: collectives, shard math, ZeRO-3.

Everything the paper's ZeRO-3 setting needs, reproduced deterministically
in a single process:

* :class:`SimComm` — in-process collectives with ring-model byte
  accounting;
* :class:`GroupPartition` (+ :func:`flatten_arrays` /
  :func:`unflatten_array`) — the flatten/pad/shard arithmetic;
* :class:`ZeroStage3Engine` — per-rank AdamW over sharded fp32 masters,
  emitting/consuming the per-rank optimizer shard files LLMTailor merges.
"""

from .comm import CommStats, SimComm
from .partition import GroupPartition, flatten_arrays, unflatten_array
from .zero import SHARD_FORMAT_VERSION, GroupMeta, ZeroStage3Engine

__all__ = [
    "CommStats",
    "GroupMeta",
    "GroupPartition",
    "SHARD_FORMAT_VERSION",
    "SimComm",
    "ZeroStage3Engine",
    "flatten_arrays",
    "unflatten_array",
]
