"""Simulated distributed substrate: collectives, shard math, ZeRO-3.

Everything the paper's ZeRO-3 setting needs, reproduced deterministically
in a single process:

* :class:`SimComm` — in-process collectives with ring-model byte
  accounting;
* :class:`MpComm` — the same collectives over named shared-memory
  segments with one long-lived forked worker process per rank (real
  multi-core parallelism, bitwise-identical to :class:`SimComm`);
* :class:`GroupPartition` (+ :func:`flatten_arrays` /
  :func:`unflatten_array`) — the flatten/pad/shard arithmetic;
* :class:`ZeroStage3Engine` — per-rank AdamW over sharded fp32 masters,
  emitting/consuming the per-rank optimizer shard files LLMTailor merges;
* :func:`reshard_checkpoint` / :func:`reshard_state_dicts` — elastic
  N→M re-partitioning of those shard files (streaming, bounded memory);
* :class:`FaultPlan` / :class:`ChaosComm` — deterministic fault
  injection (rank failures, node failures, joins, spot preemptions,
  stragglers, degraded links, bitrot) over the same machinery, with
  penalized time accounting and :class:`GoodputReport` goodput
  bookkeeping;
* :class:`Topology` / :class:`HierComm` / :class:`HierMpComm` —
  hierarchical (nodes × ranks-per-node) process groups with per-link-
  class byte accounting, bitwise-identical to the flat ring.
"""

from .comm import CommStats, SimComm
from .topology import HierComm, Topology
from .mpcomm import HierMpComm, MpComm, SharedArena, mp_available, mp_unavailable_reason
from .partition import GroupPartition, flatten_arrays, unflatten_array
from .zero import SHARD_FORMAT_VERSION, GroupMeta, ZeroStage3Engine

# Imported last: reshard/faults pull in repro.io, which itself imports
# the modules above from this (then partially initialized) package.
from .reshard import (  # noqa: E402
    ReshardReport,
    reshard_checkpoint,
    reshard_rank_state_dict,
    reshard_state_dicts,
)
from .faults import (  # noqa: E402
    ChaosComm,
    FaultEvent,
    FaultPlan,
    FaultTimeline,
    GoodputReport,
    bitrot,
    degraded_link,
    inject_bitrot,
    node_failure,
    preemption,
    rank_failure,
    rank_join,
    repair_from_replicas,
    straggler,
)

__all__ = [
    "ChaosComm",
    "CommStats",
    "FaultEvent",
    "FaultPlan",
    "FaultTimeline",
    "GoodputReport",
    "GroupMeta",
    "GroupPartition",
    "HierComm",
    "HierMpComm",
    "MpComm",
    "ReshardReport",
    "SharedArena",
    "SHARD_FORMAT_VERSION",
    "SimComm",
    "Topology",
    "ZeroStage3Engine",
    "bitrot",
    "degraded_link",
    "flatten_arrays",
    "inject_bitrot",
    "mp_available",
    "mp_unavailable_reason",
    "node_failure",
    "preemption",
    "rank_failure",
    "rank_join",
    "repair_from_replicas",
    "reshard_checkpoint",
    "reshard_rank_state_dict",
    "reshard_state_dicts",
    "straggler",
    "unflatten_array",
]
