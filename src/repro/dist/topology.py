"""Cluster topology: hierarchical process groups behind the ``SimComm`` interface.

Real fleets are not flat rings: ranks within one node talk over fast
links (NVLink / shared memory, hundreds of GB/s) while nodes talk over a
much slower fabric (tens of GB/s).  :class:`Topology` describes such a
cluster as ``nodes x ranks_per_node`` with one bandwidth per **link
class** (``"intra"`` within a node, ``"inter"`` between nodes), and
:class:`HierComm` runs every collective as a 2D hierarchical schedule
over it — node-local reduce-scatter, cross-node all-reduce over one
leader rank per node, node-local all-gather.

Two invariants anchor the design, both pinned by ``tests/test_topology.py``:

* **Bitwise identity.**  The *arithmetic* of every collective is
  inherited verbatim from :class:`~repro.dist.comm.SimComm` — same mean,
  same left-to-right accumulation order — so a hierarchical run produces
  bit-for-bit the same masters, moments, and bf16 weights as the flat
  ring (the same contract ``AdamW(fused=True)`` and the mp backend
  honour).  The hierarchy lives entirely in the *cost model*, exactly
  like the flat ring-algorithm accounting is itself a model over
  sequential in-process arithmetic.
* **Closed-form accounting.**  Each collective charges two suffixed ops,
  ``"<op>/intra"`` and ``"<op>/inter"``, with per-link-class bytes given
  by :meth:`Topology.collective_bytes`.  The planner
  (:func:`repro.strategies.plan_step_traffic` with ``topology=``) and
  :class:`~repro.dist.faults.ChaosComm` price the very same formulas, so
  predicted step/fault seconds match live accounting to 1e-6.

Placement is **block** placement: rank ``r`` lives on node
``r // ranks_per_node``.  An elastic world size below capacity occupies
a prefix of the grid (the last node may be partially filled); the
formulas use ``r_max = min(ws, ranks_per_node)`` ranks per node and
``ceil(ws / ranks_per_node)`` occupied nodes, so they degrade exactly to
the flat ring when ``nodes == 1`` (all intra) or ``ranks_per_node == 1``
(all inter).

The 2D collective algebra, for payload ``B`` at world size ``ws`` with
``R = r_max`` and ``N = occupied nodes`` (``f_i = (R-1)/R``,
``f_n = (N-1)/N`` are the usual ring fractions):

* ``all_reduce``:     intra ``2 * f_i * B``, inter ``2 * f_n * B / R``
  (node-local reduce-scatter + all-gather touch the full payload; the
  cross-node phase runs over leaders on the ``1/R`` slice each leader owns);
* ``reduce_scatter``: intra ``f_i * B``,     inter ``f_n * B / R``;
* ``all_gather``:     intra ``f_i * B``,     inter ``f_n * B / R``
  (``B`` is the total gathered payload, as in the flat model);
* ``broadcast``:      intra ``f_i * B``,     inter ``f_n * B``
  (leaders relay the full buffer across nodes, then fan out locally).

Serialization is dependency-free YAML via :mod:`repro.util.miniyaml`
(``llmtailor train --topology cluster.yaml``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from ..util.errors import DistError
from ..util.miniyaml import dump_file, load_file
from .comm import SimComm

__all__ = [
    "DEFAULT_INTER_BANDWIDTH",
    "DEFAULT_INTRA_BANDWIDTH",
    "HierComm",
    "LINK_CLASSES",
    "Topology",
]

#: The two link classes every hierarchical byte/seconds account is split
#: over: ``"intra"`` (within a node) and ``"inter"`` (between nodes).
LINK_CLASSES = ("intra", "inter")

#: Default intra-node bandwidth, bytes/second (NVLink-class fabric).
DEFAULT_INTRA_BANDWIDTH = 300e9

#: Default inter-node bandwidth, bytes/second.  Matches
#: :data:`repro.dist.faults.DEFAULT_LINK_BANDWIDTH`, so a flat run and a
#: ``ranks_per_node == 1`` hierarchical run price comm time identically.
DEFAULT_INTER_BANDWIDTH = 25e9

_FIELDS = ("nodes", "ranks_per_node", "intra_bandwidth", "inter_bandwidth")


@dataclass(frozen=True)
class Topology:
    """A ``nodes x ranks_per_node`` cluster with per-link-class bandwidths.

    Immutable and hashable; build one directly, from a mapping
    (:meth:`from_dict`), from a ``"NxR"`` spec (:meth:`from_shape`), or
    from a YAML file (:meth:`from_yaml`).
    """

    #: Number of nodes in the cluster.
    nodes: int
    #: Ranks (simulated devices) per node.
    ranks_per_node: int
    #: Intra-node link bandwidth, bytes/second.
    intra_bandwidth: float = DEFAULT_INTRA_BANDWIDTH
    #: Inter-node link bandwidth, bytes/second.
    inter_bandwidth: float = DEFAULT_INTER_BANDWIDTH

    def __post_init__(self) -> None:
        for name in ("nodes", "ranks_per_node"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise DistError(
                    f"topology: {name} must be a positive integer, got {value!r}"
                )
        for name in ("intra_bandwidth", "inter_bandwidth"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise DistError(f"topology: {name} must be a number, got {value!r}")
            value = float(value)
            if not math.isfinite(value) or value <= 0:
                raise DistError(
                    f"topology: {name} must be positive and finite, got {value!r}"
                )
            object.__setattr__(self, name, value)

    # -- shape --------------------------------------------------------------

    @property
    def world_size(self) -> int:
        """Rank capacity of the cluster: ``nodes * ranks_per_node``."""
        return self.nodes * self.ranks_per_node

    @property
    def shape(self) -> str:
        """The ``"NxR"`` shape string, e.g. ``"2x4"``."""
        return f"{self.nodes}x{self.ranks_per_node}"

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank`` under block placement."""
        if not 0 <= rank < self.world_size:
            raise DistError(
                f"topology {self.shape}: rank {rank} out of range "
                f"(capacity {self.world_size})"
            )
        return rank // self.ranks_per_node

    def local_rank(self, rank: int) -> int:
        """Position of ``rank`` within its node (leaders have local rank 0)."""
        self.node_of(rank)
        return rank % self.ranks_per_node

    def node_ranks(self, node: int, world_size: int | None = None) -> list[int]:
        """The ranks placed on ``node``, optionally clipped to ``world_size``."""
        if not 0 <= node < self.nodes:
            raise DistError(
                f"topology {self.shape}: node {node} out of range ({self.nodes} nodes)"
            )
        limit = self.world_size if world_size is None else min(world_size, self.world_size)
        lo = node * self.ranks_per_node
        hi = min(lo + self.ranks_per_node, limit)
        return list(range(lo, hi))

    def leaders(self, world_size: int | None = None) -> list[int]:
        """One leader rank (local rank 0) per occupied node."""
        limit = self.world_size if world_size is None else min(world_size, self.world_size)
        return list(range(0, limit, self.ranks_per_node))

    def group_shape(self, world_size: int) -> tuple[int, int]:
        """``(occupied_nodes, ranks_per_group)`` for ``world_size`` placed ranks.

        ``ranks_per_group`` is ``min(world_size, ranks_per_node)`` — at an
        elastic world size below one full node, the node-local group is
        the whole world.
        """
        if not 1 <= world_size <= self.world_size:
            raise DistError(
                f"topology {self.shape}: world_size {world_size} out of range "
                f"(capacity {self.world_size})"
            )
        occupied = math.ceil(world_size / self.ranks_per_node)
        return occupied, min(world_size, self.ranks_per_node)

    # -- links --------------------------------------------------------------

    def link_class(self, src: int, dst: int) -> str:
        """``"intra"`` if both ranks share a node, else ``"inter"``."""
        return "intra" if self.node_of(src) == self.node_of(dst) else "inter"

    def bandwidth(self, link_class: str) -> float:
        """Bandwidth (bytes/second) of one link class."""
        if link_class == "intra":
            return self.intra_bandwidth
        if link_class == "inter":
            return self.inter_bandwidth
        raise DistError(f"topology: unknown link class {link_class!r}")

    def has_link(self, src: int, dst: int) -> bool:
        """Whether ``(src, dst)`` is an edge of the 2D process groups.

        Edges are intra-node pairs plus leader-to-leader pairs (the
        cross-node ring) — the links a hierarchical collective actually
        traverses, and therefore the only pairs a
        ``degraded_link`` fault can meaningfully target.
        """
        if src == dst:
            return False
        if self.node_of(src) == self.node_of(dst):
            return True
        return self.local_rank(src) == 0 and self.local_rank(dst) == 0

    # -- cost model ---------------------------------------------------------

    def collective_bytes(
        self, op: str, nbytes: float, world_size: int
    ) -> dict[str, float]:
        """Per-link-class bytes for one collective over ``nbytes`` of payload.

        Implements the 2D collective algebra documented in the module
        docstring; returns ``{"intra": ..., "inter": ...}`` (both keys
        always present, zero when a phase is degenerate).  ``nbytes`` is
        the logical payload — the full gradient buffer, or the total
        gathered tensor for ``all_gather`` — matching what
        :meth:`SimComm._charge_collective` receives.
        """
        occupied, per_group = self.group_shape(world_size)
        intra_frac = (per_group - 1) / per_group
        inter_frac = (occupied - 1) / occupied
        payload = float(nbytes)
        if op == "all_reduce":
            return {
                "intra": 2.0 * intra_frac * payload,
                "inter": 2.0 * inter_frac * payload / per_group,
            }
        if op in ("reduce_scatter", "all_gather"):
            return {
                "intra": intra_frac * payload,
                "inter": inter_frac * payload / per_group,
            }
        if op == "broadcast":
            return {"intra": intra_frac * payload, "inter": inter_frac * payload}
        raise DistError(f"topology: unknown collective op {op!r}")

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, suitable for miniyaml / ``TrainConfig.to_dict``."""
        return {
            "nodes": self.nodes,
            "ranks_per_node": self.ranks_per_node,
            "intra_bandwidth": self.intra_bandwidth,
            "inter_bandwidth": self.inter_bandwidth,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Topology":
        """Build from a mapping; unknown keys are rejected loudly."""
        if not isinstance(data, dict):
            raise DistError(f"topology: expected a mapping, got {type(data).__name__}")
        unknown = sorted(set(data) - set(_FIELDS))
        if unknown:
            raise DistError(f"topology: unknown field(s) {', '.join(unknown)}")
        for required in ("nodes", "ranks_per_node"):
            if required not in data:
                raise DistError(f"topology: missing required field {required!r}")
        return cls(**data)

    @classmethod
    def from_shape(cls, spec: str, **kwargs: Any) -> "Topology":
        """Build from an ``"NxR"`` spec string, e.g. ``Topology.from_shape("2x4")``.

        Extra keyword arguments (bandwidths) pass through to the
        constructor.  This is the shorthand the soak script and tests use.
        """
        parts = str(spec).lower().split("x")
        if len(parts) != 2 or not all(p.strip().isdigit() for p in parts):
            raise DistError(
                f"topology: shape spec must look like '2x4', got {spec!r}"
            )
        return cls(nodes=int(parts[0]), ranks_per_node=int(parts[1]), **kwargs)

    def to_yaml(self, path) -> None:
        """Write the topology as a miniyaml document at ``path``."""
        dump_file(path, self.to_dict())

    @classmethod
    def from_yaml(cls, path) -> "Topology":
        """Load a topology from a miniyaml document (see ``docs/topology.md``)."""
        return cls.from_dict(load_file(path))

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"{self.shape} ({self.world_size} ranks; "
            f"intra {self.intra_bandwidth / 1e9:.0f} GB/s, "
            f"inter {self.inter_bandwidth / 1e9:.0f} GB/s)"
        )


class _HierAccounting:
    """Mixin overriding the charge hook with per-link-class accounting.

    Mixed in before a concrete communicator class (:class:`HierComm`,
    :class:`~repro.dist.mpcomm.HierMpComm`); the host class must set
    ``self.topology`` via :meth:`_bind_topology` after its own
    ``__init__`` established ``world_size``.
    """

    topology: Topology

    def _bind_topology(self, topology: Topology) -> None:
        """Validate and attach the topology (world size must fit capacity)."""
        if not isinstance(topology, Topology):
            raise DistError(
                f"topology must be a Topology, got {type(topology).__name__}"
            )
        if self.world_size > topology.world_size:
            raise DistError(
                f"world_size {self.world_size} exceeds topology {topology.shape} "
                f"capacity {topology.world_size}"
            )
        self.topology = topology

    def _charge_collective(self, op: str, nbytes: float) -> None:
        """Charge ``<op>/intra`` and ``<op>/inter`` per the 2D cost model.

        Both link classes are always charged (possibly 0.0 bytes) so
        per-class call counts stay one-per-collective and downstream
        pricing (:class:`~repro.dist.faults.ChaosComm`) can key purely
        off the op suffix.
        """
        split = self.topology.collective_bytes(op, nbytes, self.world_size)
        for link_class in LINK_CLASSES:
            self.stats.charge(f"{op}/{link_class}", split[link_class])


class HierComm(_HierAccounting, SimComm):
    """Topology-aware :class:`~repro.dist.comm.SimComm`.

    Inherits every collective's arithmetic verbatim (bitwise-identical
    results to the flat ring at any world size) and replaces only the
    byte accounting with the hierarchical per-link-class model — see the
    module docstring for the algebra and the identity argument.
    """

    backend = "sim"

    def __init__(self, world_size: int, topology: Topology) -> None:
        super().__init__(world_size)
        self._bind_topology(topology)

    def __repr__(self) -> str:
        return (
            f"HierComm(world_size={self.world_size}, topology={self.topology.shape}, "
            f"total_bytes={self.stats.total_bytes():.0f})"
        )
