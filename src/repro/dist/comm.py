"""Deterministic in-process collectives for the simulated ZeRO-3 ranks.

Real data-parallel training runs one process per rank; here every rank
lives in the same process and a collective is a plain function over the
list of per-rank buffers (index ``r`` is rank ``r``'s buffer).  The
semantics — and the validation errors — mirror NCCL's contracts: every
rank must participate, and buffers must agree on shape and dtype.

Byte accounting follows the standard ring-algorithm cost model (the one
DeepSpeed/NCCL realize on a single node):

* all-reduce moves ``2 * (n-1)/n * nbytes`` per rank (reduce-scatter
  phase + all-gather phase);
* reduce-scatter and all-gather each move ``(n-1)/n * nbytes`` per rank;
* broadcast pipelines the buffer around the ring, ``(n-1)/n * nbytes``.

At ``world_size == 1`` every collective is a local copy and moves zero
bytes — which is why the stats are worth keeping: they expose exactly
how much traffic sharding adds at a given world size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..util.errors import DistError

__all__ = ["CommStats", "SimComm"]


@dataclass
class CommStats:
    """Ring-model traffic accounting, per collective op."""

    bytes_by_op: dict[str, float] = field(default_factory=dict)
    calls_by_op: dict[str, int] = field(default_factory=dict)

    def charge(self, op: str, nbytes: float) -> None:
        """Record one collective: add its ring-model bytes and bump the call count."""
        self.bytes_by_op[op] = self.bytes_by_op.get(op, 0.0) + float(nbytes)
        self.calls_by_op[op] = self.calls_by_op.get(op, 0) + 1

    def total_bytes(self) -> float:
        """Sum of ring-model bytes over all ops."""
        return float(sum(self.bytes_by_op.values()))

    def reset(self) -> None:
        """Zero all byte and call counters."""
        self.bytes_by_op.clear()
        self.calls_by_op.clear()


class SimComm:
    """A simulated communicator over ``world_size`` in-process ranks.

    This class doubles as the *backend interface*: any communicator the
    engine can drive exposes these collectives plus ``backend``/
    ``close()``.  The shared-memory process-pool backend
    (:class:`~repro.dist.mpcomm.MpComm`) subclasses it and inherits the
    collectives verbatim — over shared pages the sequential arithmetic
    *is* the parallel implementation, which is what keeps the two
    backends bitwise-identical and their byte accounting in lockstep.
    """

    #: Which backend this communicator is (``"sim"`` or ``"mp"``);
    #: :class:`~repro.dist.faults.ChaosComm` forwards it for wrapped comms.
    backend = "sim"

    def __init__(self, world_size: int) -> None:
        if not isinstance(world_size, (int, np.integer)) or world_size < 1:
            raise DistError(f"world_size must be a positive integer, got {world_size!r}")
        self.world_size = int(world_size)
        self.stats = CommStats()

    # -- validation ---------------------------------------------------------

    def _check_buffers(self, buffers: Sequence[np.ndarray], op: str) -> list[np.ndarray]:
        bufs = [np.asarray(b) for b in buffers]
        if len(bufs) != self.world_size:
            raise DistError(
                f"{op}: expected one buffer per rank ({self.world_size}), got {len(bufs)}"
            )
        first = bufs[0]
        for rank, buf in enumerate(bufs):
            if buf.shape != first.shape:
                raise DistError(
                    f"{op}: rank {rank} buffer shape {buf.shape} != rank 0 shape {first.shape}"
                )
            if buf.dtype != first.dtype:
                raise DistError(
                    f"{op}: rank {rank} buffer dtype {buf.dtype} != rank 0 dtype {first.dtype}"
                )
        return bufs

    def _ring_fraction(self) -> float:
        return (self.world_size - 1) / self.world_size

    def _charge_collective(self, op: str, nbytes: float) -> None:
        """Charge one collective over ``nbytes`` of raw payload.

        ``nbytes`` is the *logical* buffer size (the full gradient /
        gathered tensor), not the wire traffic: this hook applies the
        cost model.  The flat-ring base implementation charges
        ``(n-1)/n * nbytes`` (doubled for all-reduce, which is a
        reduce-scatter phase plus an all-gather phase).  The
        topology-aware subclasses (:class:`~repro.dist.topology.HierComm`)
        override it to split the same payload across intra-node and
        inter-node link classes — the *arithmetic* of every collective is
        shared and stays bitwise-identical; only this accounting differs.
        """
        multiplier = 2.0 if op == "all_reduce" else 1.0
        self.stats.charge(op, multiplier * self._ring_fraction() * nbytes)

    def _mean(self, bufs: list[np.ndarray]) -> np.ndarray:
        """Element-wise mean at O(numel) peak memory.

        The engine passes ``world_size`` references to one shared
        gradient buffer; the identity fast path keeps that case both
        allocation-free and bitwise exact at any world size.
        """
        first = bufs[0]
        if all(b is first for b in bufs[1:]):
            return first.copy()
        acc = first.copy() if first.dtype.kind == "f" else first.astype(np.float32)
        for buf in bufs[1:]:
            acc += buf
        acc /= self.world_size
        return acc

    # -- collectives --------------------------------------------------------

    def all_reduce_mean(self, buffers: Sequence[np.ndarray]) -> np.ndarray:
        """Element-wise mean over all ranks' buffers; every rank gets it."""
        bufs = self._check_buffers(buffers, "all_reduce")
        self._charge_collective("all_reduce", bufs[0].nbytes)
        return self._mean(bufs)

    def reduce_scatter_mean(self, buffers: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Mean over ranks, then rank ``r`` receives the ``r``-th slice.

        Buffers must be flat and evenly divisible by the world size —
        exactly the shape :class:`~repro.dist.partition.GroupPartition`
        padding guarantees.
        """
        bufs = self._check_buffers(buffers, "reduce_scatter")
        flat = bufs[0]
        if flat.ndim != 1:
            raise DistError(f"reduce_scatter: buffers must be flat, got shape {flat.shape}")
        if flat.size % self.world_size:
            raise DistError(
                f"reduce_scatter: buffer length {flat.size} not divisible by "
                f"world_size {self.world_size}"
            )
        self._charge_collective("reduce_scatter", flat.nbytes)
        mean = self._mean(bufs)
        if self.world_size == 1:
            return [mean]
        return [chunk.copy() for chunk in np.split(mean, self.world_size)]

    def reduce_scatter_mean_into(
        self, buffers: Sequence[np.ndarray], out: np.ndarray
    ) -> list[np.ndarray]:
        """Buffer-donating :meth:`reduce_scatter_mean`.

        Writes the element-wise mean into ``out`` (a flat buffer of the
        same shape/dtype as each input) and returns one zero-copy slice
        view of ``out`` per rank.  ``out`` may be ``buffers[0]`` itself —
        the engine's case, where every simulated rank already shares one
        gradient buffer and the whole collective degenerates to slicing —
        but must not alias any *other* input buffer.  Byte accounting is
        identical to the allocating variant.
        """
        bufs = self._check_buffers(buffers, "reduce_scatter")
        flat = bufs[0]
        if flat.ndim != 1:
            raise DistError(f"reduce_scatter: buffers must be flat, got shape {flat.shape}")
        if flat.size % self.world_size:
            raise DistError(
                f"reduce_scatter: buffer length {flat.size} not divisible by "
                f"world_size {self.world_size}"
            )
        if out.shape != flat.shape or out.dtype != flat.dtype:
            raise DistError(
                f"reduce_scatter: out buffer shape/dtype {out.shape}/{out.dtype} "
                f"!= input {flat.shape}/{flat.dtype}"
            )
        self._charge_collective("reduce_scatter", flat.nbytes)
        if out is not flat:
            np.copyto(out, flat)
        if not all(b is flat for b in bufs[1:]):
            for buf in bufs[1:]:
                out += buf
            out /= self.world_size
        shard = flat.size // self.world_size
        return [out[r * shard : (r + 1) * shard] for r in range(self.world_size)]

    def all_gather(self, shards: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate every rank's shard; every rank gets the whole."""
        bufs = self._check_buffers(shards, "all_gather")
        total_nbytes = sum(b.nbytes for b in bufs)
        self._charge_collective("all_gather", total_nbytes)
        if self.world_size == 1:
            return bufs[0].copy()
        return np.concatenate(bufs, axis=0)

    def all_gather_into(
        self, shards: Sequence[np.ndarray], out: np.ndarray
    ) -> np.ndarray:
        """Buffer-donating :meth:`all_gather`: concatenate into ``out``.

        ``out`` must be a flat buffer of ``world_size * shard_numel``
        elements.  A shard that already *is* its destination slice of
        ``out`` (the engine's case: master shards are views into one
        contiguous group buffer) is skipped rather than copied, so the
        gather is free when the data never moved.  Byte accounting is
        identical to the allocating variant.
        """
        bufs = self._check_buffers(shards, "all_gather")
        total_nbytes = sum(b.nbytes for b in bufs)
        shard = bufs[0].size
        if out.ndim != 1 or out.size != shard * self.world_size or out.dtype != bufs[0].dtype:
            raise DistError(
                f"all_gather: out buffer shape/dtype {out.shape}/{out.dtype} cannot "
                f"hold {self.world_size} x {bufs[0].shape}/{bufs[0].dtype} shards"
            )
        self._charge_collective("all_gather", total_nbytes)
        for rank, buf in enumerate(bufs):
            dest = out[rank * shard : (rank + 1) * shard]
            if buf.ctypes.data != dest.ctypes.data:
                np.copyto(dest, buf)
        return out

    def close(self) -> None:
        """Release backend resources (no-op for the in-process backend).

        Part of the backend interface: trainers call it unconditionally
        when a run ends, and the process-pool backend overrides it to
        stop workers and unlink shared-memory segments.
        """

    def broadcast(self, buffer: np.ndarray, root: int = 0) -> list[np.ndarray]:
        """Every rank receives an independent copy of ``root``'s buffer."""
        if not 0 <= root < self.world_size:
            raise DistError(
                f"broadcast: root {root} out of range for world_size {self.world_size}"
            )
        src = np.asarray(buffer)
        self._charge_collective("broadcast", src.nbytes)
        return [src.copy() for _ in range(self.world_size)]

    def __repr__(self) -> str:
        return (
            f"SimComm(world_size={self.world_size}, "
            f"total_bytes={self.stats.total_bytes():.0f})"
        )
