"""Shared utilities: errors, logging, RNG streams, YAML subset, tables."""

from .errors import (
    CheckpointError,
    CheckpointFormatError,
    ConfigError,
    DistError,
    GradError,
    MergeError,
    RecipeError,
    ReproError,
    ShapeError,
    SimulatedFailure,
    TrainingError,
    YamlError,
)
from .humanize import format_bytes, format_duration, format_gib, format_pct, format_ratio
from .jsonio import read_json, write_json_atomic
from .logging import get_logger, rank_logger, set_level
from .rng import RngTree, derive_seed, stream
from .tables import Table, render_kv
from .timer import SimClock, WallTimer

__all__ = [
    "CheckpointError",
    "CheckpointFormatError",
    "ConfigError",
    "DistError",
    "GradError",
    "MergeError",
    "RecipeError",
    "ReproError",
    "ShapeError",
    "SimulatedFailure",
    "TrainingError",
    "YamlError",
    "format_bytes",
    "format_duration",
    "format_gib",
    "format_pct",
    "format_ratio",
    "read_json",
    "write_json_atomic",
    "get_logger",
    "rank_logger",
    "set_level",
    "RngTree",
    "derive_seed",
    "stream",
    "Table",
    "render_kv",
    "SimClock",
    "WallTimer",
]
