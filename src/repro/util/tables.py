"""ASCII table rendering for paper-style result tables.

Every benchmark in ``benchmarks/`` ends by printing one of the paper's
tables; this module renders them consistently (column alignment, optional
highlighting of the best value per column, markdown mode for inclusion in
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = ["Table", "render_kv"]


@dataclass
class Table:
    """Column-aligned ASCII / markdown table builder.

    >>> t = Table(["Model", "Size (G)"], title="Table 3")
    >>> t.add_row(["Llama3.1-8B", 1799.52])
    >>> print(t.render())
    """

    headers: Sequence[str]
    title: str | None = None
    rows: list[list[str]] = field(default_factory=list)
    _raw_rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, values: Sequence[Any]) -> "Table":
        """Append one row (stringified cells)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self._raw_rows.append(list(values))
        self.rows.append([_fmt(v) for v in values])
        return self

    def add_separator(self) -> "Table":
        """Append a horizontal rule between row groups."""
        self._raw_rows.append([])
        self.rows.append([])
        return self

    def highlight_best(self, column: int, best: Callable[[Sequence[float]], float] = max) -> None:
        """Mark the best numeric value in a column with a trailing ``*``.

        Mirrors the paper's bold "top result per benchmark" convention.
        """
        numeric: list[tuple[int, float]] = []
        for i, raw in enumerate(self._raw_rows):
            if raw and isinstance(raw[column], (int, float)):
                numeric.append((i, float(raw[column])))
        if not numeric:
            return
        target = best([v for _, v in numeric])
        for i, v in numeric:
            if v == target:
                self.rows[i][column] = self.rows[i][column] + " *"

    def _widths(self) -> list[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for j, cell in enumerate(row):
                widths[j] = max(widths[j], len(cell))
        return widths

    def render(self) -> str:
        """The table as ASCII art with aligned columns."""
        widths = self._widths()
        sep = "+".join("-" * (w + 2) for w in widths)
        sep = f"+{sep}+"
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(sep)
        lines.append(_line(self.headers, widths))
        lines.append(sep)
        for row in self.rows:
            lines.append(sep if not row else _line(row, widths))
        lines.append(sep)
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """The table as GitHub-flavored Markdown."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            if row:
                lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.2f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.4f}"
    return str(v)


def _line(cells: Sequence[str], widths: list[int]) -> str:
    padded = [f" {c:<{w}} " for c, w in zip(cells, widths)]
    return "|" + "|".join(padded) + "|"


def render_kv(title: str, pairs: dict[str, Any]) -> str:
    """Render a key/value block (used for experiment configs in output)."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] + [f"  {k:<{width}} : {_fmt(v)}" for k, v in pairs.items()]
    return "\n".join(lines)
