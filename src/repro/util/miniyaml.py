"""A dependency-free YAML subset parser and dumper.

LLMTailor keeps MergeKit's YAML-driven interface (paper §3-4), but this
environment has no PyYAML, so recipes are parsed with this module.  The
supported subset covers everything MergeKit-style recipes need:

* block mappings (``key: value``) nested by indentation,
* block sequences (``- item``), including sequences of mappings and the
  compact ``- key: value`` first-line form,
* flow collections (``[1, 2]``, ``{a: 1, b: 2}``) one level deep inside
  themselves (nesting of flow inside flow is supported recursively),
* scalars: integers, floats (incl. ``1e-4``), booleans (``true/false``),
  ``null``/``~``, single/double-quoted strings, and plain strings,
* ``#`` comments and blank lines.

Not supported (raises :class:`YamlError` where detectable): anchors,
aliases, tags, multi-line block scalars, multi-document streams.  The
dumper emits documents this parser round-trips.
"""

from __future__ import annotations

from typing import Any

from .errors import YamlError

__all__ = ["loads", "dumps", "load_file", "dump_file"]


# --------------------------------------------------------------------------
# Scanner
# --------------------------------------------------------------------------

class _Line:
    __slots__ = ("indent", "content", "number")

    def __init__(self, indent: int, content: str, number: int) -> None:
        self.indent = indent
        self.content = content
        self.number = number

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Line({self.indent}, {self.content!r}, line={self.number})"


def _strip_comment(text: str) -> str:
    """Remove a trailing comment, respecting quoted strings."""
    quote: str | None = None
    escaped = False
    for i, ch in enumerate(text):
        if quote is not None:
            if escaped:
                escaped = False
            elif ch == "\\" and quote == '"':
                escaped = True
            elif ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "#" and (i == 0 or text[i - 1] in " \t"):
            return text[:i].rstrip()
    return text.rstrip()


def _scan(document: str) -> list[_Line]:
    lines: list[_Line] = []
    for number, raw in enumerate(document.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamlError(f"line {number}: tabs are not allowed in indentation")
        content = _strip_comment(raw)
        if not content.strip():
            continue
        if content.strip() == "---":
            if lines:
                raise YamlError(f"line {number}: multi-document streams are unsupported")
            continue
        indent = len(content) - len(content.lstrip(" "))
        stripped = content.strip()
        for bad in ("&", "*"):
            if stripped.startswith(bad):
                raise YamlError(f"line {number}: anchors/aliases are unsupported")
        lines.append(_Line(indent, stripped, number))
    return lines


# --------------------------------------------------------------------------
# Scalar parsing
# --------------------------------------------------------------------------

_BOOLS = {"true": True, "false": False, "yes": True, "no": False, "on": True, "off": False}
# Note: "none" is deliberately NOT null — recipe values like
# ``cache_mode: none`` must stay strings (matches PyYAML behaviour).
_NULLS = {"null", "~", ""}


def _parse_scalar(token: str, line_no: int) -> Any:
    token = token.strip()
    if token.startswith(("'", '"')):
        if len(token) < 2 or token[-1] != token[0]:
            raise YamlError(f"line {line_no}: unterminated quoted string: {token!r}")
        body = token[1:-1]
        if token[0] == '"':
            body = (
                body.replace("\\\\", "\x00")
                .replace('\\"', '"')
                .replace("\\n", "\n")
                .replace("\\t", "\t")
                .replace("\x00", "\\")
            )
        return body
    if token.startswith("[") or token.startswith("{"):
        return _parse_flow(token, line_no)
    low = token.lower()
    if low in _NULLS:
        return None
    if low in _BOOLS:
        return _BOOLS[low]
    try:
        if low.startswith("0x"):
            return int(token, 16)
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _split_flow_items(body: str, line_no: int) -> list[str]:
    items: list[str] = []
    depth = 0
    quote: str | None = None
    escaped = False
    current = ""
    for ch in body:
        if quote is not None:
            current += ch
            if escaped:
                escaped = False
            elif ch == "\\" and quote == '"':
                escaped = True
            elif ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
            current += ch
        elif ch in "[{":
            depth += 1
            current += ch
        elif ch in "]}":
            depth -= 1
            current += ch
        elif ch == "," and depth == 0:
            items.append(current.strip())
            current = ""
        else:
            current += ch
    if quote is not None or depth != 0:
        raise YamlError(f"line {line_no}: unbalanced flow collection")
    if current.strip():
        items.append(current.strip())
    return items


def _parse_flow(token: str, line_no: int) -> Any:
    token = token.strip()
    if token.startswith("["):
        if not token.endswith("]"):
            raise YamlError(f"line {line_no}: unterminated flow sequence: {token!r}")
        body = token[1:-1].strip()
        if not body:
            return []
        return [_parse_scalar(item, line_no) for item in _split_flow_items(body, line_no)]
    if token.startswith("{"):
        if not token.endswith("}"):
            raise YamlError(f"line {line_no}: unterminated flow mapping: {token!r}")
        body = token[1:-1].strip()
        out: dict[str, Any] = {}
        if not body:
            return out
        for item in _split_flow_items(body, line_no):
            key, sep, value = item.partition(":")
            if not sep:
                raise YamlError(f"line {line_no}: flow mapping entry missing ':': {item!r}")
            out[str(_parse_scalar(key, line_no))] = _parse_scalar(value, line_no)
        return out
    raise YamlError(f"line {line_no}: not a flow collection: {token!r}")


def _split_key(content: str, line_no: int) -> tuple[str, str] | None:
    """Split ``key: rest`` respecting quotes; None if no mapping key."""
    quote: str | None = None
    escaped = False
    depth = 0
    for i, ch in enumerate(content):
        if quote is not None:
            if escaped:
                escaped = False
            elif ch == "\\" and quote == '"':
                escaped = True
            elif ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        elif ch == ":" and depth == 0:
            if i + 1 == len(content) or content[i + 1] in " \t":
                return content[:i].strip(), content[i + 1 :].strip()
    return None


# --------------------------------------------------------------------------
# Block parser
# --------------------------------------------------------------------------

class _Parser:
    def __init__(self, lines: list[_Line]) -> None:
        self.lines = lines
        self.pos = 0

    def peek(self) -> _Line | None:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def parse_node(self, indent: int) -> Any:
        line = self.peek()
        if line is None:
            return None
        if line.content.startswith("- ") or line.content == "-":
            return self.parse_sequence(line.indent)
        return self.parse_mapping(line.indent)

    def parse_mapping(self, indent: int) -> dict[str, Any]:
        out: dict[str, Any] = {}
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                return out
            if line.indent > indent:
                raise YamlError(f"line {line.number}: unexpected indent")
            if line.content.startswith("- ") or line.content == "-":
                raise YamlError(f"line {line.number}: sequence item inside mapping")
            split = _split_key(line.content, line.number)
            if split is None:
                raise YamlError(f"line {line.number}: expected 'key: value', got {line.content!r}")
            key, rest = split
            key = str(_parse_scalar(key, line.number))
            if key in out:
                raise YamlError(f"line {line.number}: duplicate key {key!r}")
            self.pos += 1
            if rest:
                out[key] = _parse_scalar(rest, line.number)
            else:
                nxt = self.peek()
                if nxt is not None and nxt.indent > indent:
                    out[key] = self.parse_node(nxt.indent)
                else:
                    out[key] = None

    def parse_sequence(self, indent: int) -> list[Any]:
        out: list[Any] = []
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                return out
            if line.indent > indent:
                raise YamlError(f"line {line.number}: unexpected indent in sequence")
            if not (line.content.startswith("- ") or line.content == "-"):
                return out
            rest = line.content[1:].strip()
            item_indent = line.indent + 2
            if not rest:
                self.pos += 1
                nxt = self.peek()
                if nxt is not None and nxt.indent >= item_indent:
                    out.append(self.parse_node(nxt.indent))
                else:
                    out.append(None)
                continue
            if rest.startswith("- ") or rest == "-":
                # Nested sequence in compact form ("- - item"): rewrite the
                # line at the item indent and recurse.
                self.lines[self.pos] = _Line(item_indent, rest, line.number)
                out.append(self.parse_sequence(item_indent))
                continue
            split = _split_key(rest, line.number)
            if split is not None:
                # Compact "- key: value" form: rewrite the first line as a
                # mapping entry at the item indent and parse the mapping.
                self.lines[self.pos] = _Line(item_indent, rest, line.number)
                out.append(self.parse_mapping(item_indent))
            else:
                self.pos += 1
                out.append(_parse_scalar(rest, line.number))


def loads(document: str) -> Any:
    """Parse a YAML-subset document into Python objects."""
    lines = _scan(document)
    if not lines:
        return None
    parser = _Parser(lines)
    result = parser.parse_node(lines[0].indent)
    leftover = parser.peek()
    if leftover is not None:
        raise YamlError(f"line {leftover.number}: trailing content {leftover.content!r}")
    return result


def load_file(path) -> Any:
    """Parse the YAML-subset file at ``path`` (see :func:`loads`)."""
    from pathlib import Path

    return loads(Path(path).read_text(encoding="utf-8"))


# --------------------------------------------------------------------------
# Dumper
# --------------------------------------------------------------------------

_PLAIN_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-./")


def _dump_scalar(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    needs_quote = (
        not text
        or not all(c in _PLAIN_SAFE for c in text)
        or text.startswith("-")  # would parse as a sequence item
        or text.lower() in _BOOLS
        or text.lower() in _NULLS
        or _looks_numeric(text)
    )
    if needs_quote:
        escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'
    return text


def _looks_numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


def _dump_node(value: Any, indent: int, lines: list[str]) -> None:
    pad = " " * indent
    if isinstance(value, dict):
        if not value:
            lines.append(f"{pad}{{}}")
            return
        for key, val in value.items():
            key_text = _dump_scalar(key)
            if isinstance(val, dict) and val:
                lines.append(f"{pad}{key_text}:")
                _dump_node(val, indent + 2, lines)
            elif isinstance(val, list) and val:
                lines.append(f"{pad}{key_text}:")
                _dump_node(val, indent + 2, lines)
            elif isinstance(val, (dict, list)):
                lines.append(f"{pad}{key_text}: {'{}' if isinstance(val, dict) else '[]'}")
            else:
                lines.append(f"{pad}{key_text}: {_dump_scalar(val)}")
    elif isinstance(value, list):
        for item in value:
            if isinstance(item, dict) and item:
                sub: list[str] = []
                _dump_node(item, 0, sub)
                lines.append(f"{pad}- {sub[0]}")
                lines.extend(f"{pad}  {s}" for s in sub[1:])
            elif isinstance(item, list) and item:
                sub = []
                _dump_node(item, 0, sub)
                lines.append(f"{pad}- {sub[0].strip()}" if sub else f"{pad}-")
                lines.extend(f"{pad}  {s}" for s in sub[1:])
            elif isinstance(item, (dict, list)):
                lines.append(f"{pad}- {'{}' if isinstance(item, dict) else '[]'}")
            else:
                lines.append(f"{pad}- {_dump_scalar(item)}")
    else:
        lines.append(f"{pad}{_dump_scalar(value)}")


def dumps(value: Any) -> str:
    """Serialize Python objects into the YAML subset (round-trips loads)."""
    lines: list[str] = []
    _dump_node(value, 0, lines)
    return "\n".join(lines) + "\n"


def dump_file(path, value: Any) -> None:
    """Serialize ``value`` as YAML into ``path`` (see :func:`dumps`)."""
    from pathlib import Path

    Path(path).write_text(dumps(value), encoding="utf-8")
