"""Atomic JSON reading/writing for checkpoint metadata files.

Checkpoint metadata (``trainer_state.json``, ``config.json``,
``tailor_manifest.json``) must never be observed half-written: a crash
while checkpointing should leave either the old file or the new file, not
a truncated one.  Writes therefore go to a temporary sibling and are
``os.replace``d into place (atomic on POSIX).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from .errors import CheckpointError

__all__ = ["read_json", "write_json_atomic", "JsonEncoder"]


class JsonEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars/arrays and paths."""

    def default(self, o: Any) -> Any:
        if isinstance(o, (np.integer,)):
            return int(o)
        if isinstance(o, (np.floating,)):
            return float(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        if isinstance(o, Path):
            return str(o)
        if isinstance(o, set):
            return sorted(o)
        return super().default(o)


def read_json(path: str | Path) -> Any:
    """Parse a JSON file, raising :class:`CheckpointError` when missing/invalid."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"missing JSON file: {path}")
    try:
        with path.open("r", encoding="utf-8") as fh:
            return json.load(fh)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt JSON file {path}: {exc}") from exc


def write_json_atomic(path: str | Path, obj: Any, *, indent: int = 2) -> None:
    """Write JSON via a temp file + rename so readers never see partial files."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(obj, fh, indent=indent, sort_keys=True, cls=JsonEncoder)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
