"""Wall-clock and simulated-clock timing.

Two clock flavours:

* :class:`WallTimer` — a context-manager stopwatch over ``perf_counter``,
  used when benchmarking real file I/O (Table 7).
* :class:`SimClock` — a deterministic virtual clock advanced by cost
  models (compute time per training step, bytes/bandwidth for storage).
  All "proportion of checkpoint time" numbers (Tables 3 and 6) are read
  off a SimClock so they are reproducible on any machine.

The SimClock tracks named categories (``compute``, ``checkpoint_write``,
...) so overhead proportions can be reported per category.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field


class WallTimer:
    """Stopwatch usable as a context manager.

    >>> with WallTimer() as t:
    ...     do_work()
    >>> t.elapsed  # seconds
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "WallTimer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop and return the accumulated elapsed seconds."""
        if self._start is None:
            raise RuntimeError("timer was not started")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time and stop."""
        self.elapsed = 0.0
        self._start = None


@dataclass
class SimClock:
    """Deterministic virtual clock with per-category accounting.

    ``advance(dt, "compute")`` moves time forward and charges the interval
    to the named category.  ``fraction("checkpoint")`` returns the share
    of total elapsed time spent in categories whose name starts with the
    given prefix — exactly the "proportion of checkpoint time" metric in
    the paper's Tables 3 and 6.
    """

    now: float = 0.0
    by_category: dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def advance(self, dt: float, category: str = "other") -> float:
        """Move time forward by ``dt`` and charge it to ``category``."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self.now += dt
        self.by_category[category] += dt
        return self.now

    def total(self) -> float:
        """Total elapsed simulated seconds."""
        return self.now

    def category_total(self, prefix: str) -> float:
        """Seconds charged to categories whose name starts with ``prefix``."""
        return sum(v for k, v in self.by_category.items() if k.startswith(prefix))

    def fraction(self, prefix: str) -> float:
        """Share of elapsed time charged to categories under ``prefix``."""
        if self.now == 0.0:
            return 0.0
        return self.category_total(prefix) / self.now

    def snapshot(self) -> dict[str, float]:
        """Category totals plus ``__total__`` as a plain dict."""
        out = dict(self.by_category)
        out["__total__"] = self.now
        return out

    def reset(self) -> None:
        """Zero the clock and all categories."""
        self.now = 0.0
        self.by_category.clear()
