"""Human-readable formatting for byte counts, durations, and ratios.

Used by the benchmark harness to print the paper-style tables (sizes in
GiB, times in seconds, checkpoint-time proportions in percent).
"""

from __future__ import annotations

__all__ = [
    "format_bytes",
    "format_gib",
    "format_duration",
    "format_ratio",
    "format_pct",
    "parse_bytes",
]

_BYTE_UNITS = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"]


def format_bytes(n: float) -> str:
    """``1536`` → ``'1.50 KiB'``; negative values keep their sign."""
    sign = "-" if n < 0 else ""
    n = abs(float(n))
    for unit in _BYTE_UNITS:
        if n < 1024.0 or unit == _BYTE_UNITS[-1]:
            if unit == "B":
                return f"{sign}{int(n)} B"
            return f"{sign}{n:.2f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")


def format_gib(n_bytes: float, digits: int = 2) -> str:
    """Bytes rendered in GiB with fixed precision (paper tables use G)."""
    return f"{n_bytes / 1024**3:.{digits}f}"


def format_duration(seconds: float) -> str:
    """``95.3`` → ``'1m 35.3s'``; sub-second values keep milliseconds."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, rem = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m {rem:.1f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h {minutes}m {rem:.0f}s"


def format_ratio(numer: float, denom: float, digits: int = 2) -> str:
    """``(4.3, 1.0)`` → ``'4.30x'``; guards against zero denominators."""
    if denom == 0:
        return "inf" if numer else "n/a"
    return f"{numer / denom:.{digits}f}x"


def format_pct(fraction: float, digits: int = 2) -> str:
    """``0.0499`` → ``'4.99'`` (paper prints bare percent numbers)."""
    return f"{fraction * 100.0:.{digits}f}"


_PARSE_UNITS = {
    "b": 1,
    "kb": 1000,
    "kib": 1024,
    "mb": 1000**2,
    "mib": 1024**2,
    "gb": 1000**3,
    "gib": 1024**3,
    "g": 1024**3,
    "tb": 1000**4,
    "tib": 1024**4,
}


def parse_bytes(text: str) -> int:
    """Parse ``'350 GB'`` / ``'1.5GiB'`` / ``'2048'`` into a byte count."""
    text = text.strip().lower()
    num = ""
    idx = 0
    for idx, ch in enumerate(text):
        if ch.isdigit() or ch in "._":
            num += ch
        elif ch == " ":
            continue
        else:
            break
    else:
        idx = len(text)
    unit = text[idx:].strip() or "b"
    if not num or unit not in _PARSE_UNITS:
        raise ValueError(f"cannot parse byte size: {text!r}")
    return int(float(num) * _PARSE_UNITS[unit])
