"""Deterministic random-stream management.

Everything stochastic in the library (weight init, data generation,
data-loader shuffling, per-rank micro-batch sampling) pulls from a named
substream derived from one root seed, so that:

* results are bit-reproducible for a fixed seed,
* adding a consumer never perturbs existing streams (streams are keyed by
  name, not by draw order),
* simulated ranks/workers can be re-ordered or parallelised freely.

Streams are derived by hashing ``(root_seed, key)`` with SHA-256 into a
``numpy.random.Generator`` (PCG64) seed — the standard "split by key"
idiom used in large parallel runs, where sequential seeding (seed+rank)
risks overlapping state.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np

__all__ = ["derive_seed", "stream", "RngTree"]


def derive_seed(root_seed: int, *keys: object) -> int:
    """Derive a 64-bit child seed from a root seed and a key path.

    Keys may be strings or integers; they are canonicalised into a single
    ``/``-joined path so ``derive_seed(s, "data", 3)`` is stable across
    sessions and platforms.
    """
    path = "/".join(str(k) for k in keys)
    digest = hashlib.sha256(f"{root_seed}|{path}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def stream(root_seed: int, *keys: object) -> np.random.Generator:
    """A fresh PCG64 generator for the named substream."""
    return np.random.default_rng(derive_seed(root_seed, *keys))


class RngTree:
    """Hierarchical seed tree.

    ``RngTree(1234).child("init").generator("layers", 5)`` always returns
    the same stream regardless of what other parts of the program drew.
    """

    def __init__(self, root_seed: int, *path: object) -> None:
        self.root_seed = int(root_seed)
        self.path: tuple[object, ...] = tuple(path)

    def child(self, *keys: object) -> "RngTree":
        """A subtree rooted at this path extended by ``keys``."""
        return RngTree(self.root_seed, *self.path, *keys)

    def seed(self, *keys: object) -> int:
        """The derived 64-bit seed for the named substream under this path."""
        return derive_seed(self.root_seed, *self.path, *keys)

    def generator(self, *keys: object) -> np.random.Generator:
        """A fresh PCG64 generator for the named substream under this path."""
        return np.random.default_rng(self.seed(*keys))

    def state_key(self) -> str:
        """Stable identifier for checkpointing RNG provenance."""
        return f"{self.root_seed}:" + "/".join(str(k) for k in self.path)

    def spawn(self, n: int, *keys: object) -> Iterator[np.random.Generator]:
        """``n`` independent generators, e.g. one per simulated rank."""
        for i in range(n):
            yield self.generator(*keys, i)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngTree({self.state_key()})"
