"""Lightweight, rank-aware logging.

The simulated-distributed engine runs every "rank" inside one process, so
the usual ``logging`` module is wrapped with a per-rank prefix instead of
per-process configuration.  Verbosity is controlled globally; benchmarks
default to WARNING so table output stays clean.
"""

from __future__ import annotations

import logging
import os
import sys

_ROOT_NAME = "repro"
_configured = False


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s", "%H:%M:%S")
        )
        root.addHandler(handler)
    level_name = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
    root.setLevel(getattr(logging, level_name, logging.WARNING))
    root.propagate = False
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the library root.

    ``get_logger("io.storage")`` yields the ``repro.io.storage`` logger.
    """
    _configure_root()
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_level(level: int | str) -> None:
    """Set the verbosity of every repro logger at once."""
    _configure_root()
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    logging.getLogger(_ROOT_NAME).setLevel(level)


class RankAdapter(logging.LoggerAdapter):
    """Prefixes messages with ``[rank N]`` for simulated ranks."""

    def process(self, msg, kwargs):
        return f"[rank {self.extra['rank']}] {msg}", kwargs


def rank_logger(name: str, rank: int) -> logging.LoggerAdapter:
    """A logger whose messages are tagged with the simulated rank."""
    return RankAdapter(get_logger(name), {"rank": rank})
