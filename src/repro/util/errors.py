"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError` so that callers can catch library failures without
swallowing programming errors (``TypeError``, ``KeyError`` from bugs, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A model / training / strategy configuration is invalid."""


class RecipeError(ReproError):
    """A merge recipe (YAML or programmatic) is malformed or inconsistent."""


class CheckpointError(ReproError):
    """A checkpoint on disk is missing, malformed, or incompatible."""


class CheckpointFormatError(CheckpointError):
    """A serialized container (tensorfile / blobfile) failed validation."""


class MergeError(ReproError):
    """Checkpoint merging could not produce a consistent result."""


class ReshardError(CheckpointError):
    """Elastic N→M resharding could not produce a consistent result."""


class ShapeError(ReproError):
    """Tensor shapes are incompatible for the requested operation."""


class GradError(ReproError):
    """Autograd graph misuse (backward twice, missing grad, ...)."""


class DistError(ReproError):
    """Simulated-distributed misuse (bad rank, mismatched collective, ...)."""


class YamlError(ReproError):
    """The mini-YAML parser rejected a document."""


class TrainingError(ReproError):
    """The training loop hit an unrecoverable condition."""


class SimulatedFailure(ReproError):
    """Raised by the failure injector to emulate a mid-training crash.

    Carries the global step at which the "machine died" so tests and
    examples can assert recovery starts from the right checkpoint.
    """

    def __init__(self, step: int, message: str | None = None) -> None:
        self.step = step
        super().__init__(message or f"injected failure at global step {step}")


class RankFailure(SimulatedFailure):
    """A scheduled rank death from a fault plan.

    Unlike a plain :class:`SimulatedFailure` (the whole job crashes and
    later resumes at the same world size), a rank failure leaves N-1
    survivors: the chaos supervisor shrinks the world and resumes
    elastically.  Carries the dead rank alongside the step.
    """

    def __init__(self, step: int, rank: int) -> None:
        self.rank = rank
        super().__init__(step, f"rank {rank} failed at global step {step}")


class RankJoin(SimulatedFailure):
    """A scheduled capacity arrival from a fault plan.

    Interrupts the leg the same way a failure does — the step at which
    it fires completes, then the loop unwinds — but no state is lost:
    the chaos supervisor checkpoints the current world, grows N→N+1,
    and resumes elastically with the newcomer as the highest rank.
    """

    def __init__(self, step: int) -> None:
        super().__init__(step, f"rank joined after global step {step}")
