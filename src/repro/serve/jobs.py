"""Job lifecycle: state machine, flight recorder, and executors.

A :class:`Job` moves ``queued -> running -> done | failed``; rejected
submits never become jobs.  Each job carries a :class:`JobTimeline`
mirroring the chaos engine's :class:`~repro.dist.faults.FaultTimeline`:
an append-only event list a client can fetch with ``status``/``wait``
to see exactly what the service did on its behalf (admission cost,
queue wait, cache traffic, blob-store ingest).

:func:`execute_job` drives the existing engines — it is the *only*
place the service touches checkpoints, and it calls the very same
library entry points the one-shot CLI commands use
(:meth:`~repro.core.tailor.LLMTailor.merge`,
:func:`~repro.dist.reshard.reshard_checkpoint`,
:func:`~repro.core.diffstat.diff_checkpoints`,
:func:`~repro.strategies.planner.plan_strategy`), which is what makes
served results bitwise-identical to one-shot runs.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..io.layout import CheckpointPaths
from ..io.storage import BlobStore, group_key
from ..util.errors import ConfigError
from .admission import JobCost
from .protocol import JobSpec

__all__ = [
    "Job",
    "JobTimeline",
    "execute_job",
]

#: Terminal job states (``wait`` long-polls until one of these).
TERMINAL_STATES = ("done", "failed")


@dataclass
class JobTimeline:
    """Chronological record of one job's trip through the service.

    The serve-side counterpart of the chaos engine's
    :class:`~repro.dist.faults.FaultTimeline`: same shape (event list +
    counters, ``record``/``kinds``/``to_dict``/``summary``), but keyed
    by seconds since submit instead of training step.
    """

    events: list[dict] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    blob_refs_added: int = 0
    _t0: float = field(default_factory=time.monotonic, repr=False)

    def record(self, kind: str, **detail: Any) -> None:
        """Append one timeline entry stamped with seconds-since-submit."""
        entry: dict[str, Any] = {
            "t": round(time.monotonic() - self._t0, 6),
            "kind": str(kind),
        }
        entry.update(detail)
        self.events.append(entry)

    def kinds(self) -> list[str]:
        """The ``kind`` of every recorded entry, in order."""
        return [e["kind"] for e in self.events]

    def to_dict(self) -> dict[str, Any]:
        """Serializable form (stable keys, JSON-friendly values)."""
        return {
            "events": [dict(e) for e in self.events],
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "blob_refs_added": self.blob_refs_added,
        }

    def summary(self) -> str:
        """A short human-readable recap of the job's service trip."""
        lines = [
            f"job timeline: {len(self.events)} event(s), "
            f"{self.cache_hits} cache hit(s), {self.cache_misses} miss(es)"
        ]
        for e in self.events:
            detail = ", ".join(f"{k}={v}" for k, v in e.items() if k not in ("t", "kind"))
            lines.append(f"  [t+{e['t']:.3f}s] {e['kind']}" + (f": {detail}" if detail else ""))
        return "\n".join(lines)


@dataclass
class Job:
    """One admitted job: spec, accounting, state, and eventual result."""

    id: str
    spec: JobSpec
    cost: JobCost
    status: str = "queued"
    result: dict[str, Any] | None = None
    error: str | None = None
    timeline: JobTimeline = field(default_factory=JobTimeline)

    def to_dict(self, *, include_timeline: bool = True) -> dict[str, Any]:
        """The ``status``/``wait`` response body for this job."""
        out: dict[str, Any] = {
            "id": self.id,
            "tenant": self.spec.tenant,
            "kind": self.spec.kind,
            "priority": self.spec.priority,
            "status": self.status,
            "cost": self.cost.describe(),
        }
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if include_timeline:
            out["timeline"] = self.timeline.to_dict()
        return out


def _shard_group_keys(ckpt: CheckpointPaths) -> list[str]:
    """Content keys of every shard group in a checkpoint (cheap pass).

    Reads only headers and scalars — no arrays — via the merge engine's
    selective metadata read.  Checkpoints whose shards predate the
    per-group CRC headers yield no keys (they simply don't dedup).
    """
    from ..core.optimizer_merge import read_shard_metadata  # lazy: layering

    manifest = ckpt.read_manifest()
    world_size = int(manifest.get("world_size", 0))
    if world_size < 1:
        return []
    keys: list[str] = []
    for rank in range(world_size):
        path = ckpt.shard(rank)
        if not path.exists():
            continue
        meta = read_shard_metadata(path)
        shard_ws = int(meta.get("world_size", 0))
        if shard_ws < 1:
            continue
        for header in meta.get("groups", []):
            crc = header.get("crc32")
            numel = header.get("padded_numel")
            if crc is None or numel is None:
                continue
            keys.append(group_key(int(crc), int(numel) // shard_ws))
    return keys


def register_checkpoint_refs(
    store: BlobStore, tenant: str, checkpoint: str | Path, timeline: JobTimeline
) -> int:
    """Claim a tenant's ownership of a checkpoint's groups in the store.

    Returns the number of freshly added references.  Idempotent: a
    second job over the same (tenant, checkpoint) adds nothing, while a
    *different* tenant over identical content adds owners to the same
    objects — that shared refcount is what
    :func:`~repro.io.retention.prune_checkpoints` arbitrates deletions
    with.
    """
    ckpt = CheckpointPaths(checkpoint)
    if not ckpt.exists():
        return 0
    keys = _shard_group_keys(ckpt)
    if not keys:
        return 0
    added = store.add_refs(keys, store.owner_token(tenant, ckpt.dir))
    timeline.blob_refs_added += added
    timeline.record(
        "blob_refs", checkpoint=str(ckpt.dir), keys=len(keys), added=added
    )
    return added


def _run_merge(job: Job, store: BlobStore | None) -> dict[str, Any]:
    from ..core.recipe import load_recipe, parse_recipe
    from ..core.tailor import LLMTailor

    params = job.spec.params
    if "recipe" in params:
        recipe = load_recipe(params["recipe"])
    else:
        recipe = parse_recipe(dict(params["recipe_doc"]))
    # The service's thread pool is the concurrency unit (sized by
    # worker_budget); inside a job the engine stays thread-based so the
    # shared group cache remains visible.  Streaming is the default —
    # it is the path the cross-request cache plugs into.
    options = dataclasses.replace(
        recipe.options,
        workers=int(params.get("workers", 1)),
        stream=bool(params.get("stream", True)),
        cache_mode=str(params.get("cache_mode", recipe.options.cache_mode)),
    )
    recipe = dataclasses.replace(recipe, options=options)
    if store is not None:
        for source in recipe.distinct_sources():
            register_checkpoint_refs(store, job.spec.tenant, source, job.timeline)
    result = LLMTailor(recipe).merge(params.get("output"))
    job.timeline.record(
        "merged",
        output=str(result.output.dir),
        files_loaded=result.optimizer_files_loaded,
        bytes_loaded=result.optimizer_bytes_loaded,
    )
    return {
        "output": str(result.output.dir),
        "seconds": round(result.total_seconds, 6),
        "files_loaded": result.optimizer_files_loaded,
        "bytes_loaded": result.optimizer_bytes_loaded,
        "verified": result.verify_report is not None,
    }


def _run_reshard(job: Job, store: BlobStore | None) -> dict[str, Any]:
    from ..dist.reshard import reshard_checkpoint

    params = job.spec.params
    if store is not None:
        register_checkpoint_refs(
            store, job.spec.tenant, params["checkpoint"], job.timeline
        )
    report = reshard_checkpoint(
        params["checkpoint"],
        params["output"],
        int(params["target_world_size"]),
        stream=bool(params.get("stream", True)),
        workers=int(params.get("workers", 1)),
    )
    job.timeline.record(
        "resharded",
        output=str(report.output),
        world_size=f"{report.source_world_size}->{report.target_world_size}",
        bytes_loaded=report.bytes_loaded,
    )
    return {
        "output": str(report.output),
        "source_world_size": report.source_world_size,
        "target_world_size": report.target_world_size,
        "files_loaded": report.files_loaded,
        "bytes_loaded": report.bytes_loaded,
        "bytes_written": report.bytes_written,
        "seconds": round(report.total_seconds, 6),
    }


def _run_diff(job: Job) -> dict[str, Any]:
    from ..core.diffstat import diff_checkpoints

    params = job.spec.params
    drifts = diff_checkpoints(
        params["checkpoint_a"],
        params["checkpoint_b"],
        include_momentum=bool(params.get("momentum", False)),
    )
    job.timeline.record("diffed", slots=len(drifts))
    return {
        "slots": [
            {
                "slot": d.slot,
                "weight_l2": d.weight_l2,
                "weight_max": d.weight_max,
                "momentum_l2": d.momentum_l2,
                "params": d.params,
            }
            for d in drifts
        ]
    }


def _run_plan(job: Job) -> dict[str, Any]:
    from ..nn.config import get_config
    from ..strategies import build_strategy, plan_strategy

    params = job.spec.params
    config = get_config(str(params["model"]))
    strategy = build_strategy(
        str(params["strategy"]), config, int(params.get("interval", 100))
    )
    plan = plan_strategy(
        config,
        strategy,
        total_steps=int(params.get("steps", 1600)),
        world_size=int(params.get("world_size", 8)),
    )
    job.timeline.record("planned", strategy=plan.strategy, events=plan.num_events)
    return {
        "model": config.name,
        "strategy": plan.strategy,
        "num_events": plan.num_events,
        "total_bytes": plan.total_bytes,
        "checkpoint_seconds": round(plan.checkpoint_seconds, 6),
        "checkpoint_time_fraction": plan.checkpoint_time_fraction,
    }


def execute_job(job: Job, *, blob_store: BlobStore | None = None) -> dict[str, Any]:
    """Run one job to completion and return its result document.

    Runs synchronously in a service worker thread; the caller owns state
    transitions and error handling.  Passing ``blob_store`` registers
    the job's source checkpoints as owners of their shard groups before
    the engines run, so dedup'd content is refcounted from first touch.
    """
    if job.spec.kind == "merge":
        return _run_merge(job, blob_store)
    if job.spec.kind == "reshard":
        return _run_reshard(job, blob_store)
    if job.spec.kind == "diff":
        return _run_diff(job)
    if job.spec.kind == "plan":
        return _run_plan(job)
    raise ConfigError(f"unknown job kind {job.spec.kind!r}")
