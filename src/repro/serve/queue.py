"""Priority job queue for the merge service.

A small asyncio queue with two properties the stdlib
:class:`asyncio.PriorityQueue` does not give directly:

* strict FIFO *within* a priority level (ties break on a monotonic
  submit sequence number, so two equal-priority jobs from different
  tenants run in arrival order — no starvation by tuple comparison of
  unorderable payloads);
* a terminal ``close()``: workers draining the queue see ``None`` once
  it is closed *and* empty, which is how graceful shutdown tells the
  pool "finish what is queued, then stop" without sentinel-per-worker
  bookkeeping.

Higher ``priority`` dequeues sooner; the default 0 makes the queue
plain FIFO when nobody asks for priority.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools

from .jobs import Job

__all__ = ["JobQueue"]


class JobQueue:
    """Async priority queue of :class:`~repro.serve.jobs.Job` entries."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._cond = asyncio.Condition()
        self._closed = False

    def qsize(self) -> int:
        """Jobs currently queued (not yet picked up by a worker)."""
        return len(self._heap)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    async def put(self, job: Job) -> None:
        """Enqueue one admitted job (raises if the queue is closed)."""
        async with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            heapq.heappush(self._heap, (-job.spec.priority, next(self._seq), job))
            self._cond.notify()

    async def get(self) -> Job | None:
        """Dequeue the next job, or ``None`` once closed and drained."""
        async with self._cond:
            while not self._heap and not self._closed:
                await self._cond.wait()
            if self._heap:
                return heapq.heappop(self._heap)[2]
            return None  # closed and empty: worker should exit

    async def close(self) -> None:
        """Stop accepting jobs; queued work still drains via :meth:`get`."""
        async with self._cond:
            self._closed = True
            self._cond.notify_all()
