"""Checkpoint-merge-as-a-service: the ``llmtailor serve`` subsystem.

Everything the paper's workflow needs — streaming merge, N→M reshard,
layer diff, and the analytic planners — exists as library calls; this
package wraps them in a long-running multi-tenant asyncio daemon:

* :mod:`~repro.serve.protocol` — the newline-delimited JSON wire format
  and validated :class:`~repro.serve.protocol.JobSpec`;
* :mod:`~repro.serve.admission` — per-tenant quotas and the
  deterministic per-job cost estimates that drive admission control;
* :mod:`~repro.serve.queue` — the priority job queue;
* :mod:`~repro.serve.jobs` — job state machine, the per-job
  :class:`~repro.serve.jobs.JobTimeline` flight recorder, and the
  executors that drive the existing engines;
* :mod:`~repro.serve.journal` — crash-safe submit/done journal for
  replay on restart;
* :mod:`~repro.serve.server` — the asyncio daemon (unix socket or TCP)
  with a worker pool sharing the merge engine's worker budget, a
  cross-request :class:`~repro.io.storage.GroupCache`, and a
  content-addressed :class:`~repro.io.storage.BlobStore` deduplicating
  identical shard groups across tenants;
* :mod:`~repro.serve.client` — a blocking client for the CLI, tests,
  and the ``bench_serve`` load generator.

Results are bitwise-identical to the one-shot CLI paths: the service
only changes *where* bytes come from (cache/blob store instead of a
tenant's file), never what is written.
"""

from .admission import AdmissionController, JobCost, TenantQuota, estimate_job_cost
from .client import ServeClient
from .jobs import Job, JobTimeline
from .protocol import JobSpec, load_job_file, parse_job
from .queue import JobQueue
from .server import MergeService, ServeConfig, serve_in_thread

__all__ = [
    "AdmissionController",
    "Job",
    "JobCost",
    "JobQueue",
    "JobSpec",
    "JobTimeline",
    "MergeService",
    "ServeClient",
    "ServeConfig",
    "TenantQuota",
    "estimate_job_cost",
    "load_job_file",
    "parse_job",
    "serve_in_thread",
]
