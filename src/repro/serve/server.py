"""The merge service daemon: asyncio front end over the engines.

One :class:`MergeService` accepts concurrent connections on a unix
socket (default) and/or a TCP port, validates and admits jobs, queues
them by priority, and runs them on a worker pool — a
``ThreadPoolExecutor`` sized by the same
:func:`~repro.core.optimizer_merge.worker_budget` policy the engines
use, so total service concurrency is bounded exactly like a one-shot
run with ``--workers``.  Inside a job the engines stay thread-based,
which keeps the cross-request :class:`~repro.io.storage.GroupCache`
(installed process-wide via
:func:`~repro.core.optimizer_merge.set_group_cache`) visible to every
worker.

Durability: every admitted job is journaled before it is queued and
marked done on completion; on restart, unfinished jobs replay with
their tenant budget force-charged (quota limits are not re-checked, so
a tenant that crashed at its inflight cap cannot wedge its own
replay).  ``SIGTERM`` triggers a graceful drain — the queue
closes, in-flight and queued jobs finish, then the sockets come down.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import re
import signal
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..io.storage import BlobStore, GroupCache, StorageCostModel
from ..util.errors import ConfigError, ReproError
from ..util.logging import get_logger
from .admission import AdmissionController, TenantQuota, estimate_job_cost
from .jobs import TERMINAL_STATES, Job, execute_job
from .journal import JobJournal, replay_journal
from .protocol import decode_line, encode_line, parse_job
from .queue import JobQueue

__all__ = ["MergeService", "ServeConfig", "serve_in_thread"]

log = get_logger("serve.server")


@dataclass
class ServeConfig:
    """Everything one service instance needs to come up."""

    socket_path: str | None = None
    host: str | None = None
    port: int = 0
    workers: int = 2
    quota: TenantQuota = field(default_factory=TenantQuota)
    quota_overrides: dict[str, TenantQuota] = field(default_factory=dict)
    cache_bytes: int = 256 << 20
    blob_root: str | None = None
    journal_path: str | None = None
    max_jobs: int | None = None
    keep_finished: int = 1024
    storage: StorageCostModel | None = None

    def __post_init__(self) -> None:
        if self.socket_path is None and self.host is None:
            raise ConfigError("serve needs a socket path and/or a TCP host")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.max_jobs is not None and self.max_jobs < 1:
            raise ConfigError(f"max_jobs must be >= 1, got {self.max_jobs}")
        if self.keep_finished < 1:
            raise ConfigError(
                f"keep_finished must be >= 1, got {self.keep_finished}"
            )


class MergeService:
    """The asyncio daemon behind ``llmtailor serve``."""

    def __init__(self, config: ServeConfig) -> None:
        from ..core.optimizer_merge import worker_budget

        self.config = config
        self.queue = JobQueue()
        self.admission = AdmissionController(
            config.quota, overrides=config.quota_overrides
        )
        self.blob_store = (
            BlobStore(config.blob_root) if config.blob_root is not None else None
        )
        self.cache = GroupCache(max_bytes=config.cache_bytes, store=self.blob_store)
        self.journal = (
            JobJournal(config.journal_path)
            if config.journal_path is not None
            else None
        )
        # One budget for the whole service: the pool is the only place
        # engine work runs, so clamping it clamps total concurrency.
        self.pool_size = worker_budget(config.workers, config.workers)
        self.jobs: dict[str, Job] = {}
        self.counters = {
            "submitted": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
            "replayed": 0,
        }
        self._job_seq = 0
        self._job_events: dict[str, asyncio.Event] = {}
        self._finished_ids: deque[str] = deque()
        self._executor: ThreadPoolExecutor | None = None
        self._servers: list[asyncio.base_events.Server] = []
        self._worker_tasks: list[asyncio.Task] = []
        self._stopped = asyncio.Event()
        self._draining = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._prev_cache = None
        self.endpoints: dict[str, Any] = {}

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind sockets, install the cache, replay the journal, start workers."""
        from ..core.optimizer_merge import set_group_cache

        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.pool_size, thread_name_prefix="serve-worker"
        )
        self._prev_cache = set_group_cache(self.cache)
        if self.journal is not None:
            for job_id, spec in replay_journal(self.journal.path):
                # Replay bypasses the quota *checks* deliberately —
                # these jobs were already admitted once, and re-checking
                # could wedge a tenant that crashed at its inflight
                # limit — but still charges the budget, so the release
                # in _finish stays symmetric.
                cost = self._estimate(spec)
                self.admission.force_admit(spec, cost)
                job = Job(id=job_id, spec=spec, cost=cost)
                job.timeline.record("replayed")
                self._track(job)
                match = re.fullmatch(r"job-(\d+)", job_id)
                if match:
                    self._job_seq = max(self._job_seq, int(match.group(1)))
                await self.queue.put(job)
                self.counters["replayed"] += 1
                log.info("replayed journaled job %s (%s)", job_id, spec.kind)
        if self.config.socket_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket_path
            )
            self._servers.append(server)
            self.endpoints["socket"] = self.config.socket_path
        if self.config.host is not None:
            server = await asyncio.start_server(
                self._handle_connection, host=self.config.host, port=self.config.port
            )
            self._servers.append(server)
            self.endpoints["tcp"] = server.sockets[0].getsockname()[:2]
        self._worker_tasks = [
            asyncio.ensure_future(self._worker(i)) for i in range(self.pool_size)
        ]
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            # Signal handlers only install on the main thread; the
            # in-thread test harness simply calls request_shutdown().
            self._loop.add_signal_handler(
                signal.SIGTERM, self.request_shutdown
            )
            self._loop.add_signal_handler(
                signal.SIGINT, self.request_shutdown
            )
        log.info(
            "serving on %s with %d worker(s)", self.endpoints, self.pool_size
        )

    async def run(self) -> None:
        """Start, serve until a shutdown is requested, then tear down."""
        await self.start()
        await self._stopped.wait()
        await self._teardown()

    def request_shutdown(self) -> None:
        """Schedule a graceful drain (signal handlers, other threads)."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(
            lambda: asyncio.ensure_future(self.shutdown(drain=True))
        )

    async def shutdown(self, *, drain: bool = True) -> None:
        """Close the queue and let workers drain (or cancel queued jobs)."""
        if self._draining:
            return
        self._draining = True
        if not drain:
            while self.queue.qsize():
                job = await self.queue.get()
                if job is None:
                    break
                self._finish(job, "failed", error="cancelled at shutdown")
        await self.queue.close()
        log.info("shutdown requested (drain=%s)", drain)
        self._stopped.set()

    async def _teardown(self) -> None:
        from ..core.optimizer_merge import set_group_cache

        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        for server in self._servers:
            server.close()
            await server.wait_closed()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self.journal is not None:
            self.journal.close()
        set_group_cache(self._prev_cache)
        if self.config.socket_path is not None:
            Path(self.config.socket_path).unlink(missing_ok=True)
        log.info("service stopped after %d job(s)", self.counters["completed"]
                 + self.counters["failed"])

    # -- job bookkeeping -----------------------------------------------------

    def _estimate(self, spec):
        return estimate_job_cost(spec, storage=self.config.storage)

    def _track(self, job: Job) -> None:
        self.jobs[job.id] = job
        self._job_events[job.id] = asyncio.Event()

    def _finish(self, job: Job, status: str, *, error: str | None = None,
                result: dict[str, Any] | None = None) -> None:
        job.status = status
        job.error = error
        job.result = result
        job.timeline.record(status if error is None else "failed", **(
            {"error": error} if error else {}
        ))
        self.admission.finish(job.spec, job.cost)
        if self.journal is not None:
            self.journal.finished(job.id, status)
        self.counters["completed" if status == "done" else "failed"] += 1
        event = self._job_events.get(job.id)
        if event is not None:
            event.set()
        # Terminal jobs are kept for status/wait but bounded: a
        # long-running daemon must not retain every spec and timeline
        # forever.  Waiters blocked on an evicted job already hold
        # references to it and its event, so eviction cannot strand them.
        self._finished_ids.append(job.id)
        while len(self._finished_ids) > self.config.keep_finished:
            evicted = self._finished_ids.popleft()
            self.jobs.pop(evicted, None)
            self._job_events.pop(evicted, None)
        done = self.counters["completed"] + self.counters["failed"]
        if self.config.max_jobs is not None and done >= self.config.max_jobs:
            log.info("--max-jobs=%d reached, draining", self.config.max_jobs)
            asyncio.ensure_future(self.shutdown(drain=True))

    async def _worker(self, index: int) -> None:
        assert self._loop is not None and self._executor is not None
        while True:
            job = await self.queue.get()
            if job is None:
                return
            job.status = "running"
            job.timeline.record("start", worker=index)
            hits0, misses0 = self.cache.stats.hits, self.cache.stats.misses
            try:
                result = await self._loop.run_in_executor(
                    self._executor,
                    functools.partial(execute_job, job, blob_store=self.blob_store),
                )
            except ReproError as exc:
                self._finish(job, "failed", error=str(exc))
            except Exception as exc:  # engine bug: fail the job, not the service
                log.exception("job %s crashed", job.id)
                self._finish(job, "failed", error=f"{type(exc).__name__}: {exc}")
            else:
                job.timeline.cache_hits = self.cache.stats.hits - hits0
                job.timeline.cache_misses = self.cache.stats.misses - misses0
                self._finish(job, "done", result=result)

    # -- protocol ------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    response = await self._dispatch(decode_line(line))
                except ReproError as exc:
                    response = {"ok": False, "error": str(exc)}
                except Exception as exc:  # never kill the connection
                    log.exception("request failed")
                    response = {
                        "ok": False,
                        "error": f"internal error: {type(exc).__name__}: {exc}",
                    }
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "submit":
            return await self._op_submit(request)
        if op == "status":
            return self._op_status(request)
        if op == "wait":
            return await self._op_wait(request)
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "shutdown":
            asyncio.ensure_future(
                self.shutdown(drain=bool(request.get("drain", True)))
            )
            return {"ok": True, "draining": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _op_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        if self._draining or self.queue.closed:
            return {"ok": False, "error": "service is draining", "retry_after": 1.0}
        spec = parse_job(request.get("job") or {})
        assert self._loop is not None and self._executor is not None
        # Cost estimation stats files and parses manifests — off the loop.
        cost = await self._loop.run_in_executor(
            self._executor, self._estimate, spec
        )
        admission = self.admission.admit(spec, cost)
        if not admission.accepted:
            self.counters["rejected"] += 1
            return {
                "ok": False,
                "error": admission.reason,
                "retry_after": admission.retry_after,
                "cost": cost.describe(),
            }
        self._job_seq += 1
        job = Job(id=f"job-{self._job_seq:06d}", spec=spec, cost=cost)
        job.timeline.record(
            "admitted", total_bytes=cost.total_bytes, est_seconds=cost.est_seconds
        )
        self._track(job)
        if self.journal is not None:
            self.journal.submitted(job.id, spec)
        try:
            await self.queue.put(job)
        except RuntimeError:
            # Shutdown closed the queue after the drain check above
            # (the cost estimate awaited in the executor meanwhile):
            # release the admission charge, journal a terminal record
            # so the job does not silently replay on restart, and give
            # the client the normal draining response.
            self.admission.finish(spec, cost)
            if self.journal is not None:
                self.journal.finished(job.id, "failed")
            self.jobs.pop(job.id, None)
            self._job_events.pop(job.id, None)
            self.counters["rejected"] += 1
            return {"ok": False, "error": "service is draining", "retry_after": 1.0}
        self.counters["submitted"] += 1
        return {"ok": True, "id": job.id, "status": job.status,
                "cost": cost.describe()}

    def _op_status(self, request: dict[str, Any]) -> dict[str, Any]:
        job = self.jobs.get(str(request.get("id")))
        if job is None:
            return {"ok": False, "error": f"unknown job id {request.get('id')!r}"}
        return {"ok": True, "job": job.to_dict()}

    async def _op_wait(self, request: dict[str, Any]) -> dict[str, Any]:
        job_id = str(request.get("id"))
        job = self.jobs.get(job_id)
        if job is None:
            return {"ok": False, "error": f"unknown job id {job_id!r}"}
        if job.status not in TERMINAL_STATES:
            timeout = request.get("timeout")
            event = self._job_events[job_id]
            try:
                await asyncio.wait_for(
                    event.wait(), None if timeout is None else float(timeout)
                )
            except asyncio.TimeoutError:
                return {"ok": False, "error": "wait timed out", "job": job.to_dict()}
        return {"ok": True, "job": job.to_dict()}

    def stats(self) -> dict[str, Any]:
        """Service-wide counters: jobs, admission, cache, blob store."""
        out: dict[str, Any] = {
            "jobs": dict(self.counters),
            "queued": self.queue.qsize(),
            "workers": self.pool_size,
            "tenants": self.admission.stats(),
            "cache": self.cache.stats.as_dict(),
        }
        if self.blob_store is not None:
            out["blob_store"] = self.blob_store.stats()
        return out


class ServeHandle:
    """Foreground handle on a service running in a background thread."""

    def __init__(self, service: MergeService, thread: threading.Thread) -> None:
        self.service = service
        self.thread = thread

    def stop(self, timeout: float = 60.0) -> None:
        """Request a graceful drain and join the server thread."""
        self.service.request_shutdown()
        self.thread.join(timeout=timeout)

    def __enter__(self) -> "ServeHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(config: ServeConfig, *, ready_timeout: float = 30.0) -> ServeHandle:
    """Run a :class:`MergeService` on a background thread (tests, bench).

    Returns once the service has bound its sockets; use the handle as a
    context manager (or call ``stop()``) to drain and join.
    """
    service = MergeService(config)
    ready = threading.Event()
    failure: list[BaseException] = []

    async def _main() -> None:
        try:
            await service.start()
        except BaseException as exc:  # surface bind errors to the caller
            failure.append(exc)
            ready.set()
            raise
        ready.set()
        await service._stopped.wait()
        await service._teardown()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()), name="llmtailor-serve", daemon=True
    )
    thread.start()
    if not ready.wait(timeout=ready_timeout):
        raise ConfigError("serve thread failed to come up in time")
    if failure:
        raise failure[0]
    return ServeHandle(service, thread)
