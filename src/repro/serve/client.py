"""Blocking client for the merge service.

A thin synchronous wrapper over one socket connection speaking the
newline-delimited JSON protocol — what the ``llmtailor client`` CLI,
the tests, and the ``bench_serve`` load generator all use.  Being
plain ``socket`` + ``makefile`` (no asyncio), it is safe to drive from
many threads *each holding its own client*; one client is one
connection and is not thread-safe.

``submit_and_wait`` implements the polite quota dance: a rejection
carrying ``retry_after`` sleeps that long and resubmits, so callers
see backpressure as latency, not failures.
"""

from __future__ import annotations

import socket
import time
from typing import Any

from ..util.errors import ConfigError
from .protocol import JobSpec, decode_line, encode_line

__all__ = ["ServeClient"]


class ServeClient:
    """One blocking connection to a running merge service."""

    def __init__(
        self,
        socket_path: str | None = None,
        *,
        host: str | None = None,
        port: int | None = None,
        timeout: float | None = None,
    ) -> None:
        if (socket_path is None) == (host is None):
            raise ConfigError("connect with either socket_path or host/port")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            self._sock = socket.create_connection(
                (host, int(port or 0)), timeout=timeout
            )
        self._fh = self._sock.makefile("rwb")

    # -- plumbing ------------------------------------------------------------

    def request(self, doc: dict[str, Any]) -> dict[str, Any]:
        """Send one request line, read one response line."""
        self._fh.write(encode_line(doc))
        self._fh.flush()
        line = self._fh.readline()
        if not line:
            raise ConfigError("server closed the connection")
        return decode_line(line)

    def close(self) -> None:
        """Close the connection."""
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ops -----------------------------------------------------------------

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return bool(self.request({"op": "ping"}).get("ok"))

    def submit(self, job: JobSpec | dict[str, Any]) -> dict[str, Any]:
        """Submit one job; returns the raw response (accepted or not)."""
        doc = job.to_dict() if isinstance(job, JobSpec) else dict(job)
        return self.request({"op": "submit", "job": doc})

    def status(self, job_id: str) -> dict[str, Any]:
        """Snapshot one job's state."""
        return self.request({"op": "status", "id": job_id})

    def wait(self, job_id: str, *, timeout: float | None = None) -> dict[str, Any]:
        """Long-poll until a job reaches a terminal state."""
        doc: dict[str, Any] = {"op": "wait", "id": job_id}
        if timeout is not None:
            doc["timeout"] = timeout
        return self.request(doc)

    def stats(self) -> dict[str, Any]:
        """Service-wide counters (jobs, tenants, cache, blob store)."""
        response = self.request({"op": "stats"})
        if not response.get("ok"):
            raise ConfigError(f"stats failed: {response.get('error')}")
        return response["stats"]

    def shutdown(self, *, drain: bool = True) -> dict[str, Any]:
        """Ask the service to drain and stop."""
        return self.request({"op": "shutdown", "drain": drain})

    def submit_and_wait(
        self,
        job: JobSpec | dict[str, Any],
        *,
        timeout: float | None = None,
        max_retries: int = 100,
    ) -> dict[str, Any]:
        """Submit with quota backoff, then wait for the terminal job.

        Quota rejections sleep their ``retry_after`` hint and resubmit
        (up to ``max_retries`` times); any other rejection raises.
        Returns the terminal job document.
        """
        for _ in range(max_retries):
            response = self.submit(job)
            if response.get("ok"):
                result = self.wait(response["id"], timeout=timeout)
                if not result.get("ok"):
                    raise ConfigError(f"wait failed: {result.get('error')}")
                return result["job"]
            retry_after = response.get("retry_after")
            if retry_after is None:
                raise ConfigError(f"submit rejected: {response.get('error')}")
            time.sleep(float(retry_after))
        raise ConfigError(f"submit still rejected after {max_retries} retries")
