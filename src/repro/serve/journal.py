"""Crash-safe job journal: JSONL submit/done records + restart replay.

Every admitted job appends one ``submit`` line *before* it is queued;
reaching a terminal state appends one ``done`` line.  Both writes are
single ``write()`` calls of one newline-terminated line on an
append-mode handle, flushed and fsync'd, so a crash can at worst lose
the final line — never interleave two.

On restart, :func:`replay_journal` pairs the records: a job with a
``submit`` but no ``done`` was lost mid-flight (queued or running when
the process died) and is re-queued with its tenant budget
force-charged (quota limits are not re-checked on replay).  Job
execution is idempotent — merge/reshard rewrite their output
atomically, diff/plan are pure — so replaying a job that had actually
*finished* its work but not its journal line is safe.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from ..util.errors import ConfigError
from .protocol import JobSpec, parse_job

__all__ = ["JobJournal", "replay_journal"]


class JobJournal:
    """Append-only JSONL record of submits and completions."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def _append(self, record: dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def submitted(self, job_id: str, spec: JobSpec) -> None:
        """Record one admitted job before it enters the queue."""
        self._append({"event": "submit", "id": job_id, "job": spec.to_dict()})

    def finished(self, job_id: str, status: str) -> None:
        """Record one job reaching a terminal state."""
        self._append({"event": "done", "id": job_id, "status": status})

    def close(self) -> None:
        """Flush and close the journal handle."""
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


def replay_journal(path: str | Path) -> list[tuple[str, JobSpec]]:
    """Jobs submitted but never finished, in submit order.

    Reads the JSONL journal tolerantly: a torn final line (crash
    mid-write) is ignored, anything else malformed raises
    :class:`~repro.util.errors.ConfigError` since silently skipping a
    *valid-looking* but unparseable record could drop a tenant's job.
    """
    path = Path(path)
    if not path.exists():
        return []
    pending: dict[str, JobSpec] = {}
    lines = path.read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn final line from a crash mid-append
            raise ConfigError(f"{path}:{i + 1}: malformed journal line") from None
        event = record.get("event")
        job_id = record.get("id")
        if event == "submit":
            pending[str(job_id)] = parse_job(record.get("job") or {})
        elif event == "done":
            pending.pop(str(job_id), None)
        else:
            raise ConfigError(f"{path}:{i + 1}: unknown journal event {event!r}")
    return list(pending.items())
