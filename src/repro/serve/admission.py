"""Per-tenant quotas and admission control for the merge service.

Admission is driven by *deterministic* per-job cost estimates computed
from the job spec plus on-disk state (manifests and actual file sizes)
through the same :class:`~repro.io.storage.StorageCostModel` the
analytic planners use.  Because the estimate is a pure function of
(job, disk), ``llmtailor plan --serve`` reproduces the live server's
accounting exactly — the same pattern ``plan_step_traffic`` and
``plan_fault_cost`` establish for the trainer (see
:func:`repro.strategies.planner.plan_serve_cost`, which simply calls
:func:`estimate_job_cost`).

A tenant is bounded on two axes:

* ``max_inflight`` — jobs admitted but not yet finished (queued or
  running);
* ``max_queued_bytes`` — the summed byte footprint (reads + writes) of
  those jobs.

Exceeding either rejects the submit with a ``retry_after`` hint: the
estimated seconds to drain the tenant's outstanding work, so a
well-behaved client backs off proportionally to how far over budget it
is instead of hammering the socket.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Any

from ..io.layout import CheckpointPaths
from ..io.storage import LUSTRE_DEFAULT, StorageCostModel
from ..nn.config import ModelConfig
from ..nn.slots import model_slots
from ..util.errors import ConfigError
from ..util.jsonio import read_json
from .protocol import JobSpec

__all__ = [
    "Admission",
    "AdmissionController",
    "JobCost",
    "TenantQuota",
    "estimate_job_cost",
]

# Fixed bookkeeping charge for jobs that touch no checkpoint bytes
# (``plan``): admission still counts them against ``max_inflight`` but
# their byte footprint is nil.
_ANALYTIC_SECONDS = 0.001


@dataclass(frozen=True)
class JobCost:
    """Deterministic footprint of one job, as admission accounts it."""

    kind: str
    bytes_read: int = 0
    bytes_written: int = 0
    files: int = 0
    est_seconds: float = _ANALYTIC_SECONDS

    @property
    def total_bytes(self) -> int:
        """The byte footprint charged against ``max_queued_bytes``."""
        return self.bytes_read + self.bytes_written

    def describe(self) -> dict[str, Any]:
        """Flat dict form (admission responses, ``plan --serve`` output)."""
        out = dict(self.__dict__)
        out["total_bytes"] = self.total_bytes
        return out


@dataclass(frozen=True)
class TenantQuota:
    """Budget one tenant may occupy inside the service at any moment."""

    max_inflight: int = 4
    max_queued_bytes: int = 1 << 30

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ConfigError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.max_queued_bytes < 1:
            raise ConfigError(
                f"max_queued_bytes must be >= 1, got {self.max_queued_bytes}"
            )


def _checkpoint_shards(ckpt: CheckpointPaths) -> tuple[int, list[int]]:
    """A checkpoint's ``(world_size, per-rank shard file sizes)`` from disk."""
    manifest = ckpt.read_manifest()
    world_size = int(manifest.get("world_size", 0))
    if world_size < 1:
        raise ConfigError(f"{ckpt.dir}: manifest has no world_size")
    sizes = []
    for rank in range(world_size):
        path = ckpt.shard(rank)
        sizes.append(path.stat().st_size if path.exists() else 0)
    return world_size, sizes


def _weight_nbytes(ckpt: CheckpointPaths) -> int:
    return ckpt.weights.stat().st_size if ckpt.weights.exists() else 0


def _merge_cost(spec: JobSpec, storage: StorageCostModel) -> JobCost:
    from ..core.recipe import load_recipe, parse_recipe  # lazy: layering

    params = spec.params
    if "recipe" in params:
        recipe = load_recipe(params["recipe"])
    else:
        recipe = parse_recipe(dict(params["recipe_doc"]))
    base = CheckpointPaths(recipe.base_checkpoint)
    if not base.exists():
        raise ConfigError(f"merge base checkpoint not found: {base.dir}")
    world_size, base_sizes = _checkpoint_shards(base)
    config = ModelConfig.from_dict(read_json(base.config))
    slots = model_slots(config)

    cache_mode = str(params.get("cache_mode", recipe.options.cache_mode))
    per_source_sizes: dict[str, list[int]] = {}
    for source in recipe.distinct_sources():
        ckpt = CheckpointPaths(source)
        if ckpt.exists():
            _, sizes = _checkpoint_shards(ckpt)
        else:
            sizes = base_sizes
        per_source_sizes[str(source)] = sizes

    # Mirror the engine's load schedule: ``none`` loads the slot's
    # source once per slot per rank, ``per-checkpoint`` loads each
    # distinct source once per rank.
    bytes_read = 0
    loads = 0
    if cache_mode == "none":
        for slot in slots:
            sizes = per_source_sizes[str(recipe.source_for(slot))]
            bytes_read += sum(sizes)
            loads += world_size
    else:
        for sizes in per_source_sizes.values():
            bytes_read += sum(sizes)
            loads += world_size

    weight_read = sum(
        _weight_nbytes(CheckpointPaths(p)) for p in recipe.distinct_sources()
    )
    bytes_written = sum(base_sizes) + _weight_nbytes(base)
    seconds = (
        storage.read_time(bytes_read + weight_read, files=loads + 1, decompress=True)
        + storage.write_time(bytes_written, files=world_size + 1)
    )
    return JobCost(
        kind="merge",
        bytes_read=bytes_read + weight_read,
        bytes_written=bytes_written,
        files=loads + 1,
        est_seconds=seconds,
    )


def _reshard_cost(spec: JobSpec, storage: StorageCostModel) -> JobCost:
    ckpt = CheckpointPaths(spec.params["checkpoint"])
    if not ckpt.exists():
        raise ConfigError(f"reshard source checkpoint not found: {ckpt.dir}")
    N, sizes = _checkpoint_shards(ckpt)
    M = int(spec.params["target_world_size"])
    optim_bytes = sum(sizes)
    stream = bool(spec.params.get("stream", True))
    if stream:
        loads = N + M - math.gcd(N, M) + 1
        bytes_read = loads * (optim_bytes // max(1, N))
    else:
        loads = N
        bytes_read = optim_bytes
    weight = _weight_nbytes(ckpt)
    bytes_written = optim_bytes + weight
    seconds = storage.read_time(
        bytes_read + weight, files=loads + 1, decompress=True
    ) + storage.write_time(bytes_written, files=M + 1)
    return JobCost(
        kind="reshard",
        bytes_read=bytes_read + weight,
        bytes_written=bytes_written,
        files=loads + 1,
        est_seconds=seconds,
    )


def _diff_cost(spec: JobSpec, storage: StorageCostModel) -> JobCost:
    bytes_read = 0
    files = 0
    for key in ("checkpoint_a", "checkpoint_b"):
        ckpt = CheckpointPaths(spec.params[key])
        if not ckpt.exists():
            raise ConfigError(f"diff checkpoint not found: {ckpt.dir}")
        bytes_read += _weight_nbytes(ckpt)
        files += 1
        if spec.params.get("momentum"):
            _, sizes = _checkpoint_shards(ckpt)
            bytes_read += sum(sizes)
            files += len(sizes)
    seconds = storage.read_time(bytes_read, files=files, decompress=True)
    return JobCost(kind="diff", bytes_read=bytes_read, files=files, est_seconds=seconds)


def estimate_job_cost(
    spec: JobSpec, *, storage: StorageCostModel | None = None
) -> JobCost:
    """The deterministic cost estimate admission charges for one job.

    A pure function of the job spec and current disk state — the live
    server and ``llmtailor plan --serve`` both call it, which is what
    makes their accounting match byte for byte.
    """
    storage = storage or LUSTRE_DEFAULT
    if spec.kind == "merge":
        return _merge_cost(spec, storage)
    if spec.kind == "reshard":
        return _reshard_cost(spec, storage)
    if spec.kind == "diff":
        return _diff_cost(spec, storage)
    return JobCost(kind=spec.kind)  # plan: analytic, no checkpoint bytes


@dataclass
class _TenantState:
    inflight: int = 0
    queued_bytes: int = 0
    outstanding_seconds: float = 0.0
    admitted: int = 0
    rejected: int = 0


@dataclass
class Admission:
    """Outcome of one admission decision."""

    accepted: bool
    reason: str | None = None
    retry_after: float | None = None
    cost: JobCost | None = None


class AdmissionController:
    """Charges each tenant's budget on admit, releases it on finish."""

    def __init__(
        self,
        quota: TenantQuota | None = None,
        *,
        overrides: dict[str, TenantQuota] | None = None,
    ) -> None:
        self.default_quota = quota or TenantQuota()
        self.overrides = dict(overrides or {})
        self._tenants: dict[str, _TenantState] = {}
        self._lock = threading.Lock()

    def quota_for(self, tenant: str) -> TenantQuota:
        """The quota governing one tenant (override or default)."""
        return self.overrides.get(tenant, self.default_quota)

    def admit(self, spec: JobSpec, cost: JobCost) -> Admission:
        """Admit or reject one job against its tenant's budget."""
        quota = self.quota_for(spec.tenant)
        with self._lock:
            state = self._tenants.setdefault(spec.tenant, _TenantState())
            if state.inflight + 1 > quota.max_inflight:
                state.rejected += 1
                return Admission(
                    accepted=False,
                    reason=f"tenant {spec.tenant!r} at max_inflight "
                    f"({quota.max_inflight})",
                    retry_after=self._retry_after(state),
                    cost=cost,
                )
            if state.queued_bytes + cost.total_bytes > quota.max_queued_bytes:
                state.rejected += 1
                return Admission(
                    accepted=False,
                    reason=f"tenant {spec.tenant!r} over max_queued_bytes "
                    f"({state.queued_bytes + cost.total_bytes} > "
                    f"{quota.max_queued_bytes})",
                    retry_after=self._retry_after(state),
                    cost=cost,
                )
            state.inflight += 1
            state.queued_bytes += cost.total_bytes
            state.outstanding_seconds += cost.est_seconds
            state.admitted += 1
            return Admission(accepted=True, cost=cost)

    def force_admit(self, spec: JobSpec, cost: JobCost) -> None:
        """Charge a tenant's budget without checking limits.

        Journal replay uses this: a replayed job was already admitted
        once, so re-checking quotas could wedge a tenant that crashed
        at its inflight limit — but the budget must still be charged so
        the :meth:`finish` on completion releases exactly what was
        taken instead of draining budget newly admitted jobs hold.
        """
        with self._lock:
            state = self._tenants.setdefault(spec.tenant, _TenantState())
            state.inflight += 1
            state.queued_bytes += cost.total_bytes
            state.outstanding_seconds += cost.est_seconds
            state.admitted += 1

    @staticmethod
    def _retry_after(state: _TenantState) -> float:
        # The time to drain what the tenant already has in flight — a
        # proportional backoff hint, deterministic given queue state.
        return round(max(0.05, state.outstanding_seconds), 4)

    def finish(self, spec: JobSpec, cost: JobCost) -> None:
        """Release one admitted job's budget (terminal state reached)."""
        with self._lock:
            state = self._tenants.get(spec.tenant)
            if state is None:
                return
            state.inflight = max(0, state.inflight - 1)
            state.queued_bytes = max(0, state.queued_bytes - cost.total_bytes)
            state.outstanding_seconds = max(
                0.0, state.outstanding_seconds - cost.est_seconds
            )

    def stats(self) -> dict[str, Any]:
        """Per-tenant admission counters (for the ``stats`` op)."""
        with self._lock:
            return {
                tenant: {
                    "inflight": s.inflight,
                    "queued_bytes": s.queued_bytes,
                    "admitted": s.admitted,
                    "rejected": s.rejected,
                }
                for tenant, s in sorted(self._tenants.items())
            }
