"""Wire protocol of the merge service: newline-delimited JSON.

Each connection carries a sequence of request lines; the server answers
every request with exactly one response line.  Requests are JSON objects
with an ``op`` field::

    {"op": "ping"}
    {"op": "submit", "job": {"tenant": "a", "kind": "merge",
                             "priority": 1, "params": {...}}}
    {"op": "status", "id": "job-000001"}
    {"op": "wait",   "id": "job-000001"}      # long-poll until terminal
    {"op": "stats"}
    {"op": "shutdown", "drain": true}

Responses always carry ``ok`` (bool); successful submits add ``id``,
``status`` and the admission cost estimate, rejections add ``error``
and — for quota rejections — ``retry_after`` seconds.

Job kinds and their ``params`` (unknown keys are rejected so a typo'd
option fails at submit, not silently at run time):

* ``merge``   — ``recipe`` (YAML path) or ``recipe_doc`` (inline
  mapping), optional ``output``, ``workers``, ``stream`` (default true:
  the streaming engine is what the cross-request group cache plugs
  into), ``cache_mode``;
* ``reshard`` — ``checkpoint``, ``output``, ``target_world_size``,
  optional ``workers``, ``stream``;
* ``diff``    — ``checkpoint_a``, ``checkpoint_b``, optional
  ``momentum``;
* ``plan``    — ``model``, ``strategy``, optional ``interval``,
  ``steps``, ``world_size``.

Everything on the wire round-trips through :func:`encode_line` /
:func:`decode_line`; job files for the CLI client load through
:func:`load_job_file` (YAML via the repo's mini-YAML subset, or JSON).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..util.errors import ConfigError

__all__ = [
    "JOB_KINDS",
    "JobSpec",
    "decode_line",
    "encode_line",
    "load_job_file",
    "parse_job",
]

JOB_KINDS = ("merge", "reshard", "diff", "plan")

# Allowed params per kind; values are the required subset.
_PARAM_KEYS: dict[str, tuple[set, set]] = {
    "merge": (
        {"recipe", "recipe_doc", "output", "workers", "stream", "cache_mode"},
        set(),  # recipe/recipe_doc checked separately (exactly one)
    ),
    "reshard": (
        {"checkpoint", "output", "target_world_size", "workers", "stream"},
        {"checkpoint", "output", "target_world_size"},
    ),
    "diff": (
        {"checkpoint_a", "checkpoint_b", "momentum"},
        {"checkpoint_a", "checkpoint_b"},
    ),
    "plan": (
        {"model", "strategy", "interval", "steps", "world_size"},
        {"model", "strategy"},
    ),
}


@dataclass(frozen=True)
class JobSpec:
    """One validated job request (pure data, JSON-serializable)."""

    tenant: str
    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    priority: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Wire/journal form (round-trips :func:`parse_job`)."""
        return {
            "tenant": self.tenant,
            "kind": self.kind,
            "priority": self.priority,
            "params": dict(self.params),
        }


def parse_job(doc: Mapping[str, Any]) -> JobSpec:
    """Validate a job document into a :class:`JobSpec`.

    Raises :class:`~repro.util.errors.ConfigError` on any malformed
    field — the server turns that into a protocol-level rejection, so a
    bad job never reaches the queue.
    """
    if not isinstance(doc, Mapping):
        raise ConfigError(f"job must be a mapping, got {type(doc).__name__}")
    unknown = set(doc) - {"tenant", "kind", "priority", "params"}
    if unknown:
        raise ConfigError(f"unknown job keys: {sorted(unknown)}")
    tenant = doc.get("tenant")
    if not tenant or not isinstance(tenant, str):
        raise ConfigError("job missing required string field 'tenant'")
    kind = doc.get("kind")
    if kind not in JOB_KINDS:
        raise ConfigError(f"job kind must be one of {JOB_KINDS}, got {kind!r}")
    try:
        priority = int(doc.get("priority", 0))
    except (TypeError, ValueError):
        raise ConfigError(f"job priority must be an int, got {doc.get('priority')!r}")
    params = doc.get("params") or {}
    if not isinstance(params, Mapping):
        raise ConfigError("job 'params' must be a mapping")
    allowed, required = _PARAM_KEYS[kind]
    unknown = set(params) - allowed
    if unknown:
        raise ConfigError(f"{kind} job has unknown params: {sorted(unknown)}")
    missing = required - set(params)
    if missing:
        raise ConfigError(f"{kind} job missing params: {sorted(missing)}")
    if kind == "merge" and ("recipe" in params) == ("recipe_doc" in params):
        raise ConfigError(
            "merge job needs exactly one of 'recipe' (path) or 'recipe_doc' (inline)"
        )
    if kind == "reshard" and int(params["target_world_size"]) < 1:
        raise ConfigError("reshard target_world_size must be >= 1")
    return JobSpec(
        tenant=str(tenant), kind=str(kind), params=dict(params), priority=priority
    )


def encode_line(obj: Mapping[str, Any]) -> bytes:
    """One protocol message as a compact JSON line (trailing newline)."""
    return (json.dumps(obj, separators=(",", ":"), default=str) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one protocol line; raises ``ConfigError`` on malformed JSON."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"malformed protocol line: {exc}") from None
    if not isinstance(doc, dict):
        raise ConfigError(f"protocol line must be a JSON object, got {type(doc).__name__}")
    return doc


def load_job_file(path: str | Path) -> list[JobSpec]:
    """Load one or many jobs from a YAML/JSON job file.

    The document is either a single job mapping or ``{"jobs": [...]}``
    with an optional top-level ``tenant`` default applied to entries
    that do not name their own.
    """
    path = Path(path)
    if path.suffix == ".json":
        doc = json.loads(path.read_text(encoding="utf-8"))
    else:
        from ..util.miniyaml import load_file

        doc = load_file(path)
    if not isinstance(doc, Mapping):
        raise ConfigError(f"job file {path} must hold a mapping")
    if "jobs" not in doc:
        return [parse_job(doc)]
    default_tenant = doc.get("tenant")
    unknown = set(doc) - {"jobs", "tenant"}
    if unknown:
        raise ConfigError(f"unknown job file keys: {sorted(unknown)}")
    jobs: list[JobSpec] = []
    for i, entry in enumerate(doc["jobs"] or []):
        if not isinstance(entry, Mapping):
            raise ConfigError(f"jobs[{i}] must be a mapping")
        if default_tenant and "tenant" not in entry:
            entry = dict(entry, tenant=default_tenant)
        jobs.append(parse_job(entry))
    if not jobs:
        raise ConfigError(f"job file {path} contains no jobs")
    return jobs
