"""Training loop for simulated multi-rank ZeRO-3 post-training."""

from .callbacks import (
    Callback,
    ChaosCallback,
    CheckpointCallback,
    FailureInjector,
    LoggingCallback,
)
from .config import TrainConfig
from .state import TrainerState
from .trainer import ChaosSupervisor, Trainer, TrainResult, train_with_faults

__all__ = [
    "Callback",
    "ChaosCallback",
    "ChaosSupervisor",
    "CheckpointCallback",
    "FailureInjector",
    "LoggingCallback",
    "TrainConfig",
    "TrainResult",
    "Trainer",
    "TrainerState",
    "train_with_faults",
]
