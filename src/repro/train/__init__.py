"""Training loop for simulated multi-rank ZeRO-3 post-training."""

from .callbacks import Callback, CheckpointCallback, FailureInjector, LoggingCallback
from .config import TrainConfig
from .state import TrainerState
from .trainer import Trainer, TrainResult

__all__ = [
    "Callback",
    "CheckpointCallback",
    "FailureInjector",
    "LoggingCallback",
    "TrainConfig",
    "TrainResult",
    "Trainer",
    "TrainerState",
]
