"""Trainer callbacks: logging, checkpointing, failure and fault injection.

The trainer invokes each callback after every optimizer step.  Built-in
callbacks implement the experiment machinery; users can add their own
(see ``examples/custom_strategy.py``).
"""

from __future__ import annotations

import typing

from ..strategies.base import CheckpointStrategy
from ..util.errors import RankFailure, RankJoin, SimulatedFailure
from ..util.logging import get_logger

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dist.faults import FaultPlan, FaultTimeline
    from .trainer import Trainer

__all__ = [
    "Callback",
    "ChaosCallback",
    "CheckpointCallback",
    "FailureInjector",
    "LoggingCallback",
]

log = get_logger("train")


class Callback:
    """Base callback; all hooks are optional."""

    def on_train_start(self, trainer: "Trainer") -> None:
        """Called once before the first step of a training leg."""

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        """Called after every optimizer step (checkpointing runs here)."""

    def on_train_end(self, trainer: "Trainer") -> None:
        """Called once after the loop exits (including on failure)."""


class LoggingCallback(Callback):
    def __init__(self, every: int = 10) -> None:
        self.every = max(1, every)

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        if step % self.every == 0 or step == trainer.config.total_steps:
            lr = trainer.scheduler.get_last_lr()[0]
            # Cumulative ring-model bytes the engine's collectives moved
            # so far — per-step traffic is the delta between log entries.
            comm_bytes = trainer.engine.comm.stats.total_bytes()
            trainer.state.log(step, loss=loss, lr=lr, comm_bytes=comm_bytes)
            log.info("step %d loss %.4f lr %.2e comm %.0fB", step, loss, lr, comm_bytes)


class CheckpointCallback(Callback):
    """Drives a :class:`CheckpointStrategy` and writes partial checkpoints."""

    def __init__(self, strategy: CheckpointStrategy) -> None:
        self.strategy = strategy

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        slots = self.strategy.plan_step(step, model=trainer.model)
        if slots is None:
            return
        trainer.write_checkpoint(step, slots=slots, strategy_name=self.strategy.name)
        self.strategy.log.save(trainer.decision_log_path)
        log.info("checkpoint at step %d: %d slots (%s)", step, len(slots), self.strategy.name)
        if trainer.config.max_checkpoints is not None:
            from ..io.retention import prune_checkpoints

            pruned = prune_checkpoints(trainer.storage.root, trainer.config.max_checkpoints)
            if pruned:
                log.info("retention pruned checkpoints %s", pruned)


class FailureInjector(Callback):
    """Simulate a crash after the given step completes (paper T3).

    The checkpoint callback runs first (trainer preserves registration
    order), so the decisions for the failing step land on disk — exactly
    what a real crash after a completed save looks like.
    """

    def __init__(self, failure_step: int) -> None:
        self.failure_step = failure_step
        self.fired = False

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        if not self.fired and step >= self.failure_step:
            self.fired = True
            log.warning("injecting failure at step %d", step)
            raise SimulatedFailure(step)


class ChaosCallback(Callback):
    """Applies a :class:`~repro.dist.faults.FaultPlan` to a live leg.

    Runs *after* the checkpoint callback (the trainer preserves
    registration order), so the step's checkpoint — if any — is on disk
    before bitrot corrupts it or a rank failure interrupts the leg:

    * **bitrot**: each pending event corrupts the first checkpoint
      written at or after its step (rank's shard, one group), keeping a
      pristine ``.replica`` copy for recovery to re-read from;
    * **straggler**: window activations are recorded in the timeline
      (the time penalty itself is charged by the trainer's step);
    * **rank_failure**: raises :class:`~repro.util.errors.RankFailure`,
      which the supervisor turns into an elastic world shrink;
    * **rank_join**: raises :class:`~repro.util.errors.RankJoin`, which
      the supervisor turns into an elastic world *grow* (N→N+1).
      Preemptions arrive here pre-expanded into their failure and
      restore halves by :meth:`~repro.dist.faults.FaultPlan.world_events`.

    The ``pending_*`` lists are shared, mutable state: the supervisor
    passes the same lists into every leg so an event consumed before a
    failure is not re-applied when the replayed steps pass its schedule
    slot again.  A pending event whose step falls inside a replayed
    segment fires at the first step of the new leg — the same clamp
    (``max(event step, leg start)``) the cost planner replays.
    """

    def __init__(
        self,
        plan: "FaultPlan",
        timeline: "FaultTimeline",
        *,
        pending_world: list | None = None,
        pending_bitrot: list | None = None,
        topology=None,
    ) -> None:
        self.plan = plan
        self.timeline = timeline
        self.pending_world = (
            list(plan.world_events(topology))
            if pending_world is None else pending_world
        )
        self.pending_bitrot = (
            list(plan.bitrot_events) if pending_bitrot is None else pending_bitrot
        )

    def on_train_start(self, trainer: "Trainer") -> None:
        # Record whole-run link degradations once, not once per leg.
        for ev in self.plan.degraded_links:
            if any(
                e["kind"] == "degraded_link"
                and e.get("src") == ev.src
                and e.get("dst") == ev.dst
                for e in self.timeline.events
            ):
                continue
            self.timeline.record(
                ev.step, "degraded_link", src=ev.src, dst=ev.dst,
                bandwidth_scale=ev.bandwidth_scale, duration=ev.duration,
            )

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        world_size = trainer.config.world_size
        for ev in self.plan.stragglers:
            if ev.step == step and ev.rank is not None and ev.rank < world_size:
                # A straggler window whose start step falls inside a
                # replayed segment would otherwise be re-recorded by the
                # post-recovery leg (the time penalty *is* re-charged —
                # the replayed steps really run slow again — but the
                # schedule entry is one event).
                if any(
                    e["kind"] == "straggler"
                    and e["step"] == step
                    and e.get("rank") == ev.rank
                    and e.get("slowdown") == ev.slowdown
                    for e in self.timeline.events
                ):
                    continue
                self.timeline.record(
                    step, "straggler", rank=ev.rank, slowdown=ev.slowdown,
                    duration=ev.duration,
                )

        if (
            trainer.state.checkpoints_written
            and trainer.state.checkpoints_written[-1] == step
        ):
            from ..dist.faults import inject_bitrot
            from ..io.layout import checkpoint_dir
            from ..util.errors import CheckpointError

            for ev in [e for e in self.pending_bitrot if e.step <= step]:
                if ev.rank is None or ev.rank >= world_size:
                    continue  # the target rank no longer exists
                if ev.group is None or ev.group >= len(trainer.engine.group_meta):
                    # The model has no such group: the event can never
                    # fire — drop it loudly instead of crashing the run.
                    self.pending_bitrot.remove(ev)
                    self.timeline.record(
                        step, "bitrot_skipped", rank=ev.rank, group=ev.group,
                        reason="group does not exist",
                    )
                    continue
                try:
                    shard = inject_bitrot(
                        checkpoint_dir(trainer.storage.root, step), ev.rank, ev.group
                    )
                except CheckpointError:
                    # Partial strategies write slot-filtered shards; a
                    # checkpoint not carrying the group leaves the event
                    # pending for a later checkpoint that does.
                    continue
                self.pending_bitrot.remove(ev)
                self.timeline.record(
                    step, "bitrot", rank=ev.rank, group=ev.group,
                    checkpoint=step, shard=shard.name,
                )
                log.warning(
                    "bitrot injected: checkpoint-%d rank %d group %d",
                    step, ev.rank, ev.group,
                )

        for ev in list(self.pending_world):
            if ev.step <= step:
                self.pending_world.remove(ev)
                if ev.kind == "rank_join":
                    self.timeline.record(step, "rank_join", world_size=world_size)
                    log.warning("rank join at step %d (world %d→%d)",
                                step, world_size, world_size + 1)
                    raise RankJoin(step)
                detail: dict = {"rank": ev.rank, "world_size": world_size}
                if ev.restore_after is not None:
                    # The death half of a preemption; the restore join
                    # is a separate pending event.
                    detail["restore_after"] = ev.restore_after
                self.timeline.record(step, "rank_failure", **detail)
                log.warning("rank %d failed at step %d", ev.rank, step)
                raise RankFailure(step, ev.rank)
