"""Trainer callbacks: logging, checkpointing, failure injection.

The trainer invokes each callback after every optimizer step.  Built-in
callbacks implement the experiment machinery; users can add their own
(see ``examples/custom_strategy.py``).
"""

from __future__ import annotations

import typing

from ..strategies.base import CheckpointStrategy
from ..util.errors import SimulatedFailure
from ..util.logging import get_logger

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .trainer import Trainer

__all__ = ["Callback", "LoggingCallback", "CheckpointCallback", "FailureInjector"]

log = get_logger("train")


class Callback:
    """Base callback; all hooks are optional."""

    def on_train_start(self, trainer: "Trainer") -> None: ...

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None: ...

    def on_train_end(self, trainer: "Trainer") -> None: ...


class LoggingCallback(Callback):
    def __init__(self, every: int = 10) -> None:
        self.every = max(1, every)

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        if step % self.every == 0 or step == trainer.config.total_steps:
            lr = trainer.scheduler.get_last_lr()[0]
            # Cumulative ring-model bytes the engine's collectives moved
            # so far — per-step traffic is the delta between log entries.
            comm_bytes = trainer.engine.comm.stats.total_bytes()
            trainer.state.log(step, loss=loss, lr=lr, comm_bytes=comm_bytes)
            log.info("step %d loss %.4f lr %.2e comm %.0fB", step, loss, lr, comm_bytes)


class CheckpointCallback(Callback):
    """Drives a :class:`CheckpointStrategy` and writes partial checkpoints."""

    def __init__(self, strategy: CheckpointStrategy) -> None:
        self.strategy = strategy

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        slots = self.strategy.plan_step(step, model=trainer.model)
        if slots is None:
            return
        trainer.write_checkpoint(step, slots=slots, strategy_name=self.strategy.name)
        self.strategy.log.save(trainer.decision_log_path)
        log.info("checkpoint at step %d: %d slots (%s)", step, len(slots), self.strategy.name)
        if trainer.config.max_checkpoints is not None:
            from ..io.retention import prune_checkpoints

            pruned = prune_checkpoints(trainer.storage.root, trainer.config.max_checkpoints)
            if pruned:
                log.info("retention pruned checkpoints %s", pruned)


class FailureInjector(Callback):
    """Simulate a crash after the given step completes (paper T3).

    The checkpoint callback runs first (trainer preserves registration
    order), so the decisions for the failing step land on disk — exactly
    what a real crash after a completed save looks like.
    """

    def __init__(self, failure_step: int) -> None:
        self.failure_step = failure_step
        self.fired = False

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        if not self.fired and step >= self.failure_step:
            self.fired = True
            log.warning("injecting failure at step %d", step)
            raise SimulatedFailure(step)
