"""Training-run configuration.

One dataclass describes an entire experiment: model, task (CPT or SFT),
parallelism, optimization, checkpoint strategy, and failure injection.
Serialized into every checkpoint as ``training_args.json``.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Any

from ..util.errors import ConfigError

__all__ = ["TrainConfig"]

_TASKS = ("cpt", "sft")
_COMM_BACKENDS = ("auto", "sim", "mp")


@dataclass
class TrainConfig:
    # What to train.
    model: str = "tiny-untied"
    task: str = "cpt"
    output_dir: str = "runs/default"
    seed: int = 0

    # Parallelism (simulated data-parallel world).
    world_size: int = 2
    micro_batch_size: int = 2
    grad_accum_steps: int = 2
    # Rank execution backend: "sim" runs every rank sequentially in this
    # process, "mp" runs one forked worker process per rank over shared
    # memory (repro.dist.mpcomm; bitwise-identical, multi-core wall
    # clock).  "auto" defers to $REPRO_COMM_BACKEND, defaulting to "sim"
    # — which is how CI's mp leg flips the whole suite without touching
    # configs.
    comm_backend: str = "auto"
    # Cluster topology (repro.dist.topology.Topology.to_dict() form, or
    # None for the flat ring).  With a topology the engine runs the
    # hierarchical communicator — bitwise-identical results, per-link-
    # class byte/seconds accounting — and world_size may be anything up
    # to the cluster's rank capacity (elastic runs shrink below it).
    topology: dict[str, Any] | None = None

    # Sequences / data.
    seq_len: int = 48
    kb_seed: int = 1234
    n_corpus_docs: int = 120
    n_sft_pairs: int = 300

    # Optimization.
    lr: float = 3e-4
    weight_decay: float = 0.01
    betas: tuple[float, float] = (0.9, 0.999)
    eps: float = 1e-8
    grad_clip: float = 1.0
    scheduler: str = "warmup_cosine"
    warmup_steps: int = 10
    total_steps: int = 100
    # Record the backward pass once and replay it on later steps
    # (repro.autograd.compile).  Bitwise-identical to the interpreted
    # backward; opt-in like the engine's fused=True.
    compile: bool = False

    # Checkpointing.
    checkpoint_strategy: str = "full"
    checkpoint_interval: int = 20
    strategy_kwargs: dict[str, Any] = field(default_factory=dict)
    # Coverage-aware retention: keep at most this many checkpoints, never
    # deleting the last surviving copy of a slot.  None = keep everything.
    max_checkpoints: int | None = None

    # Failure injection: raise SimulatedFailure after this step completes
    # (checkpoint decisions for the step are made first).  None disables.
    failure_step: int | None = None

    # Simulated timing: seconds of compute charged per optimizer step.
    sim_step_seconds: float = 1.0

    # Logging.
    log_every: int = 10

    def __post_init__(self) -> None:
        if self.task not in _TASKS:
            raise ConfigError(f"task must be one of {_TASKS}, got {self.task!r}")
        if self.comm_backend not in _COMM_BACKENDS:
            raise ConfigError(
                f"comm_backend must be one of {_COMM_BACKENDS}, "
                f"got {self.comm_backend!r}"
            )
        for name in ("world_size", "micro_batch_size", "grad_accum_steps", "total_steps"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.checkpoint_interval < 1:
            raise ConfigError(f"checkpoint_interval must be >= 1")
        if self.failure_step is not None and not (0 < self.failure_step <= self.total_steps):
            raise ConfigError(
                f"failure_step {self.failure_step} outside (0, {self.total_steps}]"
            )
        if self.topology is not None:
            topo = self.resolved_topology  # validates the mapping itself
            if self.world_size > topo.world_size:
                raise ConfigError(
                    f"world_size {self.world_size} exceeds topology "
                    f"{topo.shape} capacity {topo.world_size}"
                )

    @property
    def resolved_comm_backend(self) -> str:
        """The backend to actually run: ``auto`` reads ``$REPRO_COMM_BACKEND``.

        Resolution happens at trainer-build time, not config-build time,
        so a config serialized into ``training_args.json`` as ``auto``
        stays portable — the backend is an execution detail (the two are
        bitwise-identical), never part of a checkpoint's semantics.
        """
        if self.comm_backend != "auto":
            return self.comm_backend
        env = os.environ.get("REPRO_COMM_BACKEND", "sim") or "sim"
        if env not in ("sim", "mp"):
            raise ConfigError(
                f"REPRO_COMM_BACKEND must be 'sim' or 'mp', got {env!r}"
            )
        return env

    @property
    def resolved_topology(self):
        """The :class:`~repro.dist.topology.Topology`, or ``None`` when flat.

        The config stores the plain-dict form (JSON-serializable into
        ``training_args.json``); this materializes it.  Raises
        :class:`~repro.util.errors.DistError` via ``Topology.from_dict``
        on a malformed mapping.
        """
        if self.topology is None:
            return None
        from ..dist.topology import Topology

        return Topology.from_dict(self.topology)

    @property
    def global_batch_size(self) -> int:
        """Sequences per optimizer step across all ranks and accumulations."""
        return self.world_size * self.micro_batch_size * self.grad_accum_steps

    @property
    def tokens_per_step(self) -> int:
        """Tokens consumed per optimizer step (global batch × sequence length)."""
        return self.global_batch_size * self.seq_len

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (what ``training_args.json`` stores)."""
        out = dataclasses.asdict(self)
        out["betas"] = list(self.betas)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TrainConfig":
        """Rebuild a config from :meth:`to_dict` output (unknown keys rejected)."""
        known = {f.name for f in dataclasses.fields(cls)}
        extra = set(data) - known
        if extra:
            raise ConfigError(f"unknown training config keys: {sorted(extra)}")
        data = dict(data)
        if "betas" in data:
            data["betas"] = tuple(data["betas"])
        return cls(**data)

    def replace(self, **kwargs) -> "TrainConfig":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)
