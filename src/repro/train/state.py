"""Trainer bookkeeping state, serialized as ``trainer_state.json``.

Carries what the paper's §4.4 calls "training state history, the current
training step, and the current learning rate" — the metadata a merged
checkpoint must copy to preserve training continuity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["TrainerState"]


@dataclass
class TrainerState:
    global_step: int = 0
    log_history: list[dict[str, Any]] = field(default_factory=list)
    learning_rate: float = 0.0
    checkpoints_written: list[int] = field(default_factory=list)

    def log(self, step: int, **metrics: float) -> None:
        """Append one metrics entry (floats) for a global step."""
        entry: dict[str, Any] = {"step": int(step)}
        entry.update({k: float(v) for k, v in metrics.items()})
        self.log_history.append(entry)

    def recent_loss(self, window: int = 5) -> float | None:
        """Mean loss over the last ``window`` logged entries, or ``None``."""
        losses = [e["loss"] for e in self.log_history if "loss" in e]
        if not losses:
            return None
        tail = losses[-window:]
        return sum(tail) / len(tail)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (what ``trainer_state.json`` stores)."""
        return {
            "global_step": self.global_step,
            "log_history": self.log_history,
            "learning_rate": self.learning_rate,
            "checkpoints_written": self.checkpoints_written,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TrainerState":
        """Rebuild state from :meth:`to_dict` output (tolerant of missing keys)."""
        return cls(
            global_step=int(data.get("global_step", 0)),
            log_history=list(data.get("log_history", [])),
            learning_rate=float(data.get("learning_rate", 0.0)),
            checkpoints_written=[int(s) for s in data.get("checkpoints_written", [])],
        )
