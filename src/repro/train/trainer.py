"""The training loop: simulated multi-rank ZeRO-3 post-training runs.

Responsibilities:

* build the full stack (KB → corpus → tokenizer → model → tailored
  param groups → ZeRO engine → scheduler → strategy callbacks);
* run deterministic steps — the batch at step ``t`` is a pure function
  of ``(seed, t, rank, accum_index)``, so resumed runs replay the exact
  data order of uninterrupted ones;
* write full/partial checkpoints per the strategy, with simulated-clock
  charging for compute and I/O;
* resume from any *complete* checkpoint (including LLMTailor merges),
  and auto-recover from partial trails via :meth:`auto_recover`; resume
  is *elastic* — a run configured with ``world_size=M`` loads a
  checkpoint written at any world size N (the reader reshards the
  optimizer payloads N→M via :mod:`repro.dist.reshard`), and the
  world-size-invariant training math keeps the loss curve unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.tailor import LLMTailor
from ..data.datasets import Batch, CPTDataset, SFTDataset
from ..data.facts import MedicalKB
from ..data.synthetic import medqa_like_pairs, pubmed_like_corpus
from ..data.tokenizer import WordTokenizer
from ..core.groups import tailored_param_groups
from ..dist.zero import ZeroStage3Engine
from ..io.layout import CheckpointPaths, read_latest
from ..io.reader import load_checkpoint
from ..io.storage import Storage
from ..io.writer import save_checkpoint
from ..nn.config import ModelConfig, get_config
from ..nn.model import CausalLM, build_model
from ..optim.lr_scheduler import build_scheduler
from ..optim.optimizer import clip_grad_norm_
from ..strategies.base import build_strategy
from ..util.errors import SimulatedFailure, TrainingError
from ..util.logging import get_logger
from .callbacks import Callback, CheckpointCallback, FailureInjector, LoggingCallback
from .config import TrainConfig
from .state import TrainerState

__all__ = ["Trainer", "TrainResult"]

log = get_logger("train.trainer")


@dataclass
class TrainResult:
    """Outcome of a (possibly interrupted) training run."""

    final_step: int
    final_train_loss: float
    final_eval_loss: float
    interrupted_at: int | None = None
    checkpoints: list[int] = field(default_factory=list)
    clock: dict[str, float] = field(default_factory=dict)
    checkpoint_time_fraction: float = 0.0
    total_checkpoint_bytes: float = 0.0
    # Cumulative ring-model collective traffic from the engine's SimComm
    # (bytes/calls per op), so the sharding tax is part of the run record.
    comm_traffic: dict[str, dict] = field(default_factory=dict)

    def summary(self) -> str:
        status = (
            f"failed at step {self.interrupted_at}"
            if self.interrupted_at is not None
            else f"completed at step {self.final_step}"
        )
        return (
            f"training {status}: train loss {self.final_train_loss:.4f}, "
            f"eval loss {self.final_eval_loss:.4f}, "
            f"ckpt time fraction {self.checkpoint_time_fraction * 100:.2f}%"
        )


class Trainer:
    def __init__(self, config: TrainConfig) -> None:
        self.config = config
        self.storage = Storage(config.output_dir)

        # Data substrate (shared KB drives training *and* evaluation).
        self.kb = MedicalKB.build(config.kb_seed)
        model_cfg_base = get_config(config.model)
        if config.task == "cpt":
            texts = pubmed_like_corpus(self.kb, n_docs=config.n_corpus_docs, seed=config.seed)
        else:
            pairs = medqa_like_pairs(self.kb, n_pairs=config.n_sft_pairs, seed=config.seed)
            texts = [p.question + " " + p.answer for p in pairs]
        self.tokenizer = WordTokenizer.train(texts, vocab_size=model_cfg_base.vocab_size)

        # Model vocabulary matches the tokenizer exactly.
        self.model_config: ModelConfig = model_cfg_base.replace(
            vocab_size=self.tokenizer.vocab_size,
            max_position_embeddings=max(model_cfg_base.max_position_embeddings, config.seq_len),
        )
        self.model: CausalLM = build_model(self.model_config, seed=config.seed)

        if config.task == "cpt":
            self.dataset: CPTDataset | SFTDataset = CPTDataset(
                texts, self.tokenizer, seq_len=config.seq_len, seed=config.seed
            )
        else:
            self.dataset = SFTDataset(
                pairs, self.tokenizer, seq_len=config.seq_len, seed=config.seed
            )

        # Regroup the optimizer BEFORE training (paper §4.1), then shard.
        groups = tailored_param_groups(self.model, self.model_config, config.weight_decay)
        self.engine = ZeroStage3Engine(
            self.model,
            self.model_config,
            groups,
            world_size=config.world_size,
            lr=config.lr,
            betas=config.betas,
            eps=config.eps,
        )
        self.scheduler = build_scheduler(
            config.scheduler,
            self.engine.reference_optimizer,
            warmup_steps=config.warmup_steps,
            total_steps=config.total_steps,
        )

        self.strategy = build_strategy(
            config.checkpoint_strategy,
            self.model_config,
            config.checkpoint_interval,
            **config.strategy_kwargs,
        )
        self.state = TrainerState()
        self.callbacks: list[Callback] = [
            LoggingCallback(config.log_every),
            CheckpointCallback(self.strategy),
        ]
        if config.failure_step is not None:
            self.callbacks.append(FailureInjector(config.failure_step))

    # -- paths --------------------------------------------------------------------

    @property
    def decision_log_path(self) -> Path:
        return Path(self.config.output_dir) / "ckpt_decisions.json"

    # -- one training step -----------------------------------------------------------

    def _micro_batch(self, step: int, rank: int, accum: int) -> Batch:
        tag = f"train/rank{rank}/acc{accum}"
        return self.dataset.batch_at_step(step, self.config.micro_batch_size, tag=tag)

    def train_step(self, step: int) -> float:
        """Forward/backward over every rank's micro-batches, then update."""
        cfg = self.config
        self.engine.zero_grad()
        total_loss = 0.0
        n_micro = cfg.world_size * cfg.grad_accum_steps
        for rank in range(cfg.world_size):
            for accum in range(cfg.grad_accum_steps):
                batch = self._micro_batch(step, rank, accum)
                loss = self.model.loss(batch.input_ids, batch.labels)
                loss.backward()
                total_loss += loss.item()
        # Average accumulated gradients over all micro-batches.
        inv = 1.0 / n_micro
        for p in self.model.parameters():
            if p.grad is not None:
                p.grad *= inv
        if cfg.grad_clip > 0:
            clip_grad_norm_(list(self.model.parameters()), cfg.grad_clip)
        self.engine.step()
        self.scheduler.step()
        self.storage.charge_compute(cfg.sim_step_seconds, "compute")
        return total_loss / n_micro

    # -- checkpointing --------------------------------------------------------------------

    def write_checkpoint(self, step: int, *, slots: list[str] | None, strategy_name: str) -> CheckpointPaths:
        self.state.learning_rate = self.scheduler.get_last_lr()[0]
        self.state.checkpoints_written.append(step)
        return save_checkpoint(
            self.storage,
            step=step,
            model=self.model,
            config=self.model_config,
            engine=self.engine,
            trainer_state=self.state.to_dict(),
            training_args=self.config.to_dict(),
            scheduler_state=self.scheduler.state_dict(),
            rng_state={"seed": self.config.seed, "sampling": "stateless-step-indexed"},
            slots=slots,
            strategy=strategy_name,
        )

    # -- the loop ----------------------------------------------------------------------------

    def train(self, until_step: int | None = None) -> TrainResult:
        """Run from the current state to ``until_step`` (default: config).

        Returns a :class:`TrainResult`; an injected failure is reported
        via ``interrupted_at`` rather than propagating.
        """
        target = min(until_step or self.config.total_steps, self.config.total_steps)
        for cb in self.callbacks:
            cb.on_train_start(self)
        interrupted: int | None = None
        step = self.state.global_step
        try:
            while step < target:
                step = self.state.global_step + 1
                loss = self.train_step(step)
                self.state.global_step = step
                for cb in self.callbacks:
                    cb.on_step_end(self, step, loss)
        except SimulatedFailure as failure:
            interrupted = failure.step
        for cb in self.callbacks:
            cb.on_train_end(self)

        final_train = self.state.recent_loss() or float("nan")
        final_eval = self.eval_loss()
        clock = self.storage.clock.snapshot()
        comm = self.engine.comm.stats
        return TrainResult(
            final_step=self.state.global_step,
            final_train_loss=final_train,
            final_eval_loss=final_eval,
            interrupted_at=interrupted,
            checkpoints=list(self.state.checkpoints_written),
            clock=clock,
            checkpoint_time_fraction=self.storage.clock.fraction("checkpoint_write"),
            total_checkpoint_bytes=self.storage.stats.category_bytes("checkpoint_write"),
            comm_traffic={
                "bytes_by_op": dict(comm.bytes_by_op),
                "calls_by_op": dict(comm.calls_by_op),
            },
        )

    # -- evaluation -------------------------------------------------------------------------------

    def eval_loss(self, max_batches: int = 6) -> float:
        """Mean cross entropy over deterministic evaluation batches."""
        from ..autograd.tensor import no_grad

        losses = []
        with no_grad():
            for batch in self.dataset.eval_batches(self.config.micro_batch_size, max_batches):
                loss = self.model.loss(batch.input_ids, batch.labels)
                losses.append(loss.item())
        return float(np.mean(losses)) if losses else float("nan")

    # -- resume / recovery -----------------------------------------------------------------------------

    def resume_from(self, checkpoint: str | Path | CheckpointPaths) -> int:
        """Load a complete checkpoint and position the trainer after it.

        The checkpoint's world size need not match this run's: a
        mismatch is resharded in memory during the load (elastic
        resume), so shrinking or growing the simulated fleet between
        runs needs no separate conversion step.
        """
        paths = checkpoint if isinstance(checkpoint, CheckpointPaths) else CheckpointPaths(checkpoint)
        loaded = load_checkpoint(
            paths,
            model=self.model,
            config=self.model_config,
            engine=self.engine,
            storage=self.storage,
        )
        self.state = TrainerState.from_dict(loaded.trainer_state)
        self.state.global_step = loaded.step
        if loaded.scheduler_state:
            self.scheduler.load_state_dict(loaded.scheduler_state)
        log.info("resumed from %s at step %d", paths.dir, loaded.step)
        return loaded.step

    def resume_latest(self) -> int:
        paths = read_latest(self.storage.root)
        if paths is None:
            raise TrainingError(f"no 'latest' checkpoint under {self.storage.root}")
        return self.resume_from(paths)

    def auto_recover(self, failure_step: int, *, workers: int = 1) -> CheckpointPaths:
        """Merge the partial-checkpoint trail and resume (paper T2+T3).

        Builds the recipe from the manifests on disk, merges into
        ``<output_dir>/merged-<step>``, loads it, and returns its paths.
        """
        tailor = LLMTailor.from_checkpoints(
            self.storage.root, failure_step=failure_step, workers=workers
        )
        base_step = CheckpointPaths(tailor.recipe.base_checkpoint).step
        output = Path(self.storage.root) / f"merged-{base_step}"
        result = tailor.merge(output=output)
        log.info("auto-recovery merge: %s", result.summary().replace("\n", " | "))
        self.resume_from(result.output)
        return result.output
