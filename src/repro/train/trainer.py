"""The training loop: simulated multi-rank ZeRO-3 post-training runs.

Responsibilities:

* build the full stack (KB → corpus → tokenizer → model → tailored
  param groups → ZeRO engine → scheduler → strategy callbacks);
* run deterministic steps — the batch at step ``t`` is a pure function
  of ``(seed, t, rank, accum_index)``, so resumed runs replay the exact
  data order of uninterrupted ones;
* write full/partial checkpoints per the strategy, with simulated-clock
  charging for compute and I/O;
* resume from any *complete* checkpoint (including LLMTailor merges),
  and auto-recover from partial trails via :meth:`auto_recover`; resume
  is *elastic* — a run configured with ``world_size=M`` loads a
  checkpoint written at any world size N (the reader reshards the
  optimizer payloads N→M via :mod:`repro.dist.reshard`), and the
  world-size-invariant training math keeps the loss curve unchanged;
* survive a :class:`~repro.dist.faults.FaultPlan`:
  :class:`ChaosSupervisor` runs training legs under injected faults —
  on a rank failure it shrinks the world N→N-1, resumes elastically
  from the last complete checkpoint (or auto-merges the partial trail),
  repairs bitrot the per-group CRCs catch by re-reading replicas, and
  records everything in a :class:`~repro.dist.faults.FaultTimeline`
  attached to the final :class:`TrainResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..autograd.compile import BackwardTape
from ..core.tailor import LLMTailor
from ..data.datasets import Batch, CPTDataset, SFTDataset
from ..data.facts import MedicalKB
from ..data.synthetic import medqa_like_pairs, pubmed_like_corpus
from ..data.tokenizer import WordTokenizer
from ..core.groups import tailored_param_groups
from ..dist.faults import (
    ChaosComm,
    FaultPlan,
    FaultTimeline,
    GoodputReport,
    repair_from_replicas,
)
from ..dist.zero import ZeroStage3Engine, _EngineRankProgram
from ..io.layout import CheckpointPaths, checkpoint_dir, list_checkpoint_steps, read_latest
from ..io.reader import load_checkpoint
from ..io.storage import Storage
from ..io.writer import save_checkpoint
from ..nn.config import ModelConfig, get_config
from ..nn.model import CausalLM, build_model
from ..optim.lr_scheduler import build_scheduler
from ..optim.optimizer import clip_grad_norm_
from ..strategies.base import build_strategy
from ..util.errors import (
    CheckpointError,
    MergeError,
    RankJoin,
    SimulatedFailure,
    TrainingError,
)
from ..util.logging import get_logger
from .callbacks import (
    Callback,
    ChaosCallback,
    CheckpointCallback,
    FailureInjector,
    LoggingCallback,
)
from .config import TrainConfig
from .state import TrainerState

__all__ = ["ChaosSupervisor", "Trainer", "TrainResult", "train_with_faults"]

log = get_logger("train.trainer")


@dataclass
class TrainResult:
    """Outcome of a (possibly interrupted) training run."""

    final_step: int
    final_train_loss: float
    final_eval_loss: float
    interrupted_at: int | None = None
    checkpoints: list[int] = field(default_factory=list)
    clock: dict[str, float] = field(default_factory=dict)
    checkpoint_time_fraction: float = 0.0
    total_checkpoint_bytes: float = 0.0
    # Cumulative ring-model collective traffic from the engine's SimComm
    # (bytes/calls per op), so the sharding tax is part of the run record.
    comm_traffic: dict[str, dict] = field(default_factory=dict)
    # The rank whose scheduled death interrupted the leg (fault plans
    # only); the supervisor shrinks the world when this is set.
    failed_rank: int | None = None
    # A scheduled capacity arrival interrupted the leg (fault plans
    # only); the supervisor grows the world when this is set.
    rank_joined: bool = False
    # Flight recorder of injected faults and recoveries (fault plans only).
    fault_timeline: FaultTimeline | None = None
    # Goodput accounting across all legs (chaos supervisor runs only).
    goodput: GoodputReport | None = None

    def summary(self) -> str:
        """One-line recap: status, losses, checkpoint-time fraction."""
        status = (
            f"failed at step {self.interrupted_at}"
            if self.interrupted_at is not None
            else f"completed at step {self.final_step}"
        )
        return (
            f"training {status}: train loss {self.final_train_loss:.4f}, "
            f"eval loss {self.final_eval_loss:.4f}, "
            f"ckpt time fraction {self.checkpoint_time_fraction * 100:.2f}%"
        )


class Trainer:
    """Deterministic simulated ZeRO-3 training runs (see module docs).

    Built from one :class:`~repro.train.config.TrainConfig`; an optional
    ``fault_plan`` attaches the chaos engine to this leg — the engine's
    collectives are wrapped in a :class:`~repro.dist.faults.ChaosComm`
    charging penalized time into the simulated clock, and a
    :class:`~repro.train.callbacks.ChaosCallback` applies scheduled
    bitrot and rank failures.  Multi-leg recovery (shrink + resume) is
    :class:`ChaosSupervisor`'s job, not the trainer's.
    """

    def __init__(
        self,
        config: TrainConfig,
        *,
        fault_plan: FaultPlan | None = None,
        fault_timeline: FaultTimeline | None = None,
        _chaos_pending: tuple[list, list] | None = None,
    ) -> None:
        self.config = config
        self.storage = Storage(config.output_dir)

        # Data substrate (shared KB drives training *and* evaluation).
        self.kb = MedicalKB.build(config.kb_seed)
        model_cfg_base = get_config(config.model)
        if config.task == "cpt":
            texts = pubmed_like_corpus(self.kb, n_docs=config.n_corpus_docs, seed=config.seed)
        else:
            pairs = medqa_like_pairs(self.kb, n_pairs=config.n_sft_pairs, seed=config.seed)
            texts = [p.question + " " + p.answer for p in pairs]
        self.tokenizer = WordTokenizer.train(texts, vocab_size=model_cfg_base.vocab_size)

        # Model vocabulary matches the tokenizer exactly.
        self.model_config: ModelConfig = model_cfg_base.replace(
            vocab_size=self.tokenizer.vocab_size,
            max_position_embeddings=max(model_cfg_base.max_position_embeddings, config.seq_len),
        )
        self.model: CausalLM = build_model(self.model_config, seed=config.seed)

        if config.task == "cpt":
            self.dataset: CPTDataset | SFTDataset = CPTDataset(
                texts, self.tokenizer, seq_len=config.seq_len, seed=config.seed
            )
        else:
            self.dataset = SFTDataset(
                pairs, self.tokenizer, seq_len=config.seq_len, seed=config.seed
            )

        # Regroup the optimizer BEFORE training (paper §4.1), then shard.
        groups = tailored_param_groups(self.model, self.model_config, config.weight_decay)
        self.engine = ZeroStage3Engine(
            self.model,
            self.model_config,
            groups,
            world_size=config.world_size,
            lr=config.lr,
            betas=config.betas,
            eps=config.eps,
            comm_backend=config.resolved_comm_backend,
            topology=config.resolved_topology,
        )
        # mp-backend lazy state: the gradient slot arena and the worker
        # pool are built by _mp_setup() on the first training step, so a
        # trainer that only loads or evaluates never forks a pool.
        self._mp_params: list[tuple] | None = None
        self._mp_by_group: list[list[tuple[int, int, int]]] | None = None
        self._mp_slots: list[np.ndarray] | None = None
        self._mp_presence: np.ndarray | None = None
        self.scheduler = build_scheduler(
            config.scheduler,
            self.engine.reference_optimizer,
            warmup_steps=config.warmup_steps,
            total_steps=config.total_steps,
        )

        # Opt-in backward-tape compiler: record the first micro-batch's
        # backward, replay it for every later one (bitwise-identical).
        # Gradients are donated straight into the engine's reduce-scatter
        # staging buffers, so the tape's terminal writes are the
        # collective's inputs.
        self.tape: BackwardTape | None = None
        if config.compile and self.engine.comm_backend != "mp":
            # With the mp backend the parent never runs a backward pass;
            # each worker owns a private (non-donating) tape instead.
            self.tape = BackwardTape(donate=self.engine.grad_donation_views())

        self.strategy = build_strategy(
            config.checkpoint_strategy,
            self.model_config,
            config.checkpoint_interval,
            **config.strategy_kwargs,
        )
        self.state = TrainerState()
        self.callbacks: list[Callback] = [
            LoggingCallback(config.log_every),
            CheckpointCallback(self.strategy),
        ]
        if config.failure_step is not None:
            self.callbacks.append(FailureInjector(config.failure_step))

        # Chaos engine attachment (fault plans): wrap the collectives in
        # the time-charging communicator and register the fault callback
        # last, so the step's checkpoint is on disk before bitrot or a
        # rank failure touches it.
        self.fault_plan = fault_plan
        self.fault_timeline = fault_timeline
        self._chaos: ChaosCallback | None = None
        if fault_plan is not None:
            if _chaos_pending is None:
                # Standalone use: the supervisor validates once up front,
                # legs after a shrink would fail re-validation (events may
                # reference ranks the smaller world no longer has).
                fault_plan.validate(
                    config.world_size, config.total_steps,
                    topology=config.resolved_topology,
                )
            self.fault_timeline = fault_timeline or FaultTimeline()
            # ChaosComm adopts the engine communicator's topology (if
            # hierarchical), pricing each link class at its bandwidth.
            self.engine.comm = ChaosComm(
                self.engine.comm, fault_plan, clock=self.storage.clock
            )
            pending_world, pending_bitrot = _chaos_pending or (None, None)
            self._chaos = ChaosCallback(
                fault_plan,
                self.fault_timeline,
                pending_world=pending_world,
                pending_bitrot=pending_bitrot,
                topology=config.resolved_topology,
            )
            self.callbacks.append(self._chaos)

    # -- paths --------------------------------------------------------------------

    @property
    def decision_log_path(self) -> Path:
        """Where the strategy's checkpoint decisions are persisted."""
        return Path(self.config.output_dir) / "ckpt_decisions.json"

    # -- one training step -----------------------------------------------------------

    def _micro_batch(self, step: int, rank: int, accum: int) -> Batch:
        tag = f"train/rank{rank}/acc{accum}"
        return self.dataset.batch_at_step(step, self.config.micro_batch_size, tag=tag)

    def train_step(self, step: int) -> float:
        """Forward/backward over every rank's micro-batches, then update."""
        cfg = self.config
        if self.fault_plan is not None:
            # Position the fault schedule before the step's collectives
            # so window-scoped penalties charge exactly their steps.
            self.engine.comm.set_step(step)
        self.engine.zero_grad()
        n_micro = cfg.world_size * cfg.grad_accum_steps
        if self.engine.comm_backend == "mp":
            total_loss = self._mp_forward_backward(step)
        else:
            total_loss = 0.0
            for rank in range(cfg.world_size):
                for accum in range(cfg.grad_accum_steps):
                    batch = self._micro_batch(step, rank, accum)
                    if self.tape is not None:
                        with self.tape.capture():
                            loss = self.model.loss(batch.input_ids, batch.labels)
                        self.tape.backward(loss)
                    else:
                        loss = self.model.loss(batch.input_ids, batch.labels)
                        loss.backward()
                    total_loss += loss.item()
        # Average accumulated gradients over all micro-batches.
        inv = 1.0 / n_micro
        for p in self.model.parameters():
            if p.grad is not None:
                p.grad *= inv
        if cfg.grad_clip > 0:
            clip_grad_norm_(list(self.model.parameters()), cfg.grad_clip)
        self.engine.step()
        self.scheduler.step()
        self.storage.charge_compute(cfg.sim_step_seconds, "compute")
        if self.fault_plan is not None:
            # A synchronous step is paced by its slowest rank: charge the
            # straggler tax on top of the nominal step time.
            slowdown = self.fault_plan.compute_slowdown(step, cfg.world_size)
            if slowdown > 1.0:
                self.storage.charge_compute(
                    (slowdown - 1.0) * cfg.sim_step_seconds, "fault_straggler"
                )
        return total_loss / n_micro

    # -- mp backend: parallel forward/backward -------------------------------------------

    def _mp_setup(self) -> None:
        """Carve the gradient slot arena and fork the rank workers.

        The arena holds, per group, one fp32 slot row per *global
        micro-batch* (``world_size * grad_accum_steps`` rows) plus one
        uint8 presence plane marking which (micro-batch, parameter)
        cells carry a gradient.  It must be fully carved before the
        fork — workers see the arrays only through inherited mappings.
        """
        eng = self.engine
        cfg = self.config
        n_slots = cfg.world_size * cfg.grad_accum_steps
        params: list[tuple] = []
        by_group: list[list[tuple[int, int, int]]] = []
        for g, group_params in enumerate(eng._params):
            rows: list[tuple[int, int, int]] = []
            off = 0
            for p in group_params:
                n = int(p.data.size)
                rows.append((len(params), off, n))
                params.append((p, g, off, n))
                off += n
            by_group.append(rows)
        from ..dist.mpcomm import SharedArena

        total = SharedArena.aligned_nbytes((n_slots, len(params)), np.uint8)
        for meta in eng.group_meta:
            total += SharedArena.aligned_nbytes((n_slots, meta.numel))
        arena = eng._mp.create_arena(max(total, 64), tag="trainer")
        self._mp_params = params
        self._mp_by_group = by_group
        self._mp_slots = [arena.alloc((n_slots, meta.numel)) for meta in eng.group_meta]
        self._mp_presence = arena.alloc((n_slots, len(params)), np.uint8)
        trainer = self

        def program_factory(rank, barrier):
            return _TrainerRankProgram(trainer, rank, barrier)

        eng.start_workers(program_factory)

    def _mp_forward_backward(self, step: int) -> float:
        """Run the step's micro-batches on the rank workers.

        The bitwise contract with the sequential loop: every gradient is
        the fold of the *same contribution stream in the same order* —
        workers publish each micro-batch's per-parameter contributions,
        barrier, then each worker folds its own ``master_bounds`` chunk
        of the staging buffers left-to-right over the global micro order
        ``rank * grad_accum_steps + accum`` (the sequential loop order).
        Chunking is elementwise, so the chunked fold is bit-for-bit the
        sequential accumulation.

        Parameters whose gradient arrives in several pieces *within one
        backward* (a tied embedding: lm-head matmul + embedding scatter)
        cannot be folded from per-batch sums — float addition is not
        associative — so workers ship those contributions individually
        over the reply pipe and the parent replays the exact interleaved
        stream here.  Losses are summed in the sequential visit order.
        """
        eng = self.engine
        mp = eng._mp
        if self._mp_params is None:
            self._mp_setup()
        elif not mp.started:
            mp.start()  # restart after close(): same program, same mapped pages
        accum_steps = self.config.grad_accum_steps
        replies = mp.dispatch("fwd_bwd", step, accum_steps)
        presence = self._mp_presence
        merged: dict[int, dict[int, list[np.ndarray]]] = {}
        for rank, (_, extras) in enumerate(replies):
            for idx, by_accum in extras.items():
                rows = merged.setdefault(idx, {})
                for accum, contribs in by_accum.items():
                    rows[rank * accum_steps + accum] = contribs
        for idx, rows in merged.items():
            p, g, off, n = self._mp_params[idx]
            if presence[:, idx].any():
                raise TrainingError(
                    f"parameter {idx} produced both shared-slot and piped "
                    "gradient contributions; micro-batch graphs disagree"
                )
            dst: np.ndarray | None = None
            for m in sorted(rows):
                for contrib in rows[m]:
                    if dst is None:
                        dst = eng._grad_bufs[g][off : off + n].reshape(p.data.shape)
                        np.copyto(dst, contrib)
                    else:
                        dst += contrib
        donated = eng.grad_donation_views()
        present = presence.any(axis=0)
        for idx, (p, g, off, n) in enumerate(self._mp_params):
            p.grad = donated[id(p)] if (present[idx] or idx in merged) else None
        total = 0.0
        for losses, _ in replies:
            for value in losses:
                total += value
        return total

    def close(self) -> None:
        """Release backend resources (mp workers and shared segments).

        No-op for the sequential backend.  Idempotent, and training may
        continue afterwards: the next step re-forks the pool over the
        still-mapped pages.
        """
        self.engine.close()

    # -- checkpointing --------------------------------------------------------------------

    def write_checkpoint(self, step: int, *, slots: list[str] | None, strategy_name: str) -> CheckpointPaths:
        """Write a (possibly partial) checkpoint for ``step`` and record it."""
        self.state.learning_rate = self.scheduler.get_last_lr()[0]
        self.state.checkpoints_written.append(step)
        return save_checkpoint(
            self.storage,
            step=step,
            model=self.model,
            config=self.model_config,
            engine=self.engine,
            trainer_state=self.state.to_dict(),
            training_args=self.config.to_dict(),
            scheduler_state=self.scheduler.state_dict(),
            rng_state={"seed": self.config.seed, "sampling": "stateless-step-indexed"},
            slots=slots,
            strategy=strategy_name,
        )

    # -- the loop ----------------------------------------------------------------------------

    def train(self, until_step: int | None = None) -> TrainResult:
        """Run from the current state to ``until_step`` (default: config).

        Returns a :class:`TrainResult`; an injected failure is reported
        via ``interrupted_at`` rather than propagating.
        """
        target = min(until_step or self.config.total_steps, self.config.total_steps)
        for cb in self.callbacks:
            cb.on_train_start(self)
        interrupted: int | None = None
        failed_rank: int | None = None
        rank_joined = False
        step = self.state.global_step
        try:
            while step < target:
                step = self.state.global_step + 1
                loss = self.train_step(step)
                self.state.global_step = step
                for cb in self.callbacks:
                    cb.on_step_end(self, step, loss)
        except SimulatedFailure as failure:
            interrupted = failure.step
            failed_rank = getattr(failure, "rank", None)
            rank_joined = isinstance(failure, RankJoin)
            if failed_rank is not None:
                # Map the simulated death onto the backend: with the mp
                # backend the rank's worker process is SIGTERMed; the
                # supervisor's elastic shrink builds a fresh pool at N-1.
                self.engine.terminate_rank(failed_rank)
        for cb in self.callbacks:
            cb.on_train_end(self)

        final_train = self.state.recent_loss() or float("nan")
        final_eval = self.eval_loss()
        clock = self.storage.clock.snapshot()
        comm = self.engine.comm.stats
        return TrainResult(
            final_step=self.state.global_step,
            final_train_loss=final_train,
            final_eval_loss=final_eval,
            interrupted_at=interrupted,
            checkpoints=list(self.state.checkpoints_written),
            clock=clock,
            checkpoint_time_fraction=self.storage.clock.fraction("checkpoint_write"),
            total_checkpoint_bytes=self.storage.stats.category_bytes("checkpoint_write"),
            comm_traffic={
                "bytes_by_op": dict(comm.bytes_by_op),
                "calls_by_op": dict(comm.calls_by_op),
            },
            failed_rank=failed_rank,
            rank_joined=rank_joined,
            fault_timeline=self.fault_timeline,
        )

    # -- evaluation -------------------------------------------------------------------------------

    def eval_loss(self, max_batches: int = 6) -> float:
        """Mean cross entropy over deterministic evaluation batches."""
        from ..autograd.tensor import no_grad

        losses = []
        with no_grad():
            for batch in self.dataset.eval_batches(self.config.micro_batch_size, max_batches):
                loss = self.model.loss(batch.input_ids, batch.labels)
                losses.append(loss.item())
        return float(np.mean(losses)) if losses else float("nan")

    # -- resume / recovery -----------------------------------------------------------------------------

    def resume_from(self, checkpoint: str | Path | CheckpointPaths) -> int:
        """Load a complete checkpoint and position the trainer after it.

        The checkpoint's world size need not match this run's: a
        mismatch is resharded in memory during the load (elastic
        resume), so shrinking or growing the simulated fleet between
        runs needs no separate conversion step.
        """
        paths = checkpoint if isinstance(checkpoint, CheckpointPaths) else CheckpointPaths(checkpoint)
        loaded = load_checkpoint(
            paths,
            model=self.model,
            config=self.model_config,
            engine=self.engine,
            storage=self.storage,
        )
        self.state = TrainerState.from_dict(loaded.trainer_state)
        self.state.global_step = loaded.step
        if loaded.scheduler_state:
            self.scheduler.load_state_dict(loaded.scheduler_state)
        log.info("resumed from %s at step %d", paths.dir, loaded.step)
        return loaded.step

    def resume_latest(self) -> int:
        """Resume from the run's ``latest`` pointer; returns the step."""
        paths = read_latest(self.storage.root)
        if paths is None:
            raise TrainingError(f"no 'latest' checkpoint under {self.storage.root}")
        return self.resume_from(paths)

    def auto_recover(self, failure_step: int, *, workers: int = 1) -> CheckpointPaths:
        """Merge the partial-checkpoint trail and resume (paper T2+T3).

        Builds the recipe from the manifests on disk, merges into
        ``<output_dir>/merged-<step>``, loads it, and returns its paths.
        """
        tailor = LLMTailor.from_checkpoints(
            self.storage.root, failure_step=failure_step, workers=workers
        )
        base_step = CheckpointPaths(tailor.recipe.base_checkpoint).step
        output = Path(self.storage.root) / f"merged-{base_step}"
        result = tailor.merge(output=output)
        log.info("auto-recovery merge: %s", result.summary().replace("\n", " | "))
        self.resume_from(result.output)
        return result.output


# ---------------------------------------------------------------------------
# mp backend: worker-side program
# ---------------------------------------------------------------------------

# Active gradient tap (worker processes only): maps id(param) -> list of
# stashed contributions for the backward pass currently running.  None
# outside a tapped backward, so the patched accumulation sites cost one
# None-check in any other context.
_tap_store: dict[int, list[np.ndarray]] | None = None
_tap_installed = False


def _install_grad_tap() -> None:
    """Patch the two leaf-gradient accumulation sites with a stash-and-reset
    wrapper so each contribution is captured *individually*.

    Both the interpreted :meth:`Tensor._accum` and the compiled tape's
    ``_LeafSink.put`` accumulate a later contribution with
    ``p.grad += g``; the wrapper moves the existing ``p.grad`` aside and
    lets the original first-contribution path run instead, so after the
    backward the stash plus ``p.grad`` hold every contribution exactly
    as the original code normalized it (dtype cast, unbroadcast, copy —
    bit-for-bit).  The fold then replays ``copyto`` + ``+=`` over the
    full stream, reproducing the sequential interleave.  Installed only
    inside forked mp workers; the parent process never sees the patch.
    """
    global _tap_installed
    if _tap_installed:
        return
    _tap_installed = True

    from ..autograd import compile as _compile_mod
    from ..autograd.tensor import Tensor as _Tensor

    orig_accum = _Tensor._accum

    def tapped_accum(self, g, owned=False):
        store = _tap_store
        if store is not None:
            stash = store.get(id(self))
            if stash is not None and self.grad is not None:
                stash.append(self.grad)
                self.grad = None
        orig_accum(self, g, owned)

    _Tensor._accum = tapped_accum

    orig_put = _compile_mod._LeafSink.put

    def tapped_put(self, g, owned=False, scratch=False):
        store = _tap_store
        if store is not None:
            param = self.param
            stash = store.get(id(param))
            if stash is not None and param.grad is not None:
                stash.append(param.grad)
                param.grad = None
        orig_put(self, g, owned, scratch)

    _compile_mod._LeafSink.put = tapped_put


class _TrainerRankProgram(_EngineRankProgram):
    """Worker-side command set for one rank of an mp-backed trainer.

    Extends the engine program (``optim_step``/``sync_state``) with the
    forward/backward command.  Instantiated inside the forked worker, so
    it closes over the fully built trainer the child inherited — model,
    dataset, donation views and the shared slot arena are the parent's
    own objects through fork inheritance.
    """

    def __init__(self, trainer: Trainer, rank: int, barrier) -> None:
        super().__init__(trainer.engine, rank, barrier)
        self.trainer = trainer
        # Private replay tape per worker; gradients flow through the slot
        # buffers (not donation), so the tape never aliases shared state.
        self.tape: BackwardTape | None = (
            BackwardTape() if trainer.config.compile else None
        )
        _install_grad_tap()
        self._store: dict[int, list[np.ndarray]] = {
            id(p): [] for (p, _, _, _) in trainer._mp_params
        }

    def fwd_bwd(self, step: int, accum_steps: int):
        """Run this rank's micro-batches; publish, barrier, fold.

        Single-contribution gradients go into the shared slot rows
        (``m = rank * accum_steps + accum``) with a presence flag — the
        flag, not a zero-filled buffer, is what keeps an absent gradient
        from flipping signed zeros in the fold.  Multi-contribution
        gradients are returned through the pipe for the parent to fold
        (see :meth:`Trainer._mp_forward_backward`).  After the barrier,
        every worker folds its own ``master_bounds`` chunk of the
        staging buffers in global micro order.
        """
        global _tap_store
        t = self.trainer
        eng, rank = self.engine, self.rank
        model = t.model
        slots, presence = t._mp_slots, t._mp_presence
        row0 = rank * accum_steps
        presence[row0 : row0 + accum_steps, :] = 0
        losses: list[float] = []
        extras: dict[int, dict[int, list[np.ndarray]]] = {}
        for accum in range(accum_steps):
            for p in model.parameters():
                p.grad = None
            for stash in self._store.values():
                stash.clear()
            batch = t._micro_batch(step, rank, accum)
            _tap_store = self._store
            try:
                if self.tape is not None:
                    with self.tape.capture():
                        loss = model.loss(batch.input_ids, batch.labels)
                    self.tape.backward(loss)
                else:
                    loss = model.loss(batch.input_ids, batch.labels)
                    loss.backward()
            finally:
                _tap_store = None
            losses.append(loss.item())
            m = row0 + accum
            for idx, (p, g, off, n) in enumerate(t._mp_params):
                stash = self._store[id(p)]
                if stash:
                    # Multi-contribution parameter (tied embedding): ship
                    # every piece; the parent replays the exact stream.
                    extras.setdefault(idx, {})[accum] = [*stash, p.grad]
                elif p.grad is not None:
                    dst = slots[g][m, off : off + n].reshape(p.grad.shape)
                    np.copyto(dst, p.grad)
                    presence[m, idx] = 1
        self.barrier.wait(timeout=eng._mp.timeout)
        self._fold(accum_steps)
        return losses, extras

    def _fold(self, accum_steps: int) -> None:
        """Fold this rank's chunk of the slot gradients into the staging
        buffers, left-to-right over the global micro order — the same
        order and the same ufuncs as the sequential accumulation, so the
        result is bitwise-identical; chunking across ranks only splits
        elementwise work."""
        t, eng, rank = self.trainer, self.engine, self.rank
        n_slots = eng.world_size * accum_steps
        presence = t._mp_presence
        for g, meta in enumerate(eng.group_meta):
            lo, hi = meta.partition.master_bounds(rank)
            if hi <= lo:
                continue
            buf = eng._grad_bufs[g]
            slot = t._mp_slots[g]
            for idx, off, n in t._mp_by_group[g]:
                a, b = max(off, lo), min(off + n, hi)
                if a >= b:
                    continue
                dst: np.ndarray | None = None
                for m in range(n_slots):
                    if not presence[m, idx]:
                        continue
                    if dst is None:
                        dst = buf[a:b]
                        np.copyto(dst, slot[m, a:b])
                    else:
                        dst += slot[m, a:b]


# ---------------------------------------------------------------------------
# Chaos supervisor: multi-leg runs under a fault plan
# ---------------------------------------------------------------------------

class ChaosSupervisor:
    """Runs a training experiment to completion under a fault plan.

    Each *leg* is one :class:`Trainer` at a fixed world size.  When a
    scheduled rank failure interrupts a leg, the supervisor:

    1. shrinks the world to the N-1 survivors,
    2. resumes from the newest *complete* checkpoint at or before the
       failure — elastically: the checkpoint's world size need not
       match, the reader reshards the optimizer payloads in memory — or,
       when the trail is partial (parity/filtered/magnitude strategies),
       auto-merges it into a complete checkpoint first,
    3. on a per-group CRC failure during that load (bitrot), restores
       the corrupted shards from their ``.replica`` copies and retries
       the resume — detection is loud, recovery re-reads, and silent
       corruption is structurally impossible,
    4. replays the lost steps and continues.

    A scheduled ``rank_join`` (or the restore half of a ``preemption``)
    runs the same machinery in the *grow* direction: the current world
    is synced to a complete checkpoint at the join step (reusing the
    step's own checkpoint when the leg just wrote one), the world grows
    N→N+1, and the new leg resumes through the elastic reshard path —
    no steps are lost, the newcomer enters as the highest rank, and mp
    worker pools are rebuilt lazily at the grown size.

    Because training math is world-size invariant and the data order is
    a pure function of ``(seed, step, rank)``, a chaos run that fails at
    step *k* and shrinks — or grows at a join — produces
    **bitwise-identical** final weights to an uninterrupted run at the
    final world size resumed from the same checkpoint — the invariant
    ``tests/test_faults.py`` pins for trajectories like 2→3→2.

    The aggregated :class:`TrainResult` sums simulated clock and
    collective traffic across legs, carries the
    :class:`~repro.dist.faults.FaultTimeline`, and reports goodput —
    useful steps per simulated stepping second — via
    :class:`~repro.dist.faults.GoodputReport`.

    With ``resume=True`` the supervisor continues a previous chaos run
    (soak continuation): it restarts from the newest complete
    checkpoint under ``config.output_dir``, treats every scheduled
    world event at or before that step as already applied (the world
    size the surviving schedule implies is cross-checked against the
    checkpoint's manifest), and runs the remaining legs.
    """

    def __init__(
        self,
        config: TrainConfig,
        plan: FaultPlan,
        *,
        merge_workers: int = 1,
        resume: bool = False,
    ) -> None:
        plan.validate(
            config.world_size, config.total_steps,
            topology=config.resolved_topology,
        )
        self.config = config
        self.plan = plan
        self.merge_workers = merge_workers
        self.resume = resume
        self.timeline = FaultTimeline()
        self._pending_world = list(plan.world_events(config.resolved_topology))
        self._pending_bitrot = list(plan.bitrot_events)
        self._start_step = 0
        self.trainer: Trainer | None = None

    def _build(self, config: TrainConfig) -> Trainer:
        return Trainer(
            config,
            fault_plan=self.plan,
            fault_timeline=self.timeline,
            _chaos_pending=(self._pending_world, self._pending_bitrot),
        )

    @staticmethod
    def _clock_total(trainer: Trainer) -> float:
        return trainer.storage.clock.snapshot().get("__total__", 0.0)

    def run(self, until_step: int | None = None) -> TrainResult:
        """Execute every leg and return the aggregated result."""
        cfg = self.config
        if self.resume:
            cfg, start_step = self._continuation_config(cfg)
            self._start_step = start_step
            trainer = self._build(cfg)
            source = checkpoint_dir(trainer.storage.root, start_step)
            trainer.resume_from(source)
            self.timeline.record(
                start_step, "soak_resume", world_size=cfg.world_size,
                source=source.dir.name,
            )
        else:
            trainer = self._build(cfg)
        results = [trainer.train(until_step)]
        while results[-1].failed_rank is not None or results[-1].rank_joined:
            event_step = results[-1].interrupted_at
            if results[-1].rank_joined:
                grown = cfg.world_size + 1
                # Sync the current world to a complete checkpoint before
                # the leg's resources go away; its clock/byte deltas are
                # folded back into the leg's already-snapshotted result.
                source = self._join_checkpoint(trainer, event_step)
                results[-1].clock = trainer.storage.clock.snapshot()
                results[-1].total_checkpoint_bytes = (
                    trainer.storage.stats.category_bytes("checkpoint_write")
                )
                results[-1].checkpoints = list(trainer.state.checkpoints_written)
                trainer.close()
                log.warning(
                    "supervisor: rank joined at step %d; growing world %d -> %d",
                    event_step, cfg.world_size, grown,
                )
                cfg = cfg.replace(world_size=grown)
                trainer = self._build(cfg)
                clock0 = self._clock_total(trainer)
                resume_step = trainer.resume_from(source)
                self.timeline.recovery_seconds += self._clock_total(trainer) - clock0
                source_world = int(source.read_manifest()["world_size"])
                if source_world != cfg.world_size:
                    self.timeline.reshard_loads += source_world
                    self.timeline.reshard_bytes += sum(
                        source.shard(r).stat().st_size for r in range(source_world)
                    )
                self.timeline.recoveries += 1
                self.timeline.grows += 1
                self.timeline.record(
                    event_step, "recovery", world_size=grown,
                    resumed_from=resume_step, lost_steps=0,
                    source=source.dir.name, grow=True,
                )
            else:
                # The dead leg's backend resources go away with the leg:
                # any surviving mp workers are stopped and its shared
                # segments unlinked before the shrunk replacement carves
                # its own.
                trainer.close()
                survivors = cfg.world_size - 1
                if survivors < 1:  # pragma: no cover - plan.validate() forbids it
                    raise TrainingError(
                        f"rank failure at step {event_step} left no survivors"
                    )
                log.warning(
                    "supervisor: rank %d died at step %d; shrinking world %d -> %d",
                    results[-1].failed_rank, event_step, cfg.world_size, survivors,
                )
                cfg = cfg.replace(world_size=survivors)
                trainer = self._build(cfg)
                clock0 = self._clock_total(trainer)
                resume_step, resume_source = self._resume(trainer, event_step)
                self.timeline.recovery_seconds += self._clock_total(trainer) - clock0
                lost = event_step - resume_step
                self.timeline.recoveries += 1
                self.timeline.lost_steps += lost
                self.timeline.record(
                    event_step, "recovery", world_size=survivors,
                    resumed_from=resume_step, lost_steps=lost, source=resume_source,
                )
            results.append(trainer.train(until_step))
        # Final leg: stop workers and unlink segments eagerly (the
        # /dev/shm leak check polices this).  Parent-side state stays
        # readable, and further training would transparently re-fork.
        trainer.close()
        self.trainer = trainer
        return self._aggregate(results)

    def _continuation_config(self, cfg: TrainConfig) -> tuple[TrainConfig, int]:
        """Resolve a soak continuation: adopt the newest complete
        checkpoint's world size and drop already-applied schedule events.

        Events (world-size changes and bitrot) scheduled at or before
        the checkpoint step are treated as applied by the previous run;
        the world size the surviving schedule implies is cross-checked
        against the checkpoint manifest so a mismatched plan fails
        loudly instead of resuming into an impossible trajectory.
        """
        root = Path(cfg.output_dir)
        complete = [
            s for s in list_checkpoint_steps(root)
            if checkpoint_dir(root, s).read_manifest().get("complete", False)
        ]
        if not complete:
            raise TrainingError(
                f"soak continuation: no complete checkpoint under {root} "
                f"to resume the chaos run from"
            )
        step = max(complete)
        manifest_ws = int(checkpoint_dir(root, step).read_manifest()["world_size"])
        implied_ws = cfg.world_size
        for ev in list(self._pending_world):
            if ev.step <= step:
                self._pending_world.remove(ev)
                implied_ws += 1 if ev.kind == "rank_join" else -1
        self._pending_bitrot[:] = [e for e in self._pending_bitrot if e.step > step]
        if manifest_ws != implied_ws:
            raise TrainingError(
                f"soak continuation mismatch: the fault schedule implies "
                f"world_size {implied_ws} at step {step}, but checkpoint-{step} "
                f"was written at world_size {manifest_ws} (was the original run "
                f"started with a different --world-size?)"
            )
        return cfg.replace(world_size=manifest_ws), step

    def _join_checkpoint(self, trainer: Trainer, step: int) -> CheckpointPaths:
        """The complete checkpoint the grown world will resume from.

        Reuses the join step's own checkpoint when the interrupted leg
        just wrote a complete one; otherwise writes a full sync
        checkpoint now (the "old" world is still live — under mp its
        state is readable through the shared pages).  Sync-write time
        is charged as recovery I/O: it exists only because the fleet is
        growing.
        """
        root = trainer.storage.root
        if step in list_checkpoint_steps(root):
            paths = checkpoint_dir(root, step)
            if paths.read_manifest().get("complete", False):
                return paths
        clock0 = self._clock_total(trainer)
        paths = trainer.write_checkpoint(step, slots=None, strategy_name="join_sync")
        self.timeline.recovery_seconds += self._clock_total(trainer) - clock0
        self.timeline.record(
            step, "join_sync", world_size=trainer.config.world_size,
            checkpoint=paths.dir.name,
        )
        return paths

    def _resume(self, trainer: Trainer, failed_step: int) -> tuple[int, str | None]:
        """Position a fresh (shrunk) trainer after the last safe point.

        Returns ``(step, source_dir_name)``: the newest complete
        checkpoint at or before the failure, the auto-merged output of a
        partial trail, or ``(0, None)`` when nothing was saved yet
        (deterministic re-initialization *is* the resume point then).
        Bitrot surfaced by the per-group CRCs is repaired from replicas
        and the load retried once.
        """
        root = trainer.storage.root
        steps = [s for s in list_checkpoint_steps(root) if s <= failed_step]
        if not steps:
            return 0, None
        complete = [
            s for s in steps
            if checkpoint_dir(root, s).read_manifest().get("complete", False)
        ]
        # Pick the *freshest* recoverable point: a complete checkpoint
        # resumes without a merge, but an auto-merged partial trail may
        # anchor at a newer step (its base is the newest contributing
        # checkpoint) and replay fewer steps.  Ties go to the complete
        # checkpoint — it is the cheaper, merge-free path.
        merge_base: int | None = None
        try:
            from ..core.autorecipe import latest_slot_coverage

            coverage, _ = latest_slot_coverage(root, failure_step=failed_step)
            # A trail that straddles a grow mixes shard world sizes (a
            # join-sync checkpoint at N next to partials at N+1) and
            # cannot be merged; only a uniform trail is a candidate.
            trail_ws = {
                int(checkpoint_dir(root, s).read_manifest()["world_size"])
                for s in set(coverage.values())
            }
            if len(trail_ws) == 1:
                merge_base = max(coverage.values())
        except MergeError:
            pass  # incomplete coverage: the trail alone cannot recover
        use_complete = bool(complete) and (
            merge_base is None or max(complete) >= merge_base
        )
        for attempt in (0, 1):
            try:
                if use_complete:
                    source = checkpoint_dir(root, max(complete))
                    step = trainer.resume_from(source)
                elif merge_base is not None:
                    source = CheckpointPaths(
                        trainer.auto_recover(failed_step, workers=self.merge_workers)
                    )
                    step = trainer.state.global_step
                else:
                    return 0, None  # nothing recoverable: restart from init
                break
            except (CheckpointError, MergeError) as err:
                repaired = repair_from_replicas(root)
                if not repaired or attempt:
                    raise
                self.timeline.bitrot_detected += 1
                self.timeline.bitrot_repaired += len(repaired)
                self.timeline.record(
                    failed_step, "bitrot_recovery",
                    repaired=[p.name for p in repaired], error=str(err)[:160],
                )
                log.warning(
                    "supervisor: CRC failure during resume (%s); restored %d "
                    "replica(s), retrying", err, len(repaired),
                )
        source_world = int(source.read_manifest()["world_size"])
        if source_world != trainer.config.world_size:
            self.timeline.reshard_loads += source_world
            self.timeline.reshard_bytes += sum(
                source.shard(r).stat().st_size for r in range(source_world)
            )
        return step, source.dir.name

    def _aggregate(self, results: list[TrainResult]) -> TrainResult:
        """Fold per-leg results into one run record (clocks/traffic sum)."""
        final = results[-1]
        clock: dict[str, float] = {}
        bytes_by_op: dict[str, float] = {}
        calls_by_op: dict[str, int] = {}
        checkpoints: set[int] = set()
        total_ckpt_bytes = 0.0
        for r in results:
            for k, v in r.clock.items():
                clock[k] = clock.get(k, 0.0) + v
            for k, v in r.comm_traffic.get("bytes_by_op", {}).items():
                bytes_by_op[k] = bytes_by_op.get(k, 0.0) + v
            for k, v in r.comm_traffic.get("calls_by_op", {}).items():
                calls_by_op[k] = calls_by_op.get(k, 0) + v
            checkpoints.update(r.checkpoints)
            total_ckpt_bytes += r.total_checkpoint_bytes
        # Leg snapshots each carry their own "__total__"; the summed value
        # is the run's total simulated time — keep it out of the
        # per-category sum used for the checkpoint-time fraction.
        total_seconds = clock.pop("__total__", None)
        if total_seconds is None:
            total_seconds = sum(clock.values())
        clock["__total__"] = total_seconds
        ckpt_seconds = sum(
            v for k, v in clock.items() if k.startswith("checkpoint_write")
        )
        # Goodput: useful steps per simulated second the fleet spends
        # stepping (useful + replayed + stalled); recovery I/O is
        # reported alongside but excluded from the denominator — see
        # GoodputReport.  For soak continuations only the steps this
        # invocation executed count as useful.
        useful_steps = max(0, final.final_step - self._start_step)
        goodput = GoodputReport(
            useful_steps=useful_steps,
            lost_steps=self.timeline.lost_steps,
            useful_seconds=useful_steps * self.config.sim_step_seconds,
            lost_seconds=self.timeline.lost_steps * self.config.sim_step_seconds,
            stall_seconds=(
                clock.get("fault_straggler", 0.0) + clock.get("comm", 0.0)
            ),
            recovery_seconds=self.timeline.recovery_seconds,
        )
        return TrainResult(
            final_step=final.final_step,
            final_train_loss=final.final_train_loss,
            final_eval_loss=final.final_eval_loss,
            interrupted_at=final.interrupted_at,
            checkpoints=sorted(checkpoints),
            clock=clock,
            checkpoint_time_fraction=(
                ckpt_seconds / total_seconds if total_seconds else 0.0
            ),
            total_checkpoint_bytes=total_ckpt_bytes,
            comm_traffic={"bytes_by_op": bytes_by_op, "calls_by_op": calls_by_op},
            failed_rank=final.failed_rank,
            rank_joined=final.rank_joined,
            fault_timeline=self.timeline,
            goodput=goodput,
        )


def train_with_faults(
    config: TrainConfig,
    plan: FaultPlan,
    *,
    until_step: int | None = None,
    merge_workers: int = 1,
) -> TrainResult:
    """One-call chaos run: build a :class:`ChaosSupervisor` and run it."""
    return ChaosSupervisor(config, plan, merge_workers=merge_workers).run(
        until_step=until_step
    )
